"""Tests for the downstream task builders, regressors and the NetGLUE benchmark."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netglue import (
    FlowStatsSolver,
    FoundationModelSolver,
    GRUSolver,
    NetGLUE,
    NetGLUETask,
    SolverSettings,
    format_leaderboard,
    run_leaderboard,
)
from repro.tasks import (
    MLPRegressor,
    MLPRegressorConfig,
    RidgeRegression,
    build_application_classification,
    build_congestion_prediction,
    build_device_classification,
    build_dns_category_classification,
    build_malware_detection,
    build_performance_prediction,
    regression_metrics,
)


class TestTaskBuilders:
    def test_application_classification(self):
        task = build_application_classification(seed=0, duration=8.0)
        assert task.label_key == "application"
        train_labels = {p.metadata["application"] for p in task.train_packets}
        assert {"dns", "http"} <= train_labels
        assert task.train_packets and task.test_packets

    def test_dns_category_shifted_eval(self):
        task = build_dns_category_classification(seed=0, num_clients=3, queries_per_client=5)
        train_subnets = {p.src_ip.split(".")[0] for p in task.train_packets}
        test_subnets = {p.src_ip.split(".")[0] for p in task.test_packets}
        assert train_subnets != test_subnets  # client population shifted

    def test_device_classification_labels(self):
        task = build_device_classification(seed=0, duration=20.0)
        assert task.label_key == "device"
        assert {p.metadata["device"] for p in task.train_packets}

    def test_malware_detection_binary_labels(self):
        task = build_malware_detection(seed=0, duration=8.0)
        labels = {p.metadata["malicious"] for p in task.train_packets}
        assert labels == {"benign", "attack"}

    def test_congestion_prediction_arrays(self):
        task = build_congestion_prediction(seed=0, duration=80.0, window=20)
        assert task.kind == "classification"
        assert task.train_features.shape[1:] == (20, 3)
        assert set(np.unique(task.train_targets)) <= {0, 1}

    def test_performance_prediction_arrays(self):
        task = build_performance_prediction(seed=0, num_flows=100)
        assert task.kind == "regression"
        assert task.train_features.shape == (100, 5)
        assert np.isfinite(task.train_targets).all()


class TestRegressors:
    def test_ridge_fits_linear_relation(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(200, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 3.0
        model = RidgeRegression(alpha=0.01).fit(features, targets)
        metrics = model.evaluate(features, targets)
        assert metrics["r2"] > 0.99
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(features)

    def test_mlp_regressor_improves_over_mean(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(200, 4))
        targets = np.sin(features[:, 0]) + features[:, 1] ** 2
        model = MLPRegressor(4, MLPRegressorConfig(hidden=16, epochs=30, seed=0)).fit(features, targets)
        metrics = model.evaluate(features, targets)
        baseline = regression_metrics(targets, np.full_like(targets, targets.mean()))
        assert metrics["rmse"] < baseline["rmse"]

    def test_regression_metrics_perfect(self):
        targets = np.array([1.0, 2.0, 3.0])
        metrics = regression_metrics(targets, targets)
        assert metrics["mae"] == 0.0 and metrics["r2"] == pytest.approx(1.0)

    def test_performance_prediction_end_to_end(self):
        task = build_performance_prediction(seed=2, num_flows=200)
        model = RidgeRegression().fit(task.train_features, task.train_targets)
        metrics = model.evaluate(task.test_features, task.test_targets)
        # Flow size is the dominant factor, so even ridge should explain a lot.
        assert metrics["r2"] > 0.3


class TestNetGLUE:
    def test_scale_validation_and_aggregate(self):
        with pytest.raises(ValueError):
            NetGLUE(scale="gigantic")
        assert NetGLUE.aggregate({"a": 0.5, "b": 1.0}) == pytest.approx(0.75)
        assert NetGLUE.aggregate({}) == 0.0

    def test_tiny_benchmark_builds_all_tasks(self):
        tasks = NetGLUE(seed=0, scale="tiny").tasks()
        names = [task.name for task in tasks]
        assert names == ["application", "dns-category", "device", "malware", "congestion"]
        assert sum(task.is_packet_task for task in tasks) == 4

    def test_flow_stats_solver_on_tiny_tasks(self):
        tasks = NetGLUE(seed=1, scale="tiny").tasks()
        solver = FlowStatsSolver(SolverSettings(max_train_contexts=100, max_eval_contexts=100))
        packet_task = tasks[0]
        metrics = solver.solve(packet_task)
        assert 0.0 <= metrics["f1"] <= 1.0
        congestion_task = tasks[-1]
        metrics = solver.solve(congestion_task)
        assert 0.0 <= metrics["f1"] <= 1.0

    def test_leaderboard_runs_and_formats(self):
        # Use only the cheapest task and solver to keep the test fast.
        tasks = [t for t in NetGLUE(seed=2, scale="tiny").tasks() if t.name == "application"]
        results = run_leaderboard(tasks, [FlowStatsSolver()])
        assert "flow-stats" in results
        assert "netglue" in results["flow-stats"]
        table = format_leaderboard(results)
        assert "flow-stats" in table and "NetGLUE" in table
        assert format_leaderboard({}) == "(empty leaderboard)"

    def test_foundation_and_gru_solvers_on_one_task(self):
        settings = SolverSettings(
            max_tokens=32, max_train_contexts=80, max_eval_contexts=80,
            pretrain_epochs=1, finetune_epochs=1, gru_epochs=1, d_model=16,
        )
        task = [t for t in NetGLUE(seed=3, scale="tiny").tasks() if t.name == "application"][0]
        for solver in (FoundationModelSolver(settings), GRUSolver(settings)):
            metrics = solver.solve(task)
            assert 0.0 <= metrics["f1"] <= 1.0
