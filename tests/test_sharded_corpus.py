"""Sharded on-disk corpus: lossless round-trips and streamed pretraining.

``save_shards``/``open_shards`` must be lossless across shard-size
boundaries (1, n-1, n, n+1), and streaming a sharded corpus through
``encode_columns`` + ``pretrain_encoded`` must reproduce the in-memory
corpus loss for loss.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.context import PacketContextBuilder
from repro.core import NetFMConfig, NetFoundationModel, Pretrainer, PretrainingConfig
from repro.corpus import PacketTraceCorpus, SHARD_FORMAT, ShardedCorpus
from repro.corpus.packets import MANIFEST_NAME
from repro.net import PacketColumns
from repro.tokenize import FieldAwareTokenizer, Vocabulary
from repro.traffic import DNSWorkloadConfig, DNSWorkloadGenerator, EnterpriseScenario, EnterpriseScenarioConfig


def assert_columns_equal(reference: PacketColumns, columns: PacketColumns) -> None:
    for field in dataclasses.fields(PacketColumns):
        actual = getattr(columns, field.name)
        expected = getattr(reference, field.name)
        if isinstance(expected, np.ndarray):
            assert actual.shape == expected.shape, field.name
            assert np.array_equal(actual, expected), field.name
        else:
            assert actual == expected, field.name


@pytest.fixture(scope="module")
def corpus():
    return PacketTraceCorpus.from_scenarios([
        EnterpriseScenario(EnterpriseScenarioConfig(seed=2, duration=6.0)),
        DNSWorkloadGenerator(DNSWorkloadConfig(seed=3, num_clients=4,
                                               queries_per_client=5, duration=8.0)),
    ])


class TestShardRoundTrip:
    def test_lossless_across_shard_boundaries(self, corpus, tmp_path):
        n = len(corpus)
        for shard_rows in (1, n - 1, n, n + 1):
            directory = tmp_path / f"shards-{shard_rows}"
            corpus.save_shards(directory, shard_rows=shard_rows)
            restored = PacketTraceCorpus.open_shards(directory)
            assert len(restored) == n
            assert_columns_equal(corpus.columns, restored.columns())
            assert restored.labels() == corpus.labels()

    def test_shard_sizing(self, corpus, tmp_path):
        corpus.save_shards(tmp_path / "s", shard_rows=100)
        sharded = PacketTraceCorpus.open_shards(tmp_path / "s")
        n = len(corpus)
        assert sharded.num_shards == (n + 99) // 100
        sizes = [len(shard) for shard in sharded]
        assert sum(sizes) == n
        assert all(size == 100 for size in sizes[:-1])

    def test_single_shard_equals_select(self, corpus, tmp_path):
        corpus.save_shards(tmp_path / "s", shard_rows=64)
        sharded = PacketTraceCorpus.open_shards(tmp_path / "s")
        assert_columns_equal(corpus.columns[0:64], sharded.shard(0))
        assert_columns_equal(corpus.columns[64:128], sharded.shard(1))

    def test_empty_corpus(self, tmp_path):
        empty = PacketTraceCorpus.from_packets([])
        empty.save_shards(tmp_path / "e", shard_rows=8)
        restored = PacketTraceCorpus.open_shards(tmp_path / "e")
        assert len(restored) == 0 and restored.num_shards == 0
        assert_columns_equal(empty.columns, restored.columns())

    def test_manifest_contents(self, corpus, tmp_path):
        corpus.save_shards(tmp_path / "s", shard_rows=128,
                           label_keys=("application", "device"))
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        assert manifest["format"] == SHARD_FORMAT
        assert manifest["num_rows"] == len(corpus)
        assert set(manifest["label_vocab"]) == {"application", "device"}
        expected_vocab = sorted({str(v) for v in corpus.labels() if v is not None})
        assert manifest["label_vocab"]["application"] == expected_vocab

    def test_open_rejects_non_corpus(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedCorpus(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="manifest"):
            ShardedCorpus(tmp_path)

    def test_validator_accepts_saved_corpus(self, corpus, tmp_path):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "check_shards", Path(__file__).parent.parent / "tools" / "check_shards.py"
        )
        check_shards = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_shards)
        corpus.save_shards(tmp_path / "s", shard_rows=200)
        assert check_shards.check_corpus(tmp_path / "s", deep=True) == []


class TestStreamedPretraining:
    def test_streamed_encode_matches_in_memory(self, corpus, tmp_path):
        tokenizer = FieldAwareTokenizer()
        builder = PacketContextBuilder(max_tokens=32)
        contexts = builder.build(corpus.columns, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        full_ids, full_mask = builder.encode_columns(corpus.columns, tokenizer, vocabulary)

        corpus.save_shards(tmp_path / "s", shard_rows=37)
        sharded = PacketTraceCorpus.open_shards(tmp_path / "s")
        ids, mask = sharded.encode_columns(builder, tokenizer, vocabulary)
        np.testing.assert_array_equal(full_ids, ids)
        np.testing.assert_array_equal(full_mask, mask)

    def test_streamed_pretraining_loss_for_loss(self, corpus, tmp_path):
        tokenizer = FieldAwareTokenizer()
        builder = PacketContextBuilder(max_tokens=32)
        contexts = builder.build(corpus.columns, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])

        def pretrain(ids, mask):
            model = NetFoundationModel(NetFMConfig(
                vocab_size=len(vocabulary), d_model=16, num_layers=1, num_heads=2,
                d_ff=32, max_len=32, dropout=0.0, seed=0,
            ))
            pretrainer = Pretrainer(
                model, vocabulary, PretrainingConfig(epochs=1, batch_size=8, seed=0)
            )
            return pretrainer.pretrain_encoded(ids, mask).losses

        full = pretrain(*builder.encode_columns(corpus.columns, tokenizer, vocabulary))
        corpus.save_shards(tmp_path / "s", shard_rows=41)
        sharded = PacketTraceCorpus.open_shards(tmp_path / "s")
        streamed = pretrain(*sharded.encode_columns(builder, tokenizer, vocabulary))
        assert full == streamed


class TestParallelShardWrites:
    def test_parallel_write_matches_serial(self, corpus, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        corpus.save_shards(serial_dir, shard_rows=50)
        corpus.save_shards(parallel_dir, shard_rows=50, workers=4)
        serial = json.loads((serial_dir / "manifest.json").read_text())
        parallel = json.loads((parallel_dir / "manifest.json").read_text())
        assert parallel == serial  # shard order, sizes and vocab identical
        restored = PacketTraceCorpus.open_shards(parallel_dir)
        assert_columns_equal(corpus.columns, restored.columns())
        assert restored.labels() == corpus.labels()

    def test_parallel_single_shard(self, corpus, tmp_path):
        corpus.save_shards(tmp_path / "one", shard_rows=len(corpus), workers=8)
        restored = PacketTraceCorpus.open_shards(tmp_path / "one")
        assert_columns_equal(corpus.columns, restored.columns())

    def test_manifest_written_last(self, corpus, tmp_path, monkeypatch):
        # Every shard file a manifest names must already be on disk when the
        # manifest appears — savez order is observed via a write hook.
        events: list[str] = []
        original = np.savez

        def tracking_savez(path, **payload):
            events.append(Path(path).name)
            return original(path, **payload)

        monkeypatch.setattr(np, "savez", tracking_savez)
        corpus.save_shards(tmp_path / "ordered", shard_rows=60, workers=4)
        manifest = json.loads(
            (tmp_path / "ordered" / "manifest.json").read_text()
        )
        assert sorted(events) == sorted(s["file"] for s in manifest["shards"])
