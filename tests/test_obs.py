"""The unified observability layer (`repro.obs`).

Three contracts under test: the metrics substrate is **bounded and exactly
mergeable** (a million observations costs O(buckets) memory; folding worker
registries is commutative/associative and lossless for counts, sums and
extrema), traces driven by an injectable clock are **deterministic** (the
same stream traced twice yields identical span rows, exportable/reloadable
through JSONL), and kernel profiling is **off by default and observation
only** (enabling it changes no computed value).  The serving-report
satellites ride here too: stamp-conflict merges, empty merges in both
directions, and the bounded-memory regression for the latency series.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.context import FlowContextBuilder
from repro.core import NetFMConfig, NetFoundationModel, SequenceClassifier
from repro.net import PacketColumns, build_packet
from repro.nn.autograd import Tensor
from repro.nn.kernels import (
    ScratchPool,
    disable_kernel_profiling,
    enable_kernel_profiling,
    fused_layer_norm,
    kernel_profiler,
)
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceRecorder,
    critical_paths,
    load_trace,
    stage_breakdown,
)
from repro.serve import (
    ColumnsSource,
    InferenceEngine,
    PredictionCache,
    ServingReport,
    StreamingFlowAssembler,
    serve_stream,
)
from repro.tokenize import FieldAwareTokenizer, Vocabulary

MAX_TOKENS = 32


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter("x"), Counter("x")
        a.inc()
        a.inc(4)
        b.inc(2.5)
        a.merge(b)
        assert a.value == 7.5
        assert a.snapshot() == {"type": "counter", "value": 7.5}


class TestGauge:
    def test_envelope_is_exact(self):
        g = Gauge("depth")
        for v in (3, 1, 7, 2):
            g.set(v)
        assert (g.value, g.min, g.max, g.samples) == (2.0, 1.0, 7.0, 4)

    def test_merge_combines_envelopes(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(5)
        b.set(2)
        b.set(9)
        a.merge(b)
        assert (a.value, a.min, a.max, a.samples) == (9.0, 2.0, 9.0, 3)

    def test_empty_merges_both_directions(self):
        seen, empty = Gauge("g"), Gauge("g")
        seen.set(4)
        before = seen.snapshot()
        seen.merge(Gauge("g"))
        assert seen.snapshot() == before
        empty.merge(seen)
        assert empty.snapshot() == before


class TestHistogram:
    def test_count_sum_min_max_mean_are_exact(self):
        h = Histogram("lat", 1e-6, 1e3)
        values = np.random.default_rng(0).lognormal(-5, 2, size=1000)
        for v in values:
            h.observe(v)
        assert h.count == 1000
        assert h.total == pytest.approx(values.sum(), rel=1e-12)
        assert h.min == values.min() and h.max == values.max()
        assert h.mean == pytest.approx(values.mean(), rel=1e-12)

    def test_percentile_within_one_bucket_width(self):
        bpo = 8
        h = Histogram("lat", 1e-6, 1e3, bins_per_octave=bpo)
        values = np.random.default_rng(1).lognormal(-4, 1.5, size=5000)
        h.observe_many(values)
        width = 2.0 ** (1.0 / bpo)
        for q in (50, 90, 99):
            exact = np.percentile(values, q)
            estimate = h.percentile(q)
            assert exact / width <= estimate <= exact * width

    def test_underflow_and_overflow_buckets(self):
        h = Histogram("h", 1.0, 16.0)
        for v in (0.0, -3.0, 0.5):
            h.observe(v)
        h.observe(16.0)
        h.observe(1e9)
        assert h.counts[0] == 3 and h.counts[-1] == 2
        assert h.count == 5 and h.min == -3.0 and h.max == 1e9

    def test_observe_many_matches_observe_loop(self):
        one, many = Histogram("h", 1e-3, 1e3), Histogram("h", 1e-3, 1e3)
        values = np.random.default_rng(2).lognormal(0, 3, size=2000)
        values[:10] = 0.0  # underflow path
        values[10:20] = 1e6  # overflow path
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert np.array_equal(one.counts, many.counts)
        assert one.count == many.count and one.total == pytest.approx(many.total)

    def test_merge_is_exact_bucketwise(self):
        a, b = Histogram("h", 1e-3, 1e3), Histogram("h", 1e-3, 1e3)
        whole = Histogram("h", 1e-3, 1e3)
        va = np.random.default_rng(3).lognormal(0, 2, 500)
        vb = np.random.default_rng(4).lognormal(1, 2, 700)
        a.observe_many(va)
        b.observe_many(vb)
        whole.observe_many(np.concatenate([va, vb]))
        a.merge(b)
        assert np.array_equal(a.counts, whole.counts)
        assert a.count == whole.count
        assert a.total == pytest.approx(whole.total, rel=1e-12)
        assert a.min == whole.min and a.max == whole.max

    def test_merge_rejects_layout_mismatch(self):
        a = Histogram("h", 1e-3, 1e3)
        with pytest.raises(ValueError, match="layouts differ"):
            a.merge(Histogram("h", 1e-3, 1e4))

    def test_million_observations_stay_o_buckets(self):
        h = Histogram("lat", 1e-7, 1e3)
        buckets_before = h.counts.size
        bytes_before = h.counts.nbytes
        rng = np.random.default_rng(5)
        for _ in range(10):
            h.observe_many(rng.lognormal(-5, 2, size=100_000))
        assert h.count == 1_000_000
        # Fixed layout: the backing array never grew, and the histogram has
        # no per-observation state at all (__slots__ closes the door).
        assert h.counts.size == buckets_before
        assert h.counts.nbytes == bytes_before
        assert not hasattr(h, "__dict__")


class TestMetricsRegistry:
    def test_constructors_are_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("c") is r.counter("c")
        assert r.histogram("h", 1, 10) is r.histogram("h", 1, 10)
        with pytest.raises(TypeError):
            r.gauge("c")
        with pytest.raises(ValueError, match="already registered with layout"):
            r.histogram("h", 1, 100)

    @staticmethod
    def _worker_registry(seed):
        rng = np.random.default_rng(seed)
        r = MetricsRegistry()
        r.counter("flows").inc(int(rng.integers(1, 100)))
        r.gauge("depth").set(float(rng.integers(1, 50)))
        r.histogram("lat", 1e-6, 1e3).observe_many(rng.lognormal(-4, 2, 300))
        return r

    def test_merge_commutes_across_three_workers(self):
        # Satellite: commutativity of counter/histogram merges across 3+
        # fabric workers — any fold order gives the identical registry.
        # Histogram sums are floats, so the running total is only equal up
        # to addition-reordering; every discrete quantity is exact.
        def fold(order):
            total = MetricsRegistry()
            for seed in order:
                total.merge(self._worker_registry(seed))
            data = total.to_dict()
            sums = {
                name: snap.pop("sum")
                for name, snap in data.items() if "sum" in snap
            }
            for snap in data.values():
                snap.pop("mean", None)
            return data, sums

        folds = [fold([1, 2, 3]), fold([3, 1, 2]), fold([2, 3, 1])]
        assert folds[0][0] == folds[1][0] == folds[2][0]
        for name, value in folds[0][1].items():
            assert folds[1][1][name] == pytest.approx(value, rel=1e-12)
            assert folds[2][1][name] == pytest.approx(value, rel=1e-12)

    def test_merge_clones_missing_metrics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only-b").inc(3)
        a.merge(b)
        assert a.get("only-b").value == 3
        b.counter("only-b").inc(10)  # the clone is independent
        assert a.get("only-b").value == 3

    def test_json_export_round_trips(self):
        r = self._worker_registry(7)
        data = json.loads(r.to_json())
        expected = r.to_dict()
        for snap in expected.values():  # JSON object keys are strings
            if "buckets" in snap:
                snap["buckets"] = {str(k): v for k, v in snap["buckets"].items()}
        assert data == expected
        assert data["flows"]["type"] == "counter"
        assert data["lat"]["count"] == 300
        assert sum(data["lat"]["buckets"].values()) == 300


# ----------------------------------------------------------------------
# ServingReport over the registry (satellites)
# ----------------------------------------------------------------------
def _observe_flows(report, seed, n=50):
    class _Rec:
        packet_count = 3

    class _Pred:
        record = _Rec()
        cached = False

    rng = np.random.default_rng(seed)
    for latency in rng.lognormal(-5, 1, n):
        report.mark_submit()
        p = _Pred()
        p.latency = float(latency)
        report.observe(p)
        report.observe_batch(int(rng.integers(1, 9)))
    report.count("errors", int(rng.integers(0, 3)))


class TestServingReportSatellites:
    def test_stamp_conflicts_merge_to_mixed(self):
        a, b = ServingReport(), ServingReport()
        a.model_dtype, a.numeric_policy = "float64", "strict-fp64"
        b.model_dtype, b.numeric_policy = "float32", "relaxed-ulp-f32"
        a.merge(b)
        assert a.model_dtype == "mixed"
        assert a.numeric_policy == "mixed"

    def test_empty_merge_both_directions(self):
        seen = ServingReport()
        _observe_flows(seen, seed=0)
        before = seen.summary()
        seen.merge(ServingReport())
        assert seen.summary() == before

        empty = ServingReport()
        empty.merge(seen)
        after = empty.summary()
        # Timing envelopes travel with the merge, so the whole scorecard
        # (rates included) survives merging into a fresh report.
        assert after == before

    def test_merge_commutes_across_three_workers(self):
        def fold(order):
            total = ServingReport()
            for seed in order:
                worker = ServingReport()
                _observe_flows(worker, seed)
                total.merge(worker)
            summary = total.summary()
            del summary["wall_s"], summary["flows_per_s"], summary["packets_per_s"]
            data = total.metrics.to_dict()
            for snap in data.values():  # float sums: equal up to reordering
                snap.pop("sum", None)
                snap.pop("mean", None)
            return summary, data

        first, second = fold([1, 2, 3]), fold([3, 1, 2])
        assert first[1] == second[1]  # registries identical bucket for bucket
        # mean_batch is a float sum divided by an exact count: equal only up
        # to addition reordering.  Everything else is exactly equal.
        assert first[0].pop("mean_batch") == pytest.approx(
            second[0].pop("mean_batch"), rel=1e-12
        )
        assert first[0] == second[0]

    def test_million_latencies_stay_o_buckets(self):
        # Satellite: the report's latency series is bounded — it has no
        # per-observation storage anywhere (the pre-obs implementation grew
        # a Python list entry per prediction).
        report = ServingReport()
        hist = report.metrics.get("serve.latency_s")
        size_before, nbytes_before = hist.counts.size, hist.counts.nbytes
        rng = np.random.default_rng(6)
        for _ in range(10):
            hist.observe_many(rng.lognormal(-6, 1, size=100_000))
        assert hist.count == 1_000_000
        assert hist.counts.size == size_before
        assert hist.counts.nbytes == nbytes_before
        assert not hasattr(report, "latencies")
        summary = report.summary()
        assert summary["p99_ms"] >= summary["p50_ms"] > 0


# ----------------------------------------------------------------------
# Trace recorder
# ----------------------------------------------------------------------
def _tiny_stream():
    packets = [
        build_packet(t, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80,
                     metadata={"connection_id": conn})
        for conn, times in enumerate([(0.0, 0.1, 0.2), (0.05, 0.3), (0.4,)])
        for t in times
    ]
    return PacketColumns.from_packets(sorted(packets, key=lambda p: p.timestamp))


def _tiny_serving(tracer):
    columns = _tiny_stream()
    tokenizer = FieldAwareTokenizer()
    builder = FlowContextBuilder(max_tokens=MAX_TOKENS, label_key=None)
    contexts = builder.build(columns.to_packets(), tokenizer)
    vocabulary = Vocabulary.build([c.tokens for c in contexts])
    config = NetFMConfig(
        vocab_size=len(vocabulary), d_model=16, num_layers=1, num_heads=2,
        d_ff=32, max_len=MAX_TOKENS, dropout=0.0, seed=0,
    )
    classifier = SequenceClassifier(NetFoundationModel(config), num_classes=2)
    assembler = StreamingFlowAssembler(
        tokenizer, vocabulary,
        builder=FlowContextBuilder(max_tokens=MAX_TOKENS, label_key=None),
        tracer=tracer,
    )
    engine = InferenceEngine(
        classifier, batch_size=2, cache=PredictionCache(), tracer=tracer
    )
    predictions = list(serve_stream(
        ColumnsSource(columns, chunk_rows=2), assembler, engine
    ))
    return predictions


def _counting_clock():
    ticks = iter(range(1_000_000))
    return lambda: float(next(ticks))


class TestTraceRecorder:
    def test_sync_trace_is_deterministic_under_injected_clock(self):
        # Same stream, same counting clock -> identical trace rows, run to
        # run.  (Only the sync path is clock-deterministic; fabric thread
        # interleaving is documented as non-deterministic.)
        first = TraceRecorder(clock=_counting_clock())
        second = TraceRecorder(clock=_counting_clock())
        _tiny_serving(first)
        _tiny_serving(second)
        assert first.to_rows() == second.to_rows()
        stages = {span.stage for span in first.spans}
        assert {"first_packet", "flow_closed", "encode", "batched",
                "inferred", "emitted"} <= stages

    def test_full_lifecycle_per_flow(self):
        tracer = TraceRecorder(clock=_counting_clock())
        predictions = _tiny_serving(tracer)
        assert predictions
        for p in predictions:
            stages = [
                s.stage for s in tracer.spans_for(p.record.key, p.record.generation)
            ]
            assert stages[0] == "first_packet"
            assert stages[-1] == "emitted"
            assert {"flow_closed", "encode", "batched", "inferred"} <= set(stages)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = TraceRecorder(clock=_counting_clock())
        _tiny_serving(tracer)
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(path)
        rows = load_trace(path)
        assert written == len(rows) == len(tracer.spans)
        assert rows == tracer.to_rows()
        breakdown = stage_breakdown(rows)
        assert breakdown["inferred"]["count"] > 0
        paths = critical_paths(rows)
        assert paths and all(p["end_to_end_ms"] >= 0 for p in paths)
        assert paths == sorted(
            paths, key=lambda p: -p["end_to_end_ms"]
        )

    def test_max_spans_bounds_memory(self):
        tracer = TraceRecorder(clock=_counting_clock(), max_spans=5)
        for i in range(20):
            tracer.annotate(f"flow-{i}", 0, "emitted")
        assert len(tracer) == 5 and tracer.dropped == 15

    def test_dead_letter_queue_annotates_with_provenance(self):
        from repro.serve import DeadLetter, DeadLetterQueue

        tracer = TraceRecorder(clock=_counting_clock())
        queue = DeadLetterQueue(tracer=tracer)
        queue.append(DeadLetter(
            stage="assembly", error="ChunkIntegrityError('bad ts')",
            action="dropped", flow_key="conn-9", generation=1,
            packet_count=4, chunk_index=2, worker="worker[0]",
        ))
        (span,) = tracer.spans_for("conn-9")
        assert span.stage == "dead_letter" and span.kind == "event"
        assert span.attrs["failed_stage"] == "assembly"
        assert span.attrs["action"] == "dropped"
        assert span.attrs["worker"] == "worker[0]"

    def test_annotation_attrs_survive(self):
        tracer = TraceRecorder(clock=_counting_clock())
        tracer.annotate(
            "conn-1", 2, "dead_letter", failed_stage="assembly", action="dropped"
        )
        (span,) = tracer.spans_for("conn-1")
        assert span.generation == 2 and span.kind == "event"
        assert span.attrs == {"failed_stage": "assembly", "action": "dropped"}


# ----------------------------------------------------------------------
# Kernel profiling
# ----------------------------------------------------------------------
class TestKernelProfiling:
    def teardown_method(self):
        disable_kernel_profiling()

    @staticmethod
    def _run_kernel(pool):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 8)))
        gamma, beta = Tensor(np.ones(8)), Tensor(np.zeros(8))
        return fused_layer_norm(x, gamma, beta, 1e-5, pool).data

    def test_off_by_default_and_observation_only(self):
        assert kernel_profiler() is None
        pool = ScratchPool()
        baseline = self._run_kernel(pool)
        profiler = enable_kernel_profiling()
        profiled = self._run_kernel(ScratchPool())
        disable_kernel_profiling()
        assert kernel_profiler() is None
        # Profiling observes only: bit-identical output.
        np.testing.assert_array_equal(baseline, profiled)
        snap = profiler.snapshot()
        assert snap["kernels"]["layer_norm"]["calls"] == 1
        assert snap["kernels"]["layer_norm"]["wall_ms"] >= 0.0

    def test_pool_hit_miss_accounting(self):
        profiler = enable_kernel_profiling()
        pool = ScratchPool()
        self._run_kernel(pool)   # cold: misses allocate
        cold = profiler.snapshot()["pool"]
        self._run_kernel(pool)   # warm: same shapes hit
        warm = profiler.snapshot()["pool"]
        assert cold["misses"] > 0
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] == cold["hits"] + cold["misses"]
        assert warm["bytes_served"] > cold["bytes_served"]

    def test_shared_registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.flows").inc(5)
        enable_kernel_profiling(registry=registry)
        self._run_kernel(ScratchPool())
        disable_kernel_profiling()
        assert "kernel.layer_norm.calls" in registry
        assert registry.get("serve.flows").value == 5


# ----------------------------------------------------------------------
# Trainer over the registry
# ----------------------------------------------------------------------
class _Scalar:
    """A trivial one-parameter model for exercising the trainer."""

    def __init__(self):
        self.w = Tensor(np.asarray(2.0), requires_grad=True)

    def parameters(self):
        return [self.w]

    def train(self):
        pass

    def eval(self):
        pass


class TestTrainerMetrics:
    def _fit(self, metrics=None):
        model = _Scalar()
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.1),
            max_grad_norm=None, metrics=metrics,
        )
        trainer.fit(lambda: [lambda: model.w * model.w for _ in range(3)], epochs=2)
        return trainer

    def test_history_to_registry(self):
        trainer = self._fit()
        registry = trainer.history.to_registry()
        assert registry.get("train.steps").value == 6
        assert registry.get("train.loss").count == 6
        assert registry.get("train.step_wall_s").count == 6
        assert registry.get("train.wall_s").value == pytest.approx(
            trainer.history.wall_time
        )

    def test_live_registry_matches_history(self):
        live = MetricsRegistry()
        trainer = self._fit(metrics=live)
        replay = trainer.history.to_registry()
        assert live.get("train.steps").value == replay.get("train.steps").value
        assert np.array_equal(
            live.get("train.loss").counts, replay.get("train.loss").counts
        )
        assert live.get("train.loss").total == pytest.approx(
            replay.get("train.loss").total
        )
