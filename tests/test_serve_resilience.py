"""Fault-tolerant serving (`repro.serve.faults` / `repro.serve.resilience`).

The chaos harness: seeded fault plans are driven through the serving
pipeline across traffic scenarios × fault sites × policies, and every run
is checked against the load-bearing *conservation invariant* — under
``quarantine``, the served multiset equals the fault-free sync multiset
minus exactly the dead-lettered flows, and every input packet is either
served or accounted for in the dead-letter queue.  ``fail_fast`` (the
default) must re-raise each fault exactly as the pre-resilience pipeline
would, ``degrade`` serves flagged fallbacks where only the model failed.

The recovery half gates bit-identity: a crashed worker restarted by the
supervisor must serve the exact fault-free multiset (drain + replay loses
nothing, double-serves nothing), and an assembler restored from a
checkpoint must emit the exact records of the uninterrupted run.
"""

from __future__ import annotations

import gc
import os
import threading
import time

import numpy as np
import pytest

from repro.context import FlowContextBuilder
from repro.core import NetFMConfig, NetFoundationModel, SequenceClassifier
from repro.serve import (
    AssemblyFaultError,
    ChunkIntegrityError,
    ColumnsSource,
    DeadLetterQueue,
    EngineCrashError,
    FaultPlan,
    FaultSpec,
    InferenceEngine,
    PoisonedLogitsError,
    PredictionCache,
    ServingFabric,
    ShardedAssembler,
    SourceFaultError,
    StageStallError,
    StreamingFlowAssembler,
    chunk_columns,
    load_checkpoint,
    save_checkpoint,
    serve_stream,
)
from repro.serve.resilience import POLICIES
from repro.tokenize import FieldAwareTokenizer, Vocabulary
from repro.traffic import (
    AttackConfig,
    AttackGenerator,
    DNSWorkloadConfig,
    DNSWorkloadGenerator,
    EnterpriseScenarioConfig,
    EnterpriseScenario,
    HTTPWorkloadConfig,
    HTTPWorkloadGenerator,
    TLSWorkloadConfig,
    TLSWorkloadGenerator,
)

MAX_TOKENS = 64
CHUNK_ROWS = 13

SCENARIOS = {
    "dns": lambda: DNSWorkloadGenerator(
        DNSWorkloadConfig(seed=1, duration=8.0, num_clients=5, queries_per_client=6)
    ),
    "http": lambda: HTTPWorkloadGenerator(
        HTTPWorkloadConfig(seed=2, duration=8.0, num_sessions=8, requests_per_session=2)
    ),
    "tls": lambda: TLSWorkloadGenerator(
        TLSWorkloadConfig(seed=3, duration=8.0, num_sessions=10)
    ),
    "attack": lambda: AttackGenerator(
        AttackConfig(
            seed=4, duration=8.0, scan_ports=20, flood_packets=25,
            tunnel_queries=12, beacon_count=10, brute_force_attempts=15,
        )
    ),
    "enterprise": lambda: EnterpriseScenario(
        EnterpriseScenarioConfig(
            seed=6, duration=12.0, dns_clients=4, dns_queries_per_client=5,
            http_sessions=6, tls_sessions=6, iot_devices_per_type=1,
        )
    ),
}


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def scenario(request):
    """One scenario's capture plus a tiny trained-shape classifier."""
    columns = SCENARIOS[request.param]().generate_columns()
    tokenizer = FieldAwareTokenizer()
    builder = FlowContextBuilder(max_tokens=MAX_TOKENS)
    contexts = builder.build(columns.to_packets(), tokenizer)
    vocabulary = Vocabulary.build([c.tokens for c in contexts])
    config = NetFMConfig(
        vocab_size=len(vocabulary), d_model=32, num_layers=2, num_heads=4,
        d_ff=64, max_len=MAX_TOKENS, dropout=0.0, seed=0,
    )
    classifier = SequenceClassifier(NetFoundationModel(config), num_classes=4)
    return {
        "name": request.param,
        "columns": columns,
        "tokenizer": tokenizer,
        "vocabulary": vocabulary,
        "classifier": classifier,
    }


def make_assembler(scn, **kwargs):
    return StreamingFlowAssembler(
        scn["tokenizer"], scn["vocabulary"],
        builder=FlowContextBuilder(max_tokens=MAX_TOKENS), **kwargs,
    )


def make_engine(scn, classifier=None, **kwargs):
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("cache", PredictionCache())
    return InferenceEngine(classifier or scn["classifier"], **kwargs)


def run_resilient(scn, chunk_rows=CHUNK_ROWS, idle_timeout=0.0, workers=None,
                  engine=None, **options):
    """Serve the scenario's stream; return (predictions, engine)."""
    assembler = make_assembler(scn, idle_timeout=idle_timeout)
    engine = engine or make_engine(scn)
    source = ColumnsSource(scn["columns"], chunk_rows=chunk_rows)
    predictions = list(
        serve_stream(source, assembler, engine, workers=workers, **options)
    )
    return predictions, engine


def prediction_key(p):
    """Everything the bit-identity contract covers, hashable."""
    return (
        str(p.record.key), p.record.generation,
        p.record.token_ids.tobytes(), p.record.attention_mask.tobytes(),
        p.record.label, p.record.packet_count,
        p.record.start_time, p.record.end_time, p.record.closed_by,
        p.logits.tobytes(),
    )


def record_key(r):
    return (
        str(r.key), r.generation, r.token_ids.tobytes(),
        r.attention_mask.tobytes(), r.label, r.packet_count,
        r.start_time, r.end_time, r.closed_by,
    )


# Fault-free sync references, memoized per (scenario, chunk, idle).
_SYNC_PREDS: dict = {}


def sync_predictions(scn, chunk_rows=CHUNK_ROWS, idle_timeout=0.0):
    key = (scn["name"], chunk_rows, idle_timeout)
    if key not in _SYNC_PREDS:
        predictions, _ = run_resilient(
            scn, chunk_rows=chunk_rows, idle_timeout=idle_timeout
        )
        _SYNC_PREDS[key] = predictions
    return _SYNC_PREDS[key]


def check_conservation(scn, predictions, dead_letters, chunk_rows=CHUNK_ROWS,
                       idle_timeout=0.0):
    """The load-bearing invariant: served == sync minus the dead-lettered.

    Chunk-level entries (stage ``source``/``assembly``) poison a flow key
    from their generation onward; record-level entries (stage
    ``inference``/``output``) remove exactly one sync record each.  After
    removing both, the served (non-degraded) multiset must equal what is
    left of the fault-free sync multiset bit for bit, and the packet totals
    must balance.
    """
    sync = sync_predictions(scn, chunk_rows, idle_timeout)
    poisoned: dict[str, int] = {}
    record_level: list[tuple[str, int]] = []
    for entry in dead_letters:
        if entry.stage in ("source", "assembly"):
            key = str(entry.flow_key)
            poisoned[key] = min(poisoned.get(key, entry.generation), entry.generation)
        else:
            record_level.append((str(entry.flow_key), entry.generation))
    remaining = []
    unmatched = list(record_level)
    for p in sync:
        key = str(p.record.key)
        if key in poisoned and p.record.generation >= poisoned[key]:
            continue  # a poisoned flow's packets live in its chunk-level entry
        ident = (key, p.record.generation)
        if ident in unmatched:
            unmatched.remove(ident)
            continue
        remaining.append(prediction_key(p))
    # Every record-level dead letter names a record the sync path served.
    assert unmatched == []
    served = sorted(prediction_key(p) for p in predictions if not p.degraded)
    assert served == sorted(remaining)
    # Packet conservation: served + dead-lettered == every input packet.
    served_packets = sum(
        p.record.packet_count for p in predictions if not p.degraded
    )
    assert served_packets + dead_letters.packets == len(scn["columns"])
    # Degraded fallbacks are exactly the ``degraded`` dead letters.
    degraded = [p for p in predictions if p.degraded]
    assert len(degraded) == sum(
        1 for e in dead_letters if e.action == "degraded"
    )
    for p in degraded:
        assert not np.isfinite(p.logits).all() or not p.logits.any()


# ----------------------------------------------------------------------
# The chaos matrix: scenarios × fault sites × policies
# ----------------------------------------------------------------------
FAULT_CASES = {
    # name -> (plan factory, exception fail_fast must surface)
    "source-raise": (
        lambda: FaultPlan((FaultSpec("source", 1, "raise"),)), SourceFaultError,
    ),
    "source-corrupt": (
        lambda: FaultPlan((FaultSpec("source", 1, "corrupt"),)),
        ChunkIntegrityError,
    ),
    "assembly-raise": (
        lambda: FaultPlan((FaultSpec("assembly", 1, "raise"),)),
        AssemblyFaultError,
    ),
    "forward-crash": (
        lambda: FaultPlan((FaultSpec("forward", 0, "raise"),)), EngineCrashError,
    ),
    "logits-nan": (
        lambda: FaultPlan((FaultSpec("logits", 0, "nan"),)), PoisonedLogitsError,
    ),
}


class TestChaosMatrix:
    """Every (scenario, fault site, policy) cell honors its contract."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("case", sorted(FAULT_CASES))
    def test_policy_contract(self, scenario, case, policy):
        make_plan, failfast_error = FAULT_CASES[case]
        plan = make_plan()
        dlq = DeadLetterQueue()
        if policy == "fail_fast":
            with pytest.raises(failfast_error):
                run_resilient(scenario, fault_plan=plan, dead_letters=dlq)
            assert plan.fired  # the scheduled fault is what raised
            return
        predictions, engine = run_resilient(
            scenario, policy=policy, fault_plan=plan, dead_letters=dlq
        )
        assert plan.fired
        assert len(dlq) > 0
        check_conservation(scenario, predictions, dlq)
        counters = engine.report.summary()["resilience"]
        assert counters["errors"] >= 1
        if policy == "quarantine":
            assert counters["quarantined"] == len(dlq)
            assert not any(p.degraded for p in predictions)
        if policy == "degrade" and case in ("forward-crash", "logits-nan"):
            # Only the model failed: fallbacks are served, flagged.
            assert any(p.degraded for p in predictions)
            assert counters["degraded"] >= 1

    def test_dead_letters_carry_full_provenance(self, scenario):
        plan = FaultPlan((FaultSpec("source", 1, "raise"),))
        dlq = DeadLetterQueue()
        run_resilient(
            scenario, policy="quarantine", fault_plan=plan, dead_letters=dlq
        )
        assert len(dlq) > 0
        for entry in dlq:
            assert entry.stage == "source"
            assert entry.action == "dropped"
            assert entry.chunk_index == 1
            assert entry.flow_key is not None
            assert entry.generation >= 0
            assert entry.packet_count >= 1
            assert "SourceFaultError" in entry.error
        summary = dlq.summary()
        assert summary["entries"] == len(dlq)
        assert summary["packets"] == dlq.packets
        assert summary["by_stage"] == {"source": len(dlq)}
        assert summary["by_action"] == {"dropped": len(dlq)}

    def test_quarantine_keeps_eviction_schedule(self, scenario):
        # Timeout evictions depend on the stream clock; losing a chunk must
        # not stall time for the surviving flows (closed_by is part of the
        # bit-identity key the conservation check compares).
        plan = FaultPlan((FaultSpec("source", 1, "raise"),))
        dlq = DeadLetterQueue()
        predictions, _ = run_resilient(
            scenario, idle_timeout=0.2, policy="quarantine",
            fault_plan=plan, dead_letters=dlq,
        )
        assert plan.fired
        check_conservation(scenario, predictions, dlq, idle_timeout=0.2)

    @pytest.mark.parametrize("workers", [2])
    @pytest.mark.parametrize(
        "case", ["source-raise", "source-corrupt", "assembly-raise", "logits-nan"]
    )
    def test_fabric_quarantine_conserves(self, scenario, case, workers):
        # The same invariant through the threaded fabric: guard state lives
        # on the assembly stage, logit guards on every worker engine.
        make_plan, _ = FAULT_CASES[case]
        plan = make_plan()
        dlq = DeadLetterQueue()
        predictions, _ = run_resilient(
            scenario, workers=workers, policy="quarantine",
            fault_plan=plan, dead_letters=dlq,
        )
        assert plan.fired
        check_conservation(scenario, predictions, dlq)


class TestRandomChaosSweep:
    """Seeded random plans (the CI chaos job sweeps CHAOS_SEED)."""

    SEED = int(os.environ.get("CHAOS_SEED", "0"))

    @pytest.mark.parametrize("policy", ["quarantine", "degrade"])
    @pytest.mark.parametrize("draw", [0, 1])
    def test_random_plan_conserves(self, scenario, policy, draw):
        plan = FaultPlan.random(self.SEED * 100 + draw, faults=3, max_index=8)
        dlq = DeadLetterQueue()
        predictions, _ = run_resilient(
            scenario, policy=policy, fault_plan=plan, dead_letters=dlq,
            max_restarts=3, restart_backoff=0.005,
        )
        check_conservation(scenario, predictions, dlq)


# ----------------------------------------------------------------------
# Worker supervision: restart + replay is bit-identical
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    @pytest.mark.parametrize("policy", ["fail_fast", "quarantine"])
    def test_restart_recovery_is_bit_identical(self, scenario, policy):
        # A crash with restart budget left must lose nothing: drain + replay
        # serves the exact fault-free multiset, logits to the last bit.
        # Ordinal 0 so the fault fires for every scenario (some fit in one
        # length bucket and run a single forward).
        plan = FaultPlan((FaultSpec("forward", 0, "raise"),))
        dlq = DeadLetterQueue()
        predictions, engine = run_resilient(
            scenario, policy=policy, fault_plan=plan, dead_letters=dlq,
            max_restarts=2, restart_backoff=0.005,
        )
        reference = sorted(
            prediction_key(p) for p in sync_predictions(scenario)
        )
        assert sorted(prediction_key(p) for p in predictions) == reference
        assert plan.fired
        assert len(dlq) == 0
        counters = engine.report.summary()["resilience"]
        assert counters["restarts"] >= 1
        assert counters["retries"] >= 1

    def test_fabric_restart_recovery_is_bit_identical(self, scenario):
        plan = FaultPlan((FaultSpec("forward", 0, "raise"),))
        dlq = DeadLetterQueue()
        fabric = ServingFabric(
            ColumnsSource(scenario["columns"], chunk_rows=CHUNK_ROWS),
            make_assembler(scenario),
            make_engine(scenario),
            workers=2, policy="quarantine", fault_plan=plan,
            dead_letters=dlq, max_restarts=2, restart_backoff=0.005,
        )
        predictions = list(fabric)
        reference = sorted(
            prediction_key(p) for p in sync_predictions(scenario)
        )
        assert sorted(prediction_key(p) for p in predictions) == reference
        assert plan.fired
        assert len(dlq) == 0
        counters = fabric.summary()["resilience"]
        assert counters["restarts"] >= 1

    def test_exhausted_restarts_condemn_the_worker(self, scenario):
        # Two crashes against a budget of one: the worker is condemned and
        # everything it would have served is dead-lettered — conservation
        # still holds exactly.
        plan = FaultPlan((FaultSpec("forward", 0, "raise", count=2),))
        dlq = DeadLetterQueue()
        predictions, engine = run_resilient(
            scenario, policy="quarantine", fault_plan=plan, dead_letters=dlq,
            max_restarts=1, restart_backoff=0.005,
        )
        assert len(dlq) > 0
        assert all(e.stage == "inference" for e in dlq)
        check_conservation(scenario, predictions, dlq)
        assert engine.report.summary()["resilience"]["restarts"] == 1

    def test_backoff_is_exponential(self, scenario):
        from repro.serve import WorkerSupervisor

        sleeps = []
        engine = make_engine(scenario)
        supervisor = WorkerSupervisor(
            engine, lambda old: old.clone(), "quarantine",
            DeadLetterQueue(), engine.report,
            max_restarts=3, backoff=0.05, backoff_factor=2.0,
            sleep=sleeps.append,
        )
        class _AlwaysCrash:
            num_classes = 4

            def predict_logits(self, ids, mask=None, **kwargs):
                raise RuntimeError("crash")

        records = stream_records(scenario)[:2]
        supervisor.engine.classifier = _AlwaysCrash()
        for r in records:
            supervisor.submit(r)
        supervisor.flush()
        assert supervisor.condemned
        assert sleeps == [0.05, 0.1, 0.2]


# ----------------------------------------------------------------------
# Watchdog: a stalled stage fails the pipeline instead of hanging it
# ----------------------------------------------------------------------
class _StallingSource:
    """Yields one chunk, then goes silent until released."""

    def __init__(self, columns, release: threading.Event):
        self.columns = columns
        self.release = release

    def __iter__(self):
        yield self.columns[np.arange(min(20, len(self.columns)))]
        self.release.wait(10.0)


class TestWatchdog:
    def test_stalled_source_raises_not_hangs(self, scenario):
        release = threading.Event()
        fabric = ServingFabric(
            _StallingSource(scenario["columns"], release),
            make_assembler(scenario, idle_timeout=0.2),
            make_engine(scenario, batch_size=1),
            workers=2, stall_timeout=0.3,
        )
        # Unblock the stalled thread shortly after the watchdog verdict so
        # close() can join it without eating the full join timeout.
        timer = threading.Timer(1.0, release.set)
        timer.start()
        started = time.monotonic()
        try:
            with pytest.raises(StageStallError):
                list(fabric)
        finally:
            release.set()
            timer.cancel()
        assert time.monotonic() - started < 4.0

    def test_backpressure_is_not_a_stall(self, scenario):
        # A healthy pipeline far slower than the stall timeout must not trip
        # the watchdog: stages heartbeat while waiting on bounded queues.
        predictions, _ = run_resilient(
            scenario, workers=2, stall_timeout=0.5,
        )
        reference = sorted(
            prediction_key(p) for p in sync_predictions(scenario)
        )
        assert sorted(prediction_key(p) for p in predictions) == reference


# ----------------------------------------------------------------------
# Checkpoint / restore: interrupted assembly resumes bit-identically
# ----------------------------------------------------------------------
class TestCheckpointRestore:
    def _new_assembler(self, scn, sharded):
        assembler = make_assembler(scn, idle_timeout=0.2)
        if sharded:
            return ShardedAssembler.from_template(assembler, 3)
        return assembler

    @pytest.mark.parametrize("sharded", [False, True])
    def test_resume_is_bit_identical(self, scenario, tmp_path, sharded):
        chunks = list(chunk_columns(scenario["columns"], CHUNK_ROWS))
        half = max(1, len(chunks) // 2)

        full = self._new_assembler(scenario, sharded)
        uninterrupted = []
        for chunk in chunks:
            uninterrupted.extend(full.push(chunk))
        uninterrupted.extend(full.flush())

        head = self._new_assembler(scenario, sharded)
        resumed = []
        for chunk in chunks[:half]:
            resumed.extend(head.push(chunk))
        state = save_checkpoint(head, tmp_path / "assembler.ckpt")
        assert state["format"] == type(head).CHECKPOINT_FORMAT
        tail = load_checkpoint(
            self._new_assembler(scenario, sharded), tmp_path / "assembler.ckpt"
        )
        for chunk in chunks[half:]:
            resumed.extend(tail.push(chunk))
        resumed.extend(tail.flush())

        assert [record_key(r) for r in resumed] == [
            record_key(r) for r in uninterrupted
        ]

    def test_resumed_serving_matches_end_to_end(self, scenario, tmp_path):
        # Checkpoint mid-stream, serve the tail on a restored assembler and a
        # fresh engine: records and logits equal the uninterrupted run.
        chunks = list(chunk_columns(scenario["columns"], CHUNK_ROWS))
        half = max(1, len(chunks) // 2)
        reference = sync_predictions(scenario, idle_timeout=0.2)

        head = make_assembler(scenario, idle_timeout=0.2)
        engine = make_engine(scenario)
        served = []
        for chunk in chunks[:half]:
            for record in head.push(chunk):
                served.extend(engine.submit(record))
        served.extend(engine.flush())
        save_checkpoint(head, tmp_path / "mid.ckpt")

        tail = load_checkpoint(
            make_assembler(scenario, idle_timeout=0.2), tmp_path / "mid.ckpt"
        )
        resumed_engine = make_engine(scenario)
        for chunk in chunks[half:]:
            for record in tail.push(chunk):
                served.extend(resumed_engine.submit(record))
        for record in tail.flush():
            served.extend(resumed_engine.submit(record))
        served.extend(resumed_engine.flush())

        assert sorted(prediction_key(p) for p in served) == sorted(
            prediction_key(p) for p in reference
        )

    def test_restore_rejects_foreign_format(self, scenario, tmp_path):
        assembler = make_assembler(scenario)
        state = assembler.checkpoint()
        state["format"] = "something/else"
        with pytest.raises(ValueError, match="not an assembler checkpoint"):
            assembler.restore(state)

    def test_restore_rejects_mismatched_timeouts(self, scenario):
        state = make_assembler(scenario, idle_timeout=0.5).checkpoint()
        with pytest.raises(ValueError, match="idle_timeout"):
            make_assembler(scenario, idle_timeout=0.2).restore(state)

    def test_restore_rejects_wrong_shard_count(self, scenario):
        state = ShardedAssembler.from_template(
            make_assembler(scenario), 3
        ).checkpoint()
        wrong = ShardedAssembler.from_template(make_assembler(scenario), 2)
        with pytest.raises(ValueError, match="shards"):
            wrong.restore(state)

    def test_sharded_rejects_unsharded_checkpoint(self, scenario):
        state = make_assembler(scenario).checkpoint()
        sharded = ShardedAssembler.from_template(make_assembler(scenario), 2)
        with pytest.raises(ValueError, match="checkpoint"):
            sharded.restore(state)


# ----------------------------------------------------------------------
# Fabric lifecycle: abandoning the iterator leaks no threads
# ----------------------------------------------------------------------
def _midstream_fabric(scn):
    """A fabric whose predictions start flowing long before end of stream."""
    return ServingFabric(
        ColumnsSource(scn["columns"], chunk_rows=1),
        make_assembler(scn, idle_timeout=0.2),
        make_engine(scn, batch_size=1),
        workers=2, chunk_queue=2, record_queue=4, output_queue=4,
    )


class TestFabricLifecycle:
    def test_close_stops_threads_midstream(self, scenario):
        fabric = _midstream_fabric(scenario)
        it = iter(fabric)
        next(it)  # the pipeline is live mid-stream
        fabric.close()
        assert all(not t.is_alive() for t in fabric._threads)
        fabric.close()  # idempotent

    def test_generator_close_joins_threads(self, scenario):
        fabric = _midstream_fabric(scenario)
        it = iter(fabric)
        next(it)
        it.close()  # GeneratorExit runs the finally -> close()
        assert all(not t.is_alive() for t in fabric._threads)

    def test_context_manager_closes(self, scenario):
        with _midstream_fabric(scenario) as fabric:
            next(iter(fabric))
        assert all(not t.is_alive() for t in fabric._threads)

    def test_abandoned_iterator_is_collected(self, scenario):
        fabric = _midstream_fabric(scenario)
        it = iter(fabric)
        next(it)
        threads = list(fabric._threads)
        del it
        del fabric
        gc.collect()  # generator finalization runs close()
        for thread in threads:
            thread.join(timeout=5.0)
        assert all(not t.is_alive() for t in threads)


# ----------------------------------------------------------------------
# Engine state after a mid-batch crash (no poisoned cache, no loss)
# ----------------------------------------------------------------------
def stream_records(scn, chunk_rows=CHUNK_ROWS, idle_timeout=0.0):
    assembler = make_assembler(scn, idle_timeout=idle_timeout)
    records = []
    for chunk in chunk_columns(scn["columns"], chunk_rows):
        records.extend(assembler.push(chunk))
    records.extend(assembler.flush())
    return records


class _FlakyOnce:
    """Crashes the first forward, then delegates to the real classifier."""

    def __init__(self, classifier):
        self._inner = classifier
        self.crashes_left = 1

    def predict_logits(self, token_ids, attention_mask=None, **kwargs):
        if self.crashes_left:
            self.crashes_left -= 1
            raise RuntimeError("flaky forward")
        return self._inner.predict_logits(token_ids, attention_mask, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestEngineCrashHygiene:
    def test_crash_poisons_no_cache_entries(self, scenario):
        records = stream_records(scenario)[:8]
        cache = PredictionCache()
        engine = InferenceEngine(
            _FlakyOnce(scenario["classifier"]), batch_size=64, cache=cache
        )
        for record in records:
            assert engine.submit(record) == []
        with pytest.raises(RuntimeError, match="flaky forward"):
            engine.flush()
        # Nothing was served, so nothing may be cached — a retry must never
        # hit a logits entry the crashed batch half-wrote.
        assert len(cache) == 0
        hits_before = cache.hits
        # The bucket survived the crash: a retry on the same engine serves
        # every record, bit-identical to a clean engine.
        retried = engine.flush()
        clean = make_engine(scenario, batch_size=64)
        expected = []
        for record in records:
            expected.extend(clean.submit(record))
        expected.extend(clean.flush())
        assert sorted(prediction_key(p) for p in retried) == sorted(
            prediction_key(p) for p in expected
        )
        # The retry forwards fresh logits; no stale hit was involved.
        assert cache.hits == hits_before

    def test_drain_pending_returns_exact_in_flight_set(self, scenario):
        records = stream_records(scenario)[:6]
        engine = make_engine(scenario, batch_size=64)
        for record in records:
            engine.submit(record)
        drained = engine.drain_pending()
        assert sorted(record_key(r) for r in drained) == sorted(
            record_key(r) for r in records
        )
        assert engine.drain_pending() == []
        assert engine.flush() == []  # nothing left behind

    def test_cached_serving_unaffected_by_prior_crash(self, scenario):
        # Serve once through a crash-then-retry engine, then re-serve the
        # same records: every repeat must be a cache hit with exact logits.
        records = stream_records(scenario)[:8]
        cache = PredictionCache()
        engine = InferenceEngine(
            _FlakyOnce(scenario["classifier"]), batch_size=4, cache=cache
        )
        first: list = []
        for record in records:
            try:
                first.extend(engine.submit(record))
            except RuntimeError:
                first.extend(engine.flush())  # retry the restored bucket
        try:
            first.extend(engine.flush())
        except RuntimeError:
            first.extend(engine.flush())  # the crash waited for the flush
        assert sorted(record_key(p.record) for p in first) == sorted(
            record_key(r) for r in records
        )
        by_key = {p.record.cache_key: p.logits for p in first}
        for record in records:
            # Engine entries live under the dtype-namespaced key (the
            # cache-key dtype rule, docs/SERVING.md).
            hit = cache.get(engine.cache_key_for(record))
            assert hit is not None
            np.testing.assert_array_equal(hit, by_key[record.cache_key])
