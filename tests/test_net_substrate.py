"""Tests for addresses, checksums, headers and application messages."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    CIPHERSUITES,
    CIPHERSUITE_STRENGTH,
    DNSAnswer,
    DNSMessage,
    DNSQuestion,
    EthernetHeader,
    HTTPRequest,
    HTTPResponse,
    ICMPHeader,
    IPv4Header,
    NTPPacket,
    PORT_SEMANTIC_GROUPS,
    PROTOCOL_SEMANTIC_GROUPS,
    RECORD_TYPES,
    TCPHeader,
    TCP_FLAG_ACK,
    TCP_FLAG_SYN,
    TLSClientHello,
    TLSServerHello,
    UDPHeader,
    bytes_to_ipv4,
    bytes_to_mac,
    ciphersuite_name,
    in_subnet,
    int_to_ipv4,
    internet_checksum,
    ipv4_to_bytes,
    ipv4_to_int,
    mac_to_bytes,
    port_service,
    protocol_name,
    random_ipv4,
    random_mac,
    random_private_ipv4,
    verify_checksum,
)


class TestAddresses:
    def test_ipv4_conversions(self):
        assert ipv4_to_int("10.0.0.1") == 0x0A000001
        assert int_to_ipv4(0x0A000001) == "10.0.0.1"
        assert bytes_to_ipv4(ipv4_to_bytes("192.168.1.254")) == "192.168.1.254"

    def test_ipv4_invalid(self):
        with pytest.raises(ValueError):
            ipv4_to_int("1.2.3")
        with pytest.raises(ValueError):
            ipv4_to_int("1.2.3.999")
        with pytest.raises(ValueError):
            int_to_ipv4(2 ** 40)
        with pytest.raises(ValueError):
            bytes_to_ipv4(b"\x01\x02")

    def test_mac_conversions(self):
        mac = "02:aa:bb:cc:dd:ee"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac
        with pytest.raises(ValueError):
            mac_to_bytes("02:aa:bb")

    def test_random_generators(self):
        rng = np.random.default_rng(0)
        address = random_ipv4(rng)
        assert ipv4_to_int(address) > 0
        private = random_private_ipv4(rng, "10.0.0.0/8")
        assert in_subnet(private, "10.0.0.0/8")
        private2 = random_private_ipv4(rng, "192.168.1.0/24")
        assert in_subnet(private2, "192.168.1.0/24")
        mac = random_mac(rng, oui="00:17:88")
        assert mac.startswith("00:17:88")

    def test_in_subnet(self):
        assert in_subnet("172.16.5.4", "172.16.0.0/16")
        assert not in_subnet("172.17.5.4", "172.16.0.0/16")

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_ipv4_roundtrip(self, value):
        assert ipv4_to_int(int_to_ipv4(value)) == value


class TestChecksum:
    def test_known_checksum_verifies(self):
        header = IPv4Header(src_ip="1.2.3.4", dst_ip="5.6.7.8", protocol=6)
        assert verify_checksum(header.pack())

    def test_corruption_detected(self):
        data = bytearray(IPv4Header(src_ip="1.2.3.4", dst_ip="5.6.7.8").pack())
        data[8] ^= 0xFF
        assert not verify_checksum(bytes(data))

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_property_checksum_in_range(self, data):
        value = internet_checksum(data)
        assert 0 <= value <= 0xFFFF


class TestHeaders:
    def test_ethernet_roundtrip(self):
        header = EthernetHeader(dst_mac="02:00:00:00:00:02", src_mac="02:00:00:00:00:01")
        parsed = EthernetHeader.unpack(header.pack())
        assert parsed == header
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 5)

    def test_ipv4_roundtrip_and_verify(self):
        header = IPv4Header(src_ip="10.1.2.3", dst_ip="8.8.8.8", protocol=17, ttl=52)
        packed = header.pack(payload_length=100)
        parsed = IPv4Header.unpack(packed, verify=True)
        assert parsed.src_ip == "10.1.2.3"
        assert parsed.total_length == 120
        with pytest.raises(ValueError):
            IPv4Header.unpack(b"\x00" * 10)

    def test_ipv4_checksum_verification_failure(self):
        packed = bytearray(IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2").pack())
        packed[15] ^= 0x55
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(packed), verify=True)

    def test_tcp_roundtrip_and_flags(self):
        header = TCPHeader(src_port=1234, dst_port=443, seq=99, ack=11,
                           flags=TCP_FLAG_SYN | TCP_FLAG_ACK, window=2048)
        parsed = TCPHeader.unpack(header.pack())
        assert parsed.src_port == 1234 and parsed.dst_port == 443
        assert parsed.flag_names() == ["SYN", "ACK"]

    def test_udp_roundtrip(self):
        header = UDPHeader(src_port=5353, dst_port=53)
        packed = header.pack(payload_length=30)
        parsed = UDPHeader.unpack(packed)
        assert parsed.length == 38

    def test_icmp_roundtrip(self):
        header = ICMPHeader(icmp_type=8, identifier=77, sequence=3)
        parsed = ICMPHeader.unpack(header.pack(b"ping"))
        assert parsed.identifier == 77 and parsed.sequence == 3

    @given(st.integers(0, 65535), st.integers(0, 65535), st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_tcp_roundtrip(self, sport, dport, seq):
        header = TCPHeader(src_port=sport, dst_port=dport, seq=seq)
        parsed = TCPHeader.unpack(header.pack())
        assert (parsed.src_port, parsed.dst_port, parsed.seq) == (sport, dport, seq)


class TestDNS:
    def test_query_roundtrip(self):
        message = DNSMessage(
            transaction_id=99,
            questions=[DNSQuestion("www.example.com", RECORD_TYPES["AAAA"])],
        )
        parsed = DNSMessage.unpack(message.pack())
        assert parsed.transaction_id == 99
        assert not parsed.is_response
        assert parsed.questions[0].name == "www.example.com"
        assert parsed.questions[0].type_name == "AAAA"

    def test_response_with_all_record_types(self):
        answers = [
            DNSAnswer("example.com", RECORD_TYPES["A"], rdata="93.184.216.34"),
            DNSAnswer("example.com", RECORD_TYPES["AAAA"], rdata="2001:db8:1:2:3"),
            DNSAnswer("example.com", RECORD_TYPES["CNAME"], rdata="edge.example.com"),
            DNSAnswer("example.com", RECORD_TYPES["MX"], rdata="10 mail.example.com"),
            DNSAnswer("example.com", RECORD_TYPES["TXT"], rdata="v=spf1 -all"),
        ]
        message = DNSMessage(
            transaction_id=1, is_response=True,
            questions=[DNSQuestion("example.com")], answers=answers,
        )
        parsed = DNSMessage.unpack(message.pack())
        assert parsed.is_response
        assert len(parsed.answers) == 5
        assert parsed.answers[0].rdata == "93.184.216.34"
        assert parsed.answers[2].rdata == "edge.example.com"
        assert parsed.answers[3].rdata == "10 mail.example.com"
        assert "spf1" in parsed.answers[4].rdata
        assert parsed.query_name == "example.com"
        assert len(parsed.answer_values()) == 5

    def test_nxdomain_rcode(self):
        message = DNSMessage(transaction_id=5, is_response=True, rcode=3,
                             questions=[DNSQuestion("missing.example")])
        assert DNSMessage.unpack(message.pack()).rcode == 3

    def test_name_validation(self):
        with pytest.raises(ValueError):
            DNSQuestion("a" * 70 + ".com").pack()
        with pytest.raises(ValueError):
            DNSMessage.unpack(b"\x00\x01")


class TestHTTP:
    def test_request_roundtrip(self):
        request = HTTPRequest(method="POST", path="/api", host="example.org",
                              user_agent="curl/7.85.0", headers={"Accept": "*/*"})
        parsed = HTTPRequest.decode(request.encode())
        assert parsed.method == "POST"
        assert parsed.host == "example.org"
        assert parsed.user_agent == "curl/7.85.0"
        assert parsed.headers["Accept"] == "*/*"

    def test_response_roundtrip(self):
        response = HTTPResponse(status=404, content_length=120, content_type="application/json")
        parsed = HTTPResponse.decode(response.encode())
        assert parsed.status == 404
        assert parsed.reason == "Not Found"
        assert parsed.content_length == 120

    def test_malformed(self):
        with pytest.raises(ValueError):
            HTTPRequest.decode(b"NONSENSE")
        with pytest.raises(ValueError):
            HTTPResponse.decode(b"X")


class TestTLSAndNTP:
    def test_client_hello_roundtrip(self):
        hello = TLSClientHello(ciphersuites=[0xC02F, 0xC030, 0x1301], server_name="example.com")
        parsed = TLSClientHello.unpack(hello.pack())
        assert parsed.ciphersuites == [0xC02F, 0xC030, 0x1301]
        assert parsed.server_name == "example.com"
        assert "GCM" in parsed.offered_names()[0]

    def test_server_hello_roundtrip(self):
        hello = TLSServerHello(ciphersuite=0xC030)
        assert TLSServerHello.unpack(hello.pack()).ciphersuite == 0xC030

    def test_tls_wrong_type_rejected(self):
        client = TLSClientHello(ciphersuites=[0xC02F], server_name="x.com").pack()
        with pytest.raises(ValueError):
            TLSServerHello.unpack(client)

    def test_ntp_roundtrip(self):
        packet = NTPPacket(mode=3, stratum=2, transmit_timestamp=1_700_000_000.5)
        parsed = NTPPacket.unpack(packet.pack())
        assert parsed.mode == 3
        assert parsed.transmit_timestamp == pytest.approx(1_700_000_000.5, abs=1e-3)
        with pytest.raises(ValueError):
            NTPPacket.unpack(b"\x00" * 10)


class TestRegistries:
    def test_port_service(self):
        assert port_service(80) == "http"
        assert port_service(50000) == "ephemeral"
        assert port_service(4444) == "unknown"

    def test_protocol_name(self):
        assert protocol_name(6) == "TCP"
        assert protocol_name(250).startswith("proto-")

    def test_ciphersuite_registry(self):
        assert ciphersuite_name(0xC02F) == "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"
        assert ciphersuite_name(0xBEEF).startswith("cs-0x")
        assert 0xC030 in CIPHERSUITE_STRENGTH["strong"]
        assert 0x0005 in CIPHERSUITE_STRENGTH["weak"]
        # The NorBERT example pair differs only in key length / hash.
        a, b = CIPHERSUITES[0xC02F], CIPHERSUITES[0xC030]
        assert (a.key_exchange, a.authentication) == (b.key_exchange, b.authentication)
        assert a.key_bits != b.key_bits

    def test_semantic_groups_cover_registered_values(self):
        for group in PROTOCOL_SEMANTIC_GROUPS.values():
            assert group
        for ports in PORT_SEMANTIC_GROUPS.values():
            assert all(port_service(p) not in ("unknown",) for p in ports)
