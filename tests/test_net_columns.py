"""PacketColumns: round-trip fidelity and vectorized wire serialization.

The columnar batch type must be a lossless re-layout of a packet list —
``from_packets``/``to_packets`` round-trip every layer object, payload and
metadata dict exactly — and its ``wire_matrix`` must reproduce
``Packet.to_bytes`` byte for byte (checksums included), because the byte-level
tokenizers consume it directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.net import (
    APP_DNS,
    APP_NONE,
    APP_OTHER,
    DNSMessage,
    DNSQuestion,
    Packet,
    PacketColumns,
    build_packet,
    parse_packet,
)
from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig


@pytest.fixture(scope="module")
def trace():
    config = EnterpriseScenarioConfig(
        seed=3, duration=20.0, dns_clients=5, dns_queries_per_client=6,
        http_sessions=10, tls_sessions=10, iot_devices_per_type=1,
    )
    return EnterpriseScenario(config).generate()


class _OpaqueApp:
    """An application object the columnar schema knows nothing about."""


def _odd_payload_packets():
    return [
        # Truncated/odd-length raw payloads, no application layer.
        build_packet(0.0, "10.0.0.1", "10.0.0.2", "UDP", 4000, 9999, application=b"\x01"),
        build_packet(0.1, "10.0.0.1", "10.0.0.2", "UDP", 4000, 9999, application=b"abc"),
        build_packet(0.2, "10.0.0.2", "10.0.0.1", "TCP", 80, 4001, application=b"x" * 7),
        # Empty payload, no application at all.
        build_packet(0.3, "10.0.0.3", "10.0.0.1", "TCP", 4002, 443),
        # ICMP with an odd-length payload (checksum pads with a zero byte).
        Packet(
            timestamp=0.4,
            ip=build_packet(0.4, "10.0.0.4", "10.0.0.1", "ICMP").ip,
            transport=build_packet(0.4, "10.0.0.4", "10.0.0.1", "ICMP").transport,
            payload=b"ping!",
        ),
    ]


class TestRoundTrip:
    def test_trace_round_trips_exactly(self, trace):
        columns = PacketColumns.from_packets(trace)
        assert columns.to_packets() == list(trace)

    def test_odd_and_truncated_payloads(self):
        packets = _odd_payload_packets()
        columns = PacketColumns.from_packets(packets)
        restored = columns.to_packets()
        assert restored == packets
        for original, back in zip(packets, restored):
            assert back.payload == original.payload
            assert back.to_bytes() == original.to_bytes()

    def test_unknown_application_round_trips_as_other(self):
        opaque = _OpaqueApp()
        packet = build_packet(1.0, "10.0.0.1", "10.0.0.2", "TCP", 5000, 5001)
        packet = dataclasses.replace(packet, application=opaque)
        columns = PacketColumns.from_packets([packet])
        assert columns.app_kind[0] == APP_OTHER
        restored = columns.packet(0)
        assert restored.application is opaque
        assert restored == packet

    def test_unencodable_application_raises_on_wire_not_round_trip(self):
        """Rows whose app cannot be serialized round-trip fine but refuse
        wire serialization, exactly as ``Packet.to_bytes`` would."""
        packet = Packet(
            timestamp=0.0,
            ip=build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2).ip,
            transport=build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2).transport,
            application=_OpaqueApp(),
            payload=b"",
        )
        columns = PacketColumns.from_packets([packet])
        assert columns.payload_encode_failed[0]
        assert columns.to_packets() == [packet]
        with pytest.raises(TypeError):
            packet.to_bytes()
        with pytest.raises(TypeError):
            columns.wire_matrix()

    def test_mixed_address_spellings_round_trip(self):
        """Two spellings of the same MAC/IP must both be restored exactly."""
        lower = build_packet(
            0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2, src_mac="aa:bb:cc:dd:ee:ff"
        )
        upper = build_packet(
            0.1, "010.0.0.1", "10.0.0.2", "TCP", 3, 4, src_mac="AA:BB:CC:DD:EE:FF"
        )
        columns = PacketColumns.from_packets([lower, upper])
        restored = columns.to_packets()
        assert restored == [lower, upper]
        assert restored[1].ethernet.src_mac == "AA:BB:CC:DD:EE:FF"
        assert restored[1].ip.src_ip == "010.0.0.1"
        # ...and survives concat, including collisions introduced by merging.
        left = PacketColumns.from_packets([lower])
        right = PacketColumns.from_packets([upper])
        merged = PacketColumns.concat([left, right])
        assert merged.to_packets() == [lower, upper]

    def test_metadata_is_copied_not_shared(self, trace):
        columns = PacketColumns.from_packets(trace[:5])
        restored = columns.to_packets()
        restored[0].metadata["mutated"] = True
        assert "mutated" not in trace[0].metadata
        assert "mutated" not in columns.metadata[0]

    def test_app_kinds_and_payload_provenance(self, trace):
        columns = PacketColumns.from_packets(trace)
        dns_rows = np.flatnonzero(columns.app_kind == APP_DNS)
        assert len(dns_rows)
        for i in dns_rows[:5]:
            assert isinstance(columns.applications[i], DNSMessage)
        # build_packet always materializes payload bytes, so nothing in a
        # generated trace should be marked payload-from-application.
        assert not columns.payload_from_application.any()

    def test_payload_from_application_restores_empty_payload(self):
        message = DNSMessage(questions=[DNSQuestion(name="example.com")])
        packet = Packet(
            timestamp=0.0,
            ip=build_packet(0.0, "10.0.0.1", "10.0.0.2", "UDP", 4000, 53).ip,
            transport=build_packet(0.0, "10.0.0.1", "10.0.0.2", "UDP", 4000, 53).transport,
            application=message,
            payload=b"",
        )
        columns = PacketColumns.from_packets([packet])
        assert columns.payload_from_application[0]
        assert columns.payload_lengths[0] == len(message.pack())
        assert columns.packet(0).payload == b""
        assert columns.app_kind[0] == APP_DNS

    def test_parsed_packets_round_trip(self, trace):
        reparsed = [parse_packet(p.to_bytes(), timestamp=p.timestamp) for p in trace[:50]]
        columns = PacketColumns.from_packets(reparsed)
        assert columns.to_packets() == reparsed

    def test_empty_batch(self):
        columns = PacketColumns.from_packets([])
        assert len(columns) == 0
        assert columns.to_packets() == []
        matrix, lengths = columns.wire_matrix()
        assert matrix.shape == (0, 0) and len(lengths) == 0


class TestConcat:
    def test_concat_preserves_rows(self, trace):
        left = PacketColumns.from_packets(trace[:30])
        right = PacketColumns.from_packets(trace[30:80])
        merged = PacketColumns.concat([left, right])
        assert len(merged) == 80
        assert merged.to_packets() == list(trace[:80])

    def test_concat_mixed_payload_widths(self):
        small = PacketColumns.from_packets(_odd_payload_packets()[:2])
        big = PacketColumns.from_packets(
            [build_packet(9.0, "10.0.0.9", "10.0.0.1", "UDP", 1, 2, application=b"y" * 300)]
        )
        merged = PacketColumns.concat([small, big])
        assert merged.payload.shape[1] == 300
        assert merged.to_packets()[-1].payload == b"y" * 300


class TestWireMatrix:
    def test_wire_matrix_matches_to_bytes(self, trace):
        columns = PacketColumns.from_packets(trace)
        matrix, lengths = columns.wire_matrix()
        for i, packet in enumerate(trace):
            assert matrix[i, : lengths[i]].tobytes() == packet.to_bytes()
            assert not matrix[i, lengths[i] :].any()

    @pytest.mark.parametrize("max_bytes,skip", [(None, True), (60, True), (60, False), (8, True)])
    def test_wire_matrix_truncation_and_skip(self, trace, max_bytes, skip):
        columns = PacketColumns.from_packets(trace)
        matrix, lengths = columns.wire_matrix(max_bytes=max_bytes, skip_ethernet=skip)
        for i, packet in enumerate(trace):
            data = packet.to_bytes()
            if skip and len(data) > 14:
                data = data[14:]
            if max_bytes is not None:
                data = data[:max_bytes]
            assert matrix[i, : lengths[i]].tobytes() == data

    def test_wire_matrix_odd_payloads(self):
        packets = _odd_payload_packets()
        columns = PacketColumns.from_packets(packets)
        matrix, lengths = columns.wire_matrix()
        for i, packet in enumerate(packets):
            assert matrix[i, : lengths[i]].tobytes() == packet.to_bytes()

    def test_mixed_ethernet_presence_skip(self):
        with_eth = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2)
        without_eth = Packet(timestamp=0.1, ip=with_eth.ip, transport=with_eth.transport)
        columns = PacketColumns.from_packets([with_eth, without_eth])
        matrix, lengths = columns.wire_matrix(skip_ethernet=True)
        for i, packet in enumerate([with_eth, without_eth]):
            data = packet.to_bytes()
            if len(data) > 14:
                data = data[14:]
            assert matrix[i, : lengths[i]].tobytes() == data
