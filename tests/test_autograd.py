"""Unit and property-based tests for the reverse-mode autograd engine."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, no_grad


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_and_pow(self):
        a = Tensor([4.0], requires_grad=True)
        y = (a ** 2) / 8.0
        y.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        ((-a) - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-2.0, -2.0])

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_scalar_coercion(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 * a + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0])

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        y = (1.0 - a) + (4.0 / a)
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0 - 1.0], rtol=1e-6)

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])
        a.zero_grad()
        assert a.grad is None

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array([object()]))


class TestMatmul:
    def test_matmul_2d_numeric(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numeric_gradient(lambda x: (x @ b_data).sum(), a_data.copy())
        expected_b = numeric_gradient(lambda x: (a_data @ x).sum(), b_data.copy())
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)

    def test_matmul_batched(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_matvec(self):
        a = Tensor(np.eye(3), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(v.grad, np.ones(3))


class TestElementwiseAndReductions:
    def test_tanh_sigmoid_relu_gelu_numeric(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(5,))
        for name in ("tanh", "sigmoid", "relu", "gelu", "exp"):
            x = Tensor(x_data.copy(), requires_grad=True)
            getattr(x, name)().sum().backward()

            def ref(arr, name=name):
                t = Tensor(arr)
                return getattr(t, name)().sum().item()

            expected = numeric_gradient(ref, x_data.copy())
            np.testing.assert_allclose(x.grad, expected, atol=1e-4, err_msg=name)

    def test_log_and_sqrt(self):
        x = Tensor([4.0], requires_grad=True)
        (x.log() + x.sqrt()).sum().backward()
        np.testing.assert_allclose(x.grad, [1 / 4.0 + 0.25], rtol=1e-6)

    def test_mean_and_var(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        assert x.mean().item() == pytest.approx(2.5)
        assert x.var().item() == pytest.approx(1.25)

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_max_backward_splits_ties(self):
        x = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.5, 0.5])

    def test_min(self):
        x = Tensor(np.array([2.0, -1.0, 5.0]), requires_grad=True)
        assert x.min().item() == pytest.approx(-1.0)

    def test_clip_and_abs(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])
        y = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        y.abs().sum().backward()
        np.testing.assert_allclose(y.grad, [-1.0, 1.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 7)), requires_grad=True)
        probs = x.softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4), rtol=1e-8)

    def test_log_softmax_matches_softmax(self):
        x = Tensor(np.random.default_rng(4).normal(size=(2, 5)))
        np.testing.assert_allclose(
            x.log_softmax(axis=-1).data, np.log(x.softmax(axis=-1).data), rtol=1e-8
        )

    def test_softmax_gradient_numeric(self):
        rng = np.random.default_rng(5)
        x_data = rng.normal(size=(6,))
        x = Tensor(x_data.copy(), requires_grad=True)
        (x.softmax(axis=-1)[2]).backward()
        expected = numeric_gradient(
            lambda arr: Tensor(arr).softmax(axis=-1).data[2], x_data.copy()
        )
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestShapeOps:
    def test_reshape_transpose_roundtrip(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        y = x.reshape(4, 3).transpose()
        assert y.shape == (3, 4)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_swapaxes(self):
        x = Tensor(np.zeros((2, 3, 5)))
        assert x.swapaxes(1, 2).shape == (2, 5, 3)

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x[np.array([0, 0, 3])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0, 0, 1.0, 0, 0])

    def test_slicing(self):
        x = Tensor(np.arange(10.0).reshape(2, 5), requires_grad=True)
        x[:, 1:3].sum().backward()
        expected = np.zeros((2, 5))
        expected[:, 1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_expand_squeeze(self):
        x = Tensor(np.ones((3,)), requires_grad=True)
        y = x.expand_dims(0).squeeze(0)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_concatenate_and_stack(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        cat = Tensor.concatenate([a, b], axis=0)
        assert cat.shape == (4, 3)
        stacked = Tensor.stack([a, b], axis=1)
        assert stacked.shape == (2, 2, 3)
        (cat.sum() + stacked.sum()).backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        filled = x.masked_fill(mask, -5.0)
        np.testing.assert_allclose(filled.data, [[-5.0, 1.0], [1.0, -5.0]])
        filled.sum().backward()
        np.testing.assert_allclose(x.grad, (~mask).astype(float))

    def test_take_rows(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = Tensor.take_rows(table, np.array([[0, 1], [1, 1]]))
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(table.grad[:, 0], [1.0, 3.0, 0.0, 0.0])


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 3.0
        assert not out.requires_grad

    def test_no_grad_is_thread_local(self):
        # Grad mode must be per-thread: concurrent no_grad() windows (the
        # serving fabric's workers) interleaving save/restores of a single
        # process-global flag can strand the process with grad disabled.
        from repro.nn.autograd import is_grad_enabled

        inside = threading.Barrier(3, timeout=10.0)
        resume = threading.Barrier(3, timeout=10.0)
        seen: list[bool] = []

        def worker() -> None:
            with no_grad():
                inside.wait()   # both workers hold their windows open ...
                seen.append(is_grad_enabled())
                resume.wait()   # ... while the main thread checks its own.

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        inside.wait()
        main_during = is_grad_enabled()
        resume.wait()
        for thread in threads:
            thread.join(timeout=10.0)

        assert seen == [False, False]
        assert main_during, "a worker's no_grad window leaked across threads"
        assert is_grad_enabled(), "grad mode left disabled after the windows"
        a = Tensor([1.0], requires_grad=True)
        assert (a * 2.0).requires_grad

    def test_as_tensor_idempotent(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1, 2]), Tensor)

    def test_detach_and_copy(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        c = a.copy()
        c.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_diamond_graph_gradient(self):
        # y = (x*2) + (x*3): both branches contribute to x's gradient.
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0 + x * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_reused_node_deep_graph(self):
        x = Tensor([0.5], requires_grad=True)
        h = x
        for _ in range(10):
            h = h * x
        h.sum().backward()
        # d/dx x^11 = 11 x^10
        np.testing.assert_allclose(x.grad, [11 * 0.5 ** 10], rtol=1e-8)


@given(
    st.lists(st.floats(-5, 5), min_size=2, max_size=6),
    st.lists(st.floats(-5, 5), min_size=2, max_size=6),
)
@settings(max_examples=30, deadline=None)
def test_property_add_mul_gradients(a_values, b_values):
    """For elementwise z = a*b + a, dz/da = b + 1 and dz/db = a."""
    size = min(len(a_values), len(b_values))
    a_data = np.array(a_values[:size])
    b_data = np.array(b_values[:size])
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a * b + a).sum().backward()
    np.testing.assert_allclose(a.grad, b_data + 1.0, atol=1e-8)
    np.testing.assert_allclose(b.grad, a_data, atol=1e-8)


@given(st.integers(1, 4), st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_property_softmax_is_distribution(rows, cols):
    rng = np.random.default_rng(rows * 10 + cols)
    x = Tensor(rng.normal(size=(rows, cols)))
    probs = x.softmax(axis=-1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(rows), rtol=1e-9)
