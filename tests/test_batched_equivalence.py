"""Batched fast paths must agree with the per-example reference paths.

Four families of properties are checked:

* every tokenizer's ``encode_batch`` row equals the per-packet
  ``tokenize_packet`` + ``Vocabulary.encode`` pipeline — for packet-list
  input *and* for the columnar :class:`~repro.net.columns.PacketColumns`
  fast path;
* padded id matrices decode back to the original token lists losslessly;
* the vectorized ``mask_tokens`` reproduces the legacy per-sequence masking
  distribution (selection rate and 80/10/10 replacement split);
* the columnar context/pretraining path (``encode_columns`` +
  ``pretrain_encoded``) reproduces the object-based pipeline exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.context import PacketContextBuilder, encode_contexts
from repro.core import NetFMConfig, NetFoundationModel, Pretrainer, PretrainingConfig
from repro.core.pretraining import make_segment_pairs_ids, mask_tokens
from repro.net import APP_OTHER, PacketColumns, build_packet
from repro.nn.data import PackedBatch, pack_batches
from repro.tokenize import (
    BPETokenizer,
    ByteTokenizer,
    FieldAwareTokenizer,
    HexCharTokenizer,
    Vocabulary,
    WordPieceTokenizer,
)
from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig


@pytest.fixture(scope="module")
def trace():
    config = EnterpriseScenarioConfig(
        seed=11, duration=20.0, dns_clients=5, dns_queries_per_client=6,
        http_sessions=10, tls_sessions=10, iot_devices_per_type=1,
    )
    return EnterpriseScenario(config).generate()


@pytest.fixture(scope="module")
def columns(trace):
    return PacketColumns.from_packets(trace)


def _tokenizers(trace):
    return {
        "byte": ByteTokenizer(max_bytes=60),
        "hex-char": HexCharTokenizer(max_bytes=30),
        "field": FieldAwareTokenizer(),
        "bpe": BPETokenizer(num_merges=80, max_bytes=60).fit(trace[:200]),
        "wordpiece": WordPieceTokenizer(vocab_size=200, max_bytes=60).fit(trace[:200]),
    }


class TestEncodeBatchEquivalence:
    @pytest.mark.parametrize("max_len", [None, 32, 7])
    def test_rows_match_per_packet_encoding(self, trace, max_len):
        for name, tokenizer in _tokenizers(trace).items():
            reference = [tokenizer.tokenize_packet(p) for p in trace]
            vocabulary = Vocabulary.build(reference)
            ids, mask = tokenizer.encode_batch(trace, vocabulary, max_len=max_len)
            assert len(ids) == len(trace)
            for row, tokens in enumerate(reference):
                expected = vocabulary.encode(tokens if max_len is None else tokens[:max_len])
                assert ids[row][mask[row]].tolist() == expected, (
                    f"{name}: row {row} diverged from the per-packet path"
                )

    def test_tokenize_trace_matches_tokenize_packet(self, trace):
        for name, tokenizer in _tokenizers(trace).items():
            batched = tokenizer.tokenize_trace(trace)
            reference = [tokenizer.tokenize_packet(p) for p in trace]
            assert batched == reference, f"{name}: tokenize_trace diverged"

    @pytest.mark.parametrize("max_len", [None, 32, 7])
    def test_columnar_rows_match_per_packet_encoding(self, trace, columns, max_len):
        """Every tokenizer over the columnar path equals the per-packet path."""
        for name, tokenizer in _tokenizers(trace).items():
            reference = [tokenizer.tokenize_packet(p) for p in trace]
            vocabulary = Vocabulary.build(reference)
            ids, mask = tokenizer.encode_batch(columns, vocabulary, max_len=max_len)
            assert len(ids) == len(trace)
            for row, tokens in enumerate(reference):
                expected = vocabulary.encode(tokens if max_len is None else tokens[:max_len])
                assert ids[row][mask[row]].tolist() == expected, (
                    f"{name}: columnar row {row} diverged from the per-packet path"
                )

    def test_columnar_tokenize_trace_matches(self, trace, columns):
        for name, tokenizer in _tokenizers(trace).items():
            assert tokenizer.tokenize_trace(columns) == tokenizer.tokenize_trace(trace), (
                f"{name}: tokenize_trace over columns diverged"
            )

    def test_field_aware_include_addresses_columnar(self, trace, columns):
        tokenizer = FieldAwareTokenizer(include_addresses=True)
        reference = [tokenizer.tokenize_packet(p) for p in trace]
        vocabulary = Vocabulary.build(reference)
        ids, mask = tokenizer.encode_batch(columns, vocabulary)
        for row, tokens in enumerate(reference):
            assert ids[row][mask[row]].tolist() == vocabulary.encode(tokens)

    def test_include_addresses_noncanonical_spellings(self):
        """Address tokens render from the original spelling on both paths."""
        packets = [
            build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2),
            build_packet(0.1, "010.0.0.1", "10.0.0.2", "TCP", 3, 4),
        ]
        cols = PacketColumns.from_packets(packets)
        tokenizer = FieldAwareTokenizer(include_addresses=True)
        reference = [tokenizer.tokenize_packet(p) for p in packets]
        assert "ip.src16=010.0" in reference[1]
        vocabulary = Vocabulary.build(reference)
        ids, mask = tokenizer.encode_batch(cols, vocabulary)
        for row, tokens in enumerate(reference):
            assert ids[row][mask[row]].tolist() == vocabulary.encode(tokens)

    def test_unknown_application_falls_back_to_per_packet(self):
        """APP_OTHER rows go through the per-packet tokenizer inside the batch."""

        class Mystery:
            pass

        packets = [
            build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 4000, 80),
            dataclasses.replace(
                build_packet(0.1, "10.0.0.1", "10.0.0.2", "TCP", 4000, 8081),
                application=Mystery(),
            ),
            build_packet(0.2, "10.0.0.2", "10.0.0.1", "UDP", 53, 4001),
        ]
        cols = PacketColumns.from_packets(packets)
        assert cols.app_kind[1] == APP_OTHER
        tokenizer = FieldAwareTokenizer()
        reference = [tokenizer.tokenize_packet(p) for p in packets]
        vocabulary = Vocabulary.build(reference)
        ids, mask = tokenizer.encode_batch(cols, vocabulary)
        for row, tokens in enumerate(reference):
            assert ids[row][mask[row]].tolist() == vocabulary.encode(tokens)

    def test_bpe_refit_invalidates_batch_tables(self, trace):
        tokenizer = BPETokenizer(num_merges=40, max_bytes=60).fit(trace[:100])
        tokenizer.tokenize_trace(trace[:20])  # builds the merge tables
        tokenizer.fit(trace[100:300])  # refit must invalidate them
        batched = tokenizer.tokenize_trace(trace[:50])
        reference = [tokenizer.tokenize_packet(p) for p in trace[:50]]
        assert batched == reference

    def test_padded_matrix_decodes_losslessly(self, trace):
        tokenizer = FieldAwareTokenizer()
        token_lists = tokenizer.tokenize_trace(trace)
        vocabulary = Vocabulary.build(token_lists)
        ids, mask = vocabulary.encode_ids_batch(token_lists)
        assert vocabulary.decode_batch(ids, mask) == token_lists

    def test_encode_ids_batch_truncates_and_pads(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        ids, mask = vocabulary.encode_ids_batch([["a"], ["a", "b", "c"], []], max_len=2)
        assert ids.shape == (3, 2)
        assert mask.tolist() == [[True, False], [True, True], [False, False]]
        assert ids[0, 1] == vocabulary.pad_id
        assert ids[1].tolist() == vocabulary.encode(["a", "b"])


def _legacy_mask_tokens(token_ids, attention_mask, vocabulary, rng, mask_probability):
    """The pre-vectorization reference implementation (per-sequence loop)."""
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    special = np.isin(token_ids, list(vocabulary.special_ids))
    candidates = attention_mask & ~special
    selection = np.zeros_like(candidates)
    for row in range(token_ids.shape[0]):
        for col in range(token_ids.shape[1]):
            if candidates[row, col] and rng.random() < mask_probability:
                selection[row, col] = True
        if candidates[row].any() and not selection[row].any():
            choices = np.nonzero(candidates[row])[0]
            selection[row, rng.choice(choices)] = True
    masked = token_ids.copy()
    for row, col in zip(*np.nonzero(selection)):
        roll = rng.random()
        if roll < 0.8:
            masked[row, col] = vocabulary.mask_id
        elif roll < 0.9:
            masked[row, col] = rng.integers(len(vocabulary.special_ids), len(vocabulary))
    return masked, token_ids, selection


class TestMaskingDistribution:
    def test_vectorized_masking_matches_legacy_distribution(self):
        vocabulary = Vocabulary([f"tok{i}" for i in range(60)])
        rng_data = np.random.default_rng(5)
        ids = rng_data.integers(5, len(vocabulary), size=(400, 32))
        mask = np.ones_like(ids, dtype=bool)
        mask[:, 24:] = False

        new_masked, new_targets, new_sel = mask_tokens(
            ids, mask, vocabulary, np.random.default_rng(0), 0.15
        )
        old_masked, old_targets, old_sel = _legacy_mask_tokens(
            ids, mask, vocabulary, np.random.default_rng(0), 0.15
        )
        np.testing.assert_array_equal(new_targets, old_targets)

        candidates = mask.sum()
        # Selection rates agree within a few percent of the candidate pool.
        assert abs(new_sel.sum() - old_sel.sum()) / candidates < 0.02

        def split(masked, sel, originals):
            chosen = sel.sum()
            as_mask = (masked[sel] == vocabulary.mask_id).sum() / chosen
            kept = (masked[sel] == originals[sel]).sum() / chosen
            return as_mask, kept

        new_80, new_kept = split(new_masked, new_sel, ids)
        old_80, old_kept = split(old_masked, old_sel, ids)
        assert abs(new_80 - old_80) < 0.05
        assert abs(new_kept - old_kept) < 0.05
        # And both track BERT's 80/10/10 recipe.
        assert 0.7 < new_80 < 0.9
        assert new_kept < 0.25

    def test_every_candidate_row_gets_a_mask(self):
        vocabulary = Vocabulary([f"tok{i}" for i in range(20)])
        ids = np.full((16, 4), vocabulary.token_to_id("tok1"), dtype=np.int64)
        mask = np.ones_like(ids, dtype=bool)
        _, _, selection = mask_tokens(
            ids, mask, vocabulary, np.random.default_rng(3), mask_probability=0.01
        )
        assert selection.any(axis=1).all()


class TestSegmentPairsIds:
    def test_structure_and_labels(self, trace):
        from repro.context import FlowContextBuilder

        tokenizer = FieldAwareTokenizer()
        contexts = FlowContextBuilder(max_tokens=48).build(trace, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, mask = vocabulary.encode_ids_batch([c.tokens for c in contexts], max_len=48)
        pair_ids, pair_mask, labels = make_segment_pairs_ids(
            ids, mask, vocabulary, np.random.default_rng(0)
        )
        assert len(pair_ids) == len(pair_mask) == len(labels) > 0
        assert set(labels.tolist()) == {0, 1}
        # Every pair starts with [CLS] and contains no padding inside the mask.
        assert (pair_ids[:, 0] == vocabulary.cls_id).all()
        assert (pair_ids[pair_mask] != vocabulary.pad_id).all()
        assert (pair_ids[~pair_mask] == vocabulary.pad_id).all()
        # Positive examples reproduce their source row prefix.
        positive = np.flatnonzero(labels == 1)
        lengths = mask.sum(axis=1)
        usable = np.flatnonzero(lengths >= 6)
        for row in positive[:5]:
            source = usable[row]
            width = int(pair_mask[row].sum())
            np.testing.assert_array_equal(
                pair_ids[row][:width], ids[source][:width]
            )

    def test_too_few_contexts_yields_empty(self):
        vocabulary = Vocabulary(["x"])
        ids = np.full((1, 8), vocabulary.token_to_id("x"))
        mask = np.ones_like(ids, dtype=bool)
        pair_ids, pair_mask, labels = make_segment_pairs_ids(
            ids, mask, vocabulary, np.random.default_rng(0)
        )
        assert len(pair_ids) == len(labels) == 0


class TestPackedBatches:
    def test_pack_batches_cover_all_rows_trimmed(self):
        rng = np.random.default_rng(7)
        lengths = rng.integers(1, 20, size=37)
        width = 32
        ids = np.zeros((37, width), dtype=np.int64)
        mask = np.arange(width)[None, :] < lengths[:, None]
        ids[mask] = rng.integers(5, 50, size=int(lengths.sum()))
        batches = pack_batches(ids, mask, batch_size=8, rng=np.random.default_rng(0))
        seen = np.concatenate([b.indices for b in batches])
        assert sorted(seen.tolist()) == list(range(37))
        for batch in batches:
            batch_lengths = mask[batch.indices].sum(axis=1)
            assert batch.width == max(int(batch_lengths.max()), 1)
            np.testing.assert_array_equal(
                batch.token_ids, ids[batch.indices][:, : batch.width]
            )
            assert batch.num_tokens == int(batch_lengths.sum())

    def test_from_rows_reusable_buffers(self):
        ids = np.arange(40).reshape(4, 10)
        mask = np.ones((4, 10), dtype=bool)
        mask[:, 6:] = False
        buffers = (np.empty((4, 10), dtype=ids.dtype), np.empty((4, 10), dtype=bool))
        batch = PackedBatch.from_rows(ids, mask, np.array([1, 3]), out=buffers)
        assert batch.width == 6
        np.testing.assert_array_equal(batch.token_ids, ids[[1, 3], :6])
        assert batch.token_ids.base is buffers[0]


class TestColumnarTrainingPath:
    """Columns -> encode_columns -> pretrain_encoded equals the object path."""

    def test_encode_columns_matches_encode_contexts(self, trace, columns):
        tokenizer = FieldAwareTokenizer()
        builder = PacketContextBuilder(max_tokens=32)
        contexts = builder.build(trace, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids_obj, mask_obj = encode_contexts(contexts, vocabulary, builder.max_tokens)
        ids_col, mask_col = builder.encode_columns(columns, tokenizer, vocabulary)
        np.testing.assert_array_equal(ids_obj, ids_col)
        np.testing.assert_array_equal(mask_obj, mask_col)

    def test_builders_accept_columns(self, trace, columns):
        from repro.context import FlowContextBuilder

        tokenizer = FieldAwareTokenizer()
        for builder in (PacketContextBuilder(max_tokens=32), FlowContextBuilder(max_tokens=48)):
            from_packets = builder.build(trace, tokenizer)
            from_columns = builder.build(columns, tokenizer)
            assert [c.tokens for c in from_columns] == [c.tokens for c in from_packets]
            assert [c.label for c in from_columns] == [c.label for c in from_packets]

    def test_pretrain_encoded_matches_pretrain(self, trace, columns):
        tokenizer = FieldAwareTokenizer()
        builder = PacketContextBuilder(max_tokens=32)
        contexts = builder.build(trace, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, mask = builder.encode_columns(columns, tokenizer, vocabulary)

        def train(encoded: bool):
            config = NetFMConfig(
                vocab_size=len(vocabulary), d_model=16, num_layers=1, num_heads=2,
                d_ff=32, max_len=32, dropout=0.0, seed=0,
            )
            model = NetFoundationModel(config)
            pretrainer = Pretrainer(
                model, vocabulary, PretrainingConfig(epochs=1, batch_size=8, seed=0)
            )
            if encoded:
                return pretrainer.pretrain_encoded(ids, mask)
            return pretrainer.pretrain(contexts)

        np.testing.assert_allclose(train(True).losses, train(False).losses)

    def test_pretrain_encoded_rejects_qa(self, columns):
        vocabulary = Vocabulary(["x"])
        config = NetFMConfig(
            vocab_size=len(vocabulary), d_model=16, num_layers=1, num_heads=2,
            d_ff=32, max_len=8, dropout=0.0, seed=0,
        )
        pretrainer = Pretrainer(
            NetFoundationModel(config), vocabulary,
            PretrainingConfig(objectives=("mlm", "qa"), seed=0),
        )
        ids = np.zeros((2, 8), dtype=np.int64)
        mask = np.ones((2, 8), dtype=bool)
        with pytest.raises(ValueError, match="qa"):
            pretrainer.pretrain_encoded(ids, mask)
