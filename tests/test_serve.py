"""The streaming inference subsystem (`repro.serve`).

The serving layer's contract is equivalence with the offline pipeline: for
every closed flow, the :class:`~repro.serve.assembler.StreamingFlowAssembler`
must reproduce the offline
:meth:`~repro.context.builders.FlowContextBuilder.encode_columns` context
row bit-identically — for any chunk size — and the micro-batched
:class:`~repro.serve.engine.InferenceEngine` must reproduce the offline
solver path's predictions.  Timeout splitting must match
``FlowTable(idle_timeout=...)`` (the rule is shared through
:func:`repro.net.flow_columns.is_idle_split`), and the prediction cache must
return logits identical to the forward pass a hit replaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import FlowContextBuilder, SessionContextBuilder
from repro.core import NetFMConfig, NetFoundationModel, SequenceClassifier
from repro.net import FlowTable, PacketColumns, build_packet, write_pcap
from repro.serve import (
    ColumnsSource,
    InferenceEngine,
    PcapReplaySource,
    PredictionCache,
    ScenarioSource,
    StreamingFlowAssembler,
    chunk_columns,
    serve_stream,
)
from repro.tokenize import ByteTokenizer, FieldAwareTokenizer, Vocabulary
from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig

MAX_TOKENS = 64


@pytest.fixture(scope="module")
def capture():
    columns = EnterpriseScenario(
        EnterpriseScenarioConfig(
            seed=6, duration=12.0, dns_clients=4, dns_queries_per_client=5,
            http_sessions=6, tls_sessions=6, iot_devices_per_type=1,
        )
    ).generate_columns()
    return columns, columns.to_packets()


@pytest.fixture(scope="module")
def encoded(capture):
    """Offline reference: tokenizer, vocabulary and the encoded flow rows."""
    columns, packets = capture
    tokenizer = FieldAwareTokenizer()
    builder = FlowContextBuilder(max_tokens=MAX_TOKENS)
    contexts = builder.build(packets, tokenizer)
    vocabulary = Vocabulary.build([c.tokens for c in contexts])
    ids, mask, labels = builder.encode_columns(
        columns, tokenizer, vocabulary, return_labels=True
    )
    return tokenizer, vocabulary, ids, mask, labels


@pytest.fixture(scope="module")
def classifier(encoded):
    _, vocabulary, *_ = encoded
    config = NetFMConfig(
        vocab_size=len(vocabulary), d_model=32, num_layers=2, num_heads=4,
        d_ff=64, max_len=MAX_TOKENS, dropout=0.0, seed=0,
    )
    return SequenceClassifier(NetFoundationModel(config), num_classes=4)


def stream_records(columns, tokenizer, vocabulary, chunk_rows, **assembler_kwargs):
    assembler = StreamingFlowAssembler(
        tokenizer, vocabulary,
        builder=assembler_kwargs.pop(
            "builder", FlowContextBuilder(max_tokens=MAX_TOKENS)
        ),
        **assembler_kwargs,
    )
    records = []
    for chunk in chunk_columns(columns, chunk_rows):
        records.extend(assembler.push(chunk))
    records.extend(assembler.flush())
    return records


class TestStreamingEquivalence:
    """Streamed closed-flow contexts == offline encode_columns, bit for bit."""

    @pytest.mark.parametrize("chunk_rows", [1, 13, None])
    def test_flow_contexts_match_offline(self, capture, encoded, chunk_rows):
        columns, _ = capture
        tokenizer, vocabulary, ids, mask, labels = encoded
        records = stream_records(
            columns, tokenizer, vocabulary, chunk_rows or len(columns)
        )
        # With no timeouts every flow closes at flush, in first-arrival
        # order — exactly the offline first-appearance group order.
        assert len(records) == len(ids)
        for row, record in enumerate(records):
            assert np.array_equal(record.token_ids, ids[row])
            assert np.array_equal(record.attention_mask, mask[row])
            assert record.label == labels[row]
            assert record.generation == 0

    @pytest.mark.parametrize("chunk_rows", [1, 13, None])
    def test_session_contexts_match_offline(self, capture, chunk_rows):
        columns, packets = capture
        tokenizer = FieldAwareTokenizer()
        builder = SessionContextBuilder(max_tokens=MAX_TOKENS)
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, mask, labels = builder.encode_columns(
            columns, tokenizer, vocabulary, return_labels=True
        )
        records = stream_records(
            columns, tokenizer, vocabulary, chunk_rows or len(columns),
            builder=SessionContextBuilder(max_tokens=MAX_TOKENS),
        )
        assert len(records) == len(ids)
        for row, record in enumerate(records):
            assert np.array_equal(record.token_ids, ids[row])
            assert np.array_equal(record.attention_mask, mask[row])
            assert record.label == labels[row]

    def test_byte_tokenizer_contexts_match_offline(self, capture):
        columns, packets = capture
        tokenizer = ByteTokenizer()
        builder = FlowContextBuilder(max_tokens=48)
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, mask = builder.encode_columns(columns, tokenizer, vocabulary)
        assembler = StreamingFlowAssembler(
            tokenizer, vocabulary, builder=FlowContextBuilder(max_tokens=48)
        )
        records = []
        for chunk in chunk_columns(columns, 17):
            records.extend(assembler.push(chunk))
        records.extend(assembler.flush())
        assert len(records) == len(ids)
        for row, record in enumerate(records):
            assert np.array_equal(record.token_ids, ids[row])

    def test_fallback_keys_without_metadata_ids(self, encoded):
        # Parsed-pcap shape: no connection ids -> 5-tuple fallback keys.
        packets = [
            build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80),
            build_packet(0.1, "10.0.0.2", "10.0.0.1", "TCP", 80, 1111),
            build_packet(0.2, "10.0.0.3", "10.0.0.2", "UDP", 2222, 53),
            build_packet(0.3, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80),
        ]
        columns = PacketColumns.from_packets(packets)
        tokenizer = FieldAwareTokenizer()
        builder = FlowContextBuilder(max_tokens=32, label_key=None)
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, _ = builder.encode_columns(columns, tokenizer, vocabulary)
        records = stream_records(
            columns, tokenizer, vocabulary, 1,
            builder=FlowContextBuilder(max_tokens=32, label_key=None),
        )
        assert len(records) == len(ids) == 2
        for row, record in enumerate(records):
            assert np.array_equal(record.token_ids, ids[row])

    def test_record_metadata(self, capture, encoded):
        columns, _ = capture
        tokenizer, vocabulary, ids, *_ = encoded
        records = stream_records(columns, tokenizer, vocabulary, 32)
        assert sum(r.packet_count for r in records) == len(columns)
        for record in records:
            assert record.closed_by == "flush"
            assert record.end_time >= record.start_time
            assert len(record) == int(record.attention_mask.sum())


class TestTimeouts:
    """Idle/active splitting: FlowTable semantics, chunk-size invariant."""

    @pytest.mark.parametrize("idle_timeout", [0.05, 0.2, 1.0])
    def test_idle_partition_matches_flowtable(self, capture, encoded, idle_timeout):
        columns, packets = capture
        tokenizer, vocabulary, *_ = encoded
        table = FlowTable(idle_timeout=idle_timeout)
        table.extend(packets)
        flows = table.flows()
        records = stream_records(
            columns, tokenizer, vocabulary, 13, idle_timeout=idle_timeout
        )
        assert len(records) == len(flows)
        assert sorted(r.packet_count for r in records) == sorted(
            f.packet_count for f in flows
        )

    @pytest.mark.parametrize("idle_timeout,active_timeout", [(0.2, 0.0), (0.0, 0.5), (0.2, 1.0)])
    def test_chunk_size_invariance(self, capture, encoded, idle_timeout, active_timeout):
        columns, _ = capture
        tokenizer, vocabulary, *_ = encoded
        reference = None
        for chunk_rows in (1, 13, len(columns)):
            records = stream_records(
                columns, tokenizer, vocabulary, chunk_rows,
                idle_timeout=idle_timeout, active_timeout=active_timeout,
            )
            snapshot = {
                (r.key, r.generation): (
                    r.packet_count, r.label, r.token_ids.tobytes(),
                    r.attention_mask.tobytes(),
                )
                for r in records
            }
            assert len(snapshot) == len(records)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference

    def test_idle_eviction_emits_mid_stream(self, capture, encoded):
        columns, _ = capture
        tokenizer, vocabulary, *_ = encoded
        assembler = StreamingFlowAssembler(
            tokenizer, vocabulary,
            builder=FlowContextBuilder(max_tokens=MAX_TOKENS), idle_timeout=0.2,
        )
        pushed = []
        for chunk in chunk_columns(columns, 16):
            pushed.extend(assembler.push(chunk))
        flushed = assembler.flush()
        # Idle flows close while the stream runs, not all at flush.
        assert len(pushed) > 0
        assert {r.closed_by for r in pushed} <= {"idle", "active", "evict"}
        assert all(r.closed_by == "flush" for r in flushed)
        # Eviction bounds the open-flow state.
        assert len(assembler) == 0

    def test_generations_of_a_reappearing_flow(self, encoded):
        tokenizer, vocabulary, *_ = encoded
        packets = [
            build_packet(t, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80,
                         metadata={"connection_id": 0})
            for t in (0.0, 0.1, 5.0, 5.1, 10.0)
        ]
        columns = PacketColumns.from_packets(packets)
        records = stream_records(
            columns, tokenizer, vocabulary, 1, idle_timeout=1.0,
        )
        assert [r.generation for r in records] == [0, 1, 2]
        assert [r.packet_count for r in records] == [2, 2, 1]
        assert [r.key for r in records] == ["conn-0"] * 3


class TestInferenceEngine:
    def _streamed(self, columns, encoded, classifier, chunk_rows, **engine_kwargs):
        tokenizer, vocabulary, *_ = encoded
        assembler = StreamingFlowAssembler(
            tokenizer, vocabulary, builder=FlowContextBuilder(max_tokens=MAX_TOKENS)
        )
        engine = InferenceEngine(classifier, **engine_kwargs)
        predictions = list(
            serve_stream(ColumnsSource(columns, chunk_rows=chunk_rows), assembler, engine)
        )
        return predictions, engine

    def test_streamed_predictions_match_offline_solver_path(
        self, capture, encoded, classifier
    ):
        columns, _ = capture
        _, _, ids, mask, _ = encoded
        offline_classes = classifier.predict(ids, mask)
        offline_logits = classifier.predict_logits(ids, mask)
        predictions, _ = self._streamed(
            columns, encoded, classifier, chunk_rows=32, batch_size=8
        )
        assert len(predictions) == len(ids)
        for prediction in predictions:
            row = int(np.flatnonzero(
                (ids == prediction.record.token_ids).all(axis=1)
            )[0])
            assert prediction.class_id == offline_classes[row]
            np.testing.assert_allclose(
                prediction.logits, offline_logits[row], rtol=0, atol=1e-10
            )

    @pytest.mark.parametrize("chunk_rows", [1, 13, None])
    def test_streamed_logits_chunk_size_invariant(
        self, capture, encoded, classifier, chunk_rows
    ):
        columns, _ = capture
        reference, _ = self._streamed(
            columns, encoded, classifier, chunk_rows=7, batch_size=8
        )
        predictions, _ = self._streamed(
            columns, encoded, classifier,
            chunk_rows=chunk_rows or len(columns), batch_size=8,
        )
        assert len(predictions) == len(reference)
        for a, b in zip(reference, predictions):
            assert a.record.key == b.record.key
            assert np.array_equal(a.logits, b.logits)

    def test_cache_hit_returns_identical_logits(self, capture, encoded, classifier):
        columns, _ = capture
        predictions, engine = self._streamed(
            columns, encoded, classifier, chunk_rows=32,
            batch_size=8, cache=PredictionCache(),
        )
        fresh = {
            p.record.cache_key: p.logits for p in predictions if not p.cached
        }
        hits = [p for p in predictions if p.cached]
        assert hits, "expected repeated contexts in the DNS-heavy capture"
        for prediction in hits:
            assert np.array_equal(
                prediction.logits, fresh[prediction.record.cache_key]
            )
        assert engine.cache.hits == len(hits)
        assert engine.cache.hit_rate == pytest.approx(
            len(hits) / len(predictions)
        )

    def test_cache_keys_are_dtype_namespaced(self, capture, encoded, classifier):
        # A float64 and a float32 engine sharing one PredictionCache must
        # never serve each other's logits: engine keys carry a dtype prefix
        # (see InferenceEngine.cache_key_for), so the f32 pass below runs
        # against a cache already warm with f64 rows and hits none of them.
        columns, _ = capture
        cache = PredictionCache()
        predictions64, engine64 = self._streamed(
            columns, encoded, classifier, chunk_rows=32, batch_size=8,
            cache=cache,
        )
        hits64 = cache.hits
        predictions32, engine32 = self._streamed(
            columns, encoded, classifier, chunk_rows=32, batch_size=8,
            cache=cache, serve_dtype="float32",
        )
        assert engine64.model_dtype == "float64"
        assert engine32.model_dtype == "float32"
        record = predictions64[0].record
        assert engine64.cache_key_for(record).startswith(b"float64:")
        assert engine32.cache_key_for(record).startswith(b"float32:")
        assert engine64.cache_key_for(record) != engine32.cache_key_for(record)
        assert all(p.logits.dtype == np.float64 for p in predictions64)
        assert all(p.logits.dtype == np.float32 for p in predictions32)
        # Identical hit pattern within each dtype (keys ignore logits), but
        # zero cross-dtype hits: the second pass earns exactly as many hits
        # again as the first did, all against its own float32 entries.
        assert [p.cached for p in predictions32] == [
            p.cached for p in predictions64
        ]
        assert cache.hits == 2 * hits64
        assert [p.class_id for p in predictions32] == [
            p.class_id for p in predictions64
        ]

    def test_report_stamps_dtype_and_policy(self, capture, encoded, classifier):
        columns, _ = capture
        _, engine64 = self._streamed(
            columns, encoded, classifier, chunk_rows=32, batch_size=8
        )
        _, engine32 = self._streamed(
            columns, encoded, classifier, chunk_rows=32, batch_size=8,
            serve_dtype="float32",
        )
        assert engine64.summary()["model_dtype"] == "float64"
        assert engine64.summary()["numeric_policy"] == "bit-exact-f64"
        assert engine32.summary()["model_dtype"] == "float32"
        assert engine32.summary()["numeric_policy"] == "relaxed-ulp-f32"
        # Merging reports from workers serving different builds must not
        # silently keep one side: the stamp degrades to "mixed".
        engine64.report.merge(engine32.report)
        assert engine64.report.model_dtype == "mixed"
        assert engine64.report.numeric_policy == "mixed"

    def test_cache_key_ignores_cache_exempt_bytes(self, encoded):
        # Two DNS transactions identical modulo the transaction id — the
        # byte PR 4's decode cache is keyed modulo — produce identical
        # field-aware contexts, hence one cache entry.
        from repro.net import DNSMessage, DNSQuestion

        tokenizer, vocabulary, *_ = encoded

        def query(t, txid, conn):
            message = DNSMessage(
                transaction_id=txid,
                questions=[DNSQuestion("printer.local")],
            )
            return build_packet(
                t, "10.0.0.9", "10.0.0.53", "UDP", 5353, 53,
                application=message, metadata={"connection_id": conn},
            )

        columns = PacketColumns.from_packets(
            [query(0.0, 0x1111, 0), query(1.0, 0x2222, 1)]
        )
        records = stream_records(columns, tokenizer, vocabulary, 1)
        assert len(records) == 2
        assert records[0].cache_key == records[1].cache_key

    def test_backpressure_bounds_pending(self, capture, encoded, classifier):
        columns, _ = capture
        tokenizer, vocabulary, *_ = encoded
        assembler = StreamingFlowAssembler(
            tokenizer, vocabulary, builder=FlowContextBuilder(max_tokens=MAX_TOKENS)
        )
        engine = InferenceEngine(classifier, batch_size=4, max_pending=6)
        completed = 0
        for chunk in chunk_columns(columns, 64):
            for record in assembler.push(chunk):
                completed += len(engine.submit(record))
                assert engine.pending <= engine.max_pending
        for record in assembler.flush():
            completed += len(engine.submit(record))
            assert engine.pending <= engine.max_pending
        completed += len(engine.flush())
        assert engine.pending == 0
        assert completed == len(
            FlowContextBuilder(max_tokens=MAX_TOKENS).group_columns(columns)[1]
        ) - 1

    def test_report_summary(self, capture, encoded, classifier):
        columns, _ = capture
        predictions, engine = self._streamed(
            columns, encoded, classifier, chunk_rows=32,
            batch_size=8, cache=PredictionCache(),
        )
        summary = engine.summary()
        assert summary["flows"] == len(predictions)
        assert summary["packets"] == len(columns)
        assert summary["flows_per_s"] > 0
        assert summary["packets_per_s"] > 0
        assert summary["p99_ms"] >= summary["p50_ms"] >= 0
        assert summary["batches"] == engine.report.batches
        assert 0.0 <= summary["cache_hit_rate"] <= 1.0

    def test_prediction_cache_lru_bound(self):
        cache = PredictionCache(max_entries=2)
        for key in (b"a", b"b", b"c"):
            cache.put(key, np.zeros(2))
        assert len(cache) == 2
        assert cache.get(b"a") is None  # evicted, counted as a miss
        assert cache.get(b"c") is not None


class TestSources:
    def test_chunk_columns_covers_all_rows(self, capture):
        columns, _ = capture
        chunks = list(chunk_columns(columns, 17))
        assert sum(len(c) for c in chunks) == len(columns)
        assert all(len(c) <= 17 for c in chunks)
        restored = np.concatenate([c.timestamps for c in chunks])
        assert np.array_equal(restored, columns.timestamps)

    def test_chunk_columns_rejects_nonpositive(self, capture):
        columns, _ = capture
        with pytest.raises(ValueError):
            list(chunk_columns(columns, 0))

    def test_pcap_replay_source_is_lazy_and_equivalent(self, capture, tmp_path):
        columns, packets = capture
        path = tmp_path / "capture.pcap"
        write_pcap(path, packets)
        chunks = list(PcapReplaySource(path, chunk_rows=64))
        assert sum(len(c) for c in chunks) == len(columns)
        # Lazy decode: chunks keep the pending state until apps are touched.
        assert all(getattr(c, "decode_pending", False) for c in chunks)
        eager = list(PcapReplaySource(path, chunk_rows=64, lazy_decode=False))
        for lazy, plain in zip(chunks, eager):
            assert np.array_equal(lazy.app_kind, plain.app_kind)
            assert lazy.applications == plain.applications

    def test_byte_level_serving_is_decode_free(self, capture, tmp_path):
        # The serving fast path: a byte-level pipeline over a lazily parsed
        # capture never touches the application layer at all.
        columns, packets = capture
        path = tmp_path / "capture.pcap"
        write_pcap(path, packets)
        tokenizer = ByteTokenizer()
        builder = FlowContextBuilder(max_tokens=48, label_key=None)
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        assembler = StreamingFlowAssembler(
            tokenizer, vocabulary,
            builder=FlowContextBuilder(max_tokens=48, label_key=None),
        )
        chunks = list(PcapReplaySource(path, chunk_rows=64))
        records = []
        for chunk in chunks:
            records.extend(assembler.push(chunk))
        records.extend(assembler.flush())
        assert records
        assert all(chunk.decode_pending for chunk in chunks)

    def test_scenario_source_matches_generator(self):
        scenario = EnterpriseScenario(
            EnterpriseScenarioConfig(
                seed=3, duration=5.0, dns_clients=2, dns_queries_per_client=3,
                http_sessions=2, tls_sessions=2, iot_devices_per_type=1,
            )
        )
        chunks = list(ScenarioSource(scenario, chunk_rows=32))
        reference = scenario.generate_columns()
        assert sum(len(c) for c in chunks) == len(reference)
        assert np.array_equal(
            np.concatenate([c.timestamps for c in chunks]), reference.timestamps
        )

    def test_paced_replay_sleeps(self, capture, monkeypatch):
        columns, _ = capture
        naps = []
        import repro.serve.stream as stream_module

        monkeypatch.setattr(stream_module.time, "sleep", naps.append)
        list(ColumnsSource(columns, chunk_rows=64, pace=1000.0))
        assert naps and all(delay >= 0 for delay in naps)
