"""The documented-ulp numeric policy (``repro.nn.numeric``).

Three layers of coverage:

* the ulp harness itself, on hand-built arrays — adjacent values, sign
  flips across zero, denormals, infinities, NaNs, signed zeros, mixed
  dtypes — where every distance is known by construction;
* the tolerance table: policy identifiers per dtype, ``Budget`` lookups,
  the float64 bit-exact degenerate case, unknown-layer errors;
* seeded f32-vs-f64 sweeps over every fused kernel at serving shapes,
  parametrized over both dtypes: the float64 arm pins the bit-exact policy
  (budget 0), the float32 arm pins the documented :data:`ULP_BUDGETS`.

Plus the ``serve_dtype`` build machinery the policy governs: one-time cast
on :meth:`SequenceClassifier.serving_build`, checkpoint round-trips that
preserve the serving dtype, and config validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import NetFMConfig
from repro.core.finetuning import FinetuneConfig, SequenceClassifier
from repro.core.model import NetFoundationModel
from repro.nn import (
    LayerNorm,
    MultiHeadAttention,
    Tensor,
    cross_entropy,
    load_checkpoint,
    masked_cross_entropy,
    no_grad,
    save_checkpoint,
)
from repro.nn.numeric import (
    POLICY_BIT_EXACT_F64,
    POLICY_RELAXED_ULP_F32,
    Budget,
    ULP_BUDGETS,
    assert_within_ulp,
    max_ulp_diff,
    numeric_policy,
    ulp_budget,
    ulp_diff,
)

# ---------------------------------------------------------------------------
# The harness on hand-built arrays
# ---------------------------------------------------------------------------


class TestUlpDiff:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_identical_arrays_are_zero(self, dtype):
        x = np.array([-3.5, -0.0, 0.0, 1e-30, 7.25], dtype=dtype)
        assert np.array_equal(ulp_diff(x, x.copy()), np.zeros(5))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_adjacent_values_are_one(self, dtype):
        one = dtype(1.0)
        x = np.array([one], dtype=dtype)
        y = np.array([np.nextafter(one, dtype(2.0))], dtype=dtype)
        assert max_ulp_diff(x, y) == 1.0
        assert max_ulp_diff(y, x) == 1.0

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_signed_zeros_are_equal(self, dtype):
        assert max_ulp_diff(
            np.array([0.0], dtype=dtype), np.array([-0.0], dtype=dtype)
        ) == 0.0

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_denormal_is_one_ulp_from_zero(self, dtype):
        tiny = np.nextafter(dtype(0.0), dtype(1.0))  # smallest denormal
        assert max_ulp_diff(
            np.array([tiny], dtype=dtype), np.array([0.0], dtype=dtype)
        ) == 1.0

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sign_flip_counts_through_zero(self, dtype):
        # The distance from +tiny to -tiny must cross zero: one ulp down to
        # 0.0, one ulp further to -tiny.
        tiny = np.nextafter(dtype(0.0), dtype(1.0))
        a = np.array([tiny], dtype=dtype)
        b = np.array([-tiny], dtype=dtype)
        assert max_ulp_diff(a, b) == 2.0

    def test_sign_flip_of_large_values_is_huge_not_overflowed(self):
        # Opposite-sign int64 orderings can overflow naive subtraction; the
        # distance must come back as the (astronomical) true magnitude.
        a = np.array([np.finfo(np.float64).max], dtype=np.float64)
        b = -a
        diff = max_ulp_diff(a, b)
        assert np.isfinite(diff) and diff > 2**62

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_infinities(self, dtype):
        inf = np.array([np.inf], dtype=dtype)
        assert max_ulp_diff(inf, inf.copy()) == 0.0
        assert max_ulp_diff(inf, -inf) == np.inf
        assert max_ulp_diff(inf, np.array([1.0], dtype=dtype)) == np.inf

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_nans(self, dtype):
        nan = np.array([np.nan], dtype=dtype)
        assert max_ulp_diff(nan, nan.copy()) == 0.0  # NaN-vs-NaN: equal
        assert max_ulp_diff(nan, np.array([1.0], dtype=dtype)) == np.inf

    def test_mixed_dtypes_measure_in_float32_ulps(self):
        # A float64 reference is cast down once, so a reference value that
        # rounds to the same float32 is distance zero.
        a32 = np.array([1.0], dtype=np.float32)
        b64 = np.array([1.0 + 1e-12], dtype=np.float64)
        assert max_ulp_diff(a32, b64) == 0.0
        # ... and one float32 ulp of separation is distance one.
        c64 = np.array([1.0 + 1.25 * np.finfo(np.float32).eps], dtype=np.float64)
        assert max_ulp_diff(a32, c64) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            ulp_diff(np.zeros(3), np.zeros(4))

    def test_integer_arrays_are_rejected(self):
        with pytest.raises(TypeError, match="float32/float64"):
            ulp_diff(np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64))

    def test_empty_arrays(self):
        assert max_ulp_diff(np.zeros(0), np.zeros(0)) == 0.0
        assert assert_within_ulp(np.zeros(0), np.zeros(0), 0) == 0.0


class TestAssertWithinUlp:
    def test_passes_and_returns_measured_max(self):
        a = np.array([1.0], dtype=np.float32)
        b = np.array([np.nextafter(np.float32(1.0), np.float32(2.0))])
        assert assert_within_ulp(a, b.astype(np.float32), 4) == 1.0

    def test_failure_names_worst_element(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = a.copy()
        b[1] = np.nextafter(np.nextafter(b[1], 9.0), 9.0)  # 2 ulps off
        with pytest.raises(AssertionError, match=r"logit row.*index \(1,\)"):
            assert_within_ulp(a, b, 1, what="logit row")

    def test_budget_atol_floor_exempts_cancellation(self):
        # 1e-8 is thousands of ulps from 2e-8 in float32 but well inside a
        # 1e-6 absolute floor — the Budget's second member must exempt it.
        a = np.array([1e-8], dtype=np.float32)
        b = np.array([2e-8], dtype=np.float32)
        assert max_ulp_diff(a, b) > 1000
        assert assert_within_ulp(a, b, Budget(ulp=1, atol=1e-6)) == 0.0
        with pytest.raises(AssertionError):
            assert_within_ulp(a, b, Budget(ulp=1, atol=0.0))

    def test_bare_int_budget_means_zero_atol(self):
        a = np.array([1e-8], dtype=np.float32)
        b = np.array([2e-8], dtype=np.float32)
        with pytest.raises(AssertionError):
            assert_within_ulp(a, b, 1000)


# ---------------------------------------------------------------------------
# The tolerance table
# ---------------------------------------------------------------------------


class TestPolicyTable:
    def test_policy_identifiers(self):
        assert numeric_policy("float64") == POLICY_BIT_EXACT_F64
        assert numeric_policy(np.float32) == POLICY_RELAXED_ULP_F32
        with pytest.raises(ValueError, match="float16"):
            numeric_policy("float16")

    def test_float64_budget_is_bit_exact_for_every_layer(self):
        for layer in ULP_BUDGETS:
            assert ulp_budget(layer, "float64") == Budget(0, 0.0)

    def test_float32_budgets_come_from_the_table(self):
        for layer, budget in ULP_BUDGETS.items():
            assert ulp_budget(layer) == budget
            assert budget.ulp > 0 and budget.atol >= 0.0

    def test_unknown_layer_raises_with_known_keys(self):
        with pytest.raises(KeyError, match="conv.*layer_norm"):
            ulp_budget("conv")


# ---------------------------------------------------------------------------
# Seeded f32-vs-f64 sweeps over the fused kernels at serving shapes
# ---------------------------------------------------------------------------

SERVING_SHAPES = [(4, 16, 32), (32, 64, 32), (2, 7, 16)]

DTYPES = [np.float64, np.float32]


def _check(actual, reference, layer, dtype, what):
    """Assert the per-layer contract: bit-exact for f64, budget for f32."""
    budget = ulp_budget(layer, dtype)
    if dtype == np.float64:
        assert np.array_equal(np.asarray(actual), np.asarray(reference)), what
    assert_within_ulp(actual, reference, budget, what)


class TestFusedKernelSweep:
    """Every fused kernel, both dtypes, against the float64 fused reference.

    The float64 arm is the bit-exact policy restated (budget 0, plus a
    direct ``array_equal``); the float32 arm is the documented relaxed
    budget, exercising the packed eval kernels the f32 fast path dispatches
    to (`eval_layer_norm_packed`, `eval_attention_packed`).
    """

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("batch,seq,d", SERVING_SHAPES)
    def test_layer_norm(self, dtype, batch, seq, d):
        rng = np.random.default_rng(batch * 31 + seq)
        x = rng.normal(size=(batch, seq, d))
        gamma, beta = rng.normal(size=d), rng.normal(size=d)
        reference = LayerNorm(d, fused=True)
        reference.gamma.data, reference.beta.data = gamma, beta
        subject = LayerNorm(d, fused=True)
        subject.gamma.data = gamma.astype(dtype)
        subject.beta.data = beta.astype(dtype)
        with no_grad():
            ref = reference(Tensor(x)).data
            out = subject(Tensor(x.astype(dtype))).data
        assert out.dtype == dtype
        _check(out, ref, "layer_norm", dtype, f"layer_norm {batch}x{seq}x{d}")

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("batch,seq,d", SERVING_SHAPES)
    def test_attention(self, dtype, masked, batch, seq, d):
        rng = np.random.default_rng(batch + seq * 7 + masked)
        x = rng.normal(size=(batch, seq, d))
        reference = MultiHeadAttention(d, 4, rng=np.random.default_rng(3), fused=True)
        subject = MultiHeadAttention(d, 4, rng=np.random.default_rng(3), fused=True)
        for ours, theirs in zip(subject.parameters(), reference.parameters()):
            ours.data = theirs.data.astype(dtype)
        reference.eval(), subject.eval()
        mask = None
        if masked:
            mask = np.ones((batch, seq), dtype=bool)
            for row in range(batch):
                mask[row, rng.integers(1, seq + 1) :] = False
        with no_grad():
            ref = reference(Tensor(x), attention_mask=mask).data
            out = subject(Tensor(x.astype(dtype)), attention_mask=mask).data
        assert out.dtype == dtype
        what = f"attention {batch}x{seq}x{d} masked={masked}"
        _check(out, ref, "attention", dtype, what)
        _check(
            subject.last_attention, reference.last_attention,
            "softmax", dtype, "attention weights " + what,
        )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_cross_entropy(self, dtype):
        rng = np.random.default_rng(17)
        logits = rng.normal(size=(128, 7)) * 3.0
        targets = rng.integers(0, 7, 128)
        with no_grad():
            ref = cross_entropy(Tensor(logits), targets, fused=True).data
            out = cross_entropy(
                Tensor(logits.astype(dtype)), targets, fused=True
            ).data
        _check(out, ref, "cross_entropy", dtype, "cross_entropy")

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_masked_cross_entropy(self, dtype):
        rng = np.random.default_rng(23)
        logits = rng.normal(size=(8, 16, 7)) * 3.0
        targets = rng.integers(0, 7, (8, 16))
        mask = rng.random((8, 16)) < 0.7
        mask[:, 0] = True
        with no_grad():
            ref = masked_cross_entropy(
                Tensor(logits), targets, mask, fused=True
            ).data
            out = masked_cross_entropy(
                Tensor(logits.astype(dtype)), targets, mask, fused=True
            ).data
        _check(out, ref, "cross_entropy", dtype, "masked_cross_entropy")

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("masked", [False, True])
    def test_end_to_end_logits(self, dtype, masked):
        classifier = _build_classifier()
        serving = classifier.serving_build(np.dtype(dtype).name)
        rng = np.random.default_rng(41)
        ids = rng.integers(0, 37, (16, 48))
        mask = None
        if masked:
            mask = np.ones((16, 48), dtype=bool)
            for row in range(16):
                mask[row, rng.integers(1, 49) :] = False
        ref = classifier.predict_logits(ids, mask, batch_size=8)
        out = serving.predict_logits(ids, mask, batch_size=8)
        assert out.dtype == dtype
        _check(out, ref, "logits", dtype, f"logits masked={masked}")
        assert np.array_equal(out.argmax(-1), ref.argmax(-1))


# ---------------------------------------------------------------------------
# serve_dtype builds and checkpoint round-trips
# ---------------------------------------------------------------------------


def _build_classifier(**overrides):
    kwargs = dict(
        vocab_size=37, d_model=32, num_heads=4, num_layers=2, d_ff=64,
        max_len=64, dropout=0.0, seed=7,
    )
    kwargs.update(overrides)
    model = NetFoundationModel(NetFMConfig(fused=True, **kwargs))
    return SequenceClassifier(model, 5, FinetuneConfig(dropout=0.0))


class TestServingBuild:
    def test_casts_every_parameter_once(self):
        classifier = _build_classifier()
        serving = classifier.serving_build("float32")
        assert serving.model_dtype == "float32"
        assert all(p.data.dtype == np.float32 for p in serving.parameters())
        # The trained float64 build is untouched — it stays the reference.
        assert classifier.model_dtype == "float64"
        assert all(p.data.dtype == np.float64 for p in classifier.parameters())

    def test_weights_are_the_rounded_originals(self):
        classifier = _build_classifier()
        serving = classifier.serving_build("float32")
        for ours, theirs in zip(serving.parameters(), classifier.parameters()):
            assert np.array_equal(ours.data, theirs.data.astype(np.float32))

    def test_float64_build_is_bit_identical(self):
        classifier = _build_classifier()
        serving = classifier.serving_build("float64")
        ids = np.random.default_rng(0).integers(0, 37, (4, 12))
        assert np.array_equal(
            serving.predict_logits(ids, None), classifier.predict_logits(ids, None)
        )

    def test_config_rejects_unknown_serve_dtype(self):
        with pytest.raises(ValueError, match="serve_dtype"):
            NetFMConfig(vocab_size=37, serve_dtype="float16")

    def test_direct_float32_config_build(self):
        config = NetFMConfig(
            vocab_size=37, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_len=16, serve_dtype="float32",
        )
        model = NetFoundationModel(config)
        assert all(p.data.dtype == np.float32 for p in model.parameters())


class TestCheckpointDtypeRoundTrip:
    def test_float32_checkpoint_restores_as_float32(self, tmp_path):
        classifier = _build_classifier()
        serving = classifier.serving_build("float32")
        path = tmp_path / "serving.npz"
        save_checkpoint(serving, path)

        restored = _build_classifier()  # a fresh float64 build
        metadata = load_checkpoint(restored, path, dtype="state")
        assert metadata["model_dtype"] == "float32"
        assert restored.model_dtype == "float32"
        ids = np.random.default_rng(1).integers(0, 37, (4, 12))
        assert np.array_equal(
            restored.predict_logits(ids, None), serving.predict_logits(ids, None)
        )

    def test_default_load_casts_to_build_dtype(self, tmp_path):
        classifier = _build_classifier()
        serving = classifier.serving_build("float32")
        path = tmp_path / "serving.npz"
        save_checkpoint(serving, path)

        restored = _build_classifier()
        load_checkpoint(restored, path)  # dtype="param": cast to the build
        assert restored.model_dtype == "float64"

    def test_float64_checkpoint_metadata(self, tmp_path):
        classifier = _build_classifier()
        path = tmp_path / "reference.npz"
        save_checkpoint(classifier, path)
        metadata = load_checkpoint(_build_classifier(), path)
        assert metadata["model_dtype"] == "float64"
