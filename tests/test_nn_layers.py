"""Tests for Module, layers, attention, transformer and GRU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    GRU,
    GRUCell,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    PositionalEmbedding,
    ReLU,
    Sequential,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
    scaled_dot_product_attention,
)


class TestModule:
    def test_named_parameters_and_count(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 4 * 3 + 3

    def test_nested_modules_discovered(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert any("layers.items.0" in n for n in names)
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(3, 3, rng=np.random.default_rng(1)))
        state = model.state_dict()
        other = Sequential(Linear(3, 3, rng=np.random.default_rng(2)))
        other.load_state_dict(state)
        np.testing.assert_allclose(
            model.state_dict()["layers.items.0.weight"],
            other.state_dict()["layers.items.0.weight"],
        )

    def test_load_state_dict_strict_errors(self):
        model = Sequential(Linear(3, 3))
        with pytest.raises(KeyError):
            model.load_state_dict({"unknown": np.zeros(3)})
        bad = {name: np.zeros((1, 1)) for name in model.state_dict()}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes_and_no_bias(self):
        layer = Linear(5, 7, bias=False)
        out = layer(Tensor(np.ones((3, 5))))
        assert out.shape == (3, 7)
        assert layer.bias is None

    def test_linear_batched_3d(self):
        layer = Linear(4, 2)
        out = layer(Tensor(np.ones((2, 6, 4))))
        assert out.shape == (2, 6, 2)

    def test_embedding_lookup_and_bounds(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 9]]))
        assert out.shape == (2, 2, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_embedding_load_pretrained(self):
        emb = Embedding(5, 3)
        matrix = np.arange(15.0).reshape(5, 3)
        emb.load_pretrained(matrix, freeze=True)
        np.testing.assert_allclose(emb.weight.data, matrix)
        assert not emb.weight.requires_grad
        with pytest.raises(ValueError):
            emb.load_pretrained(np.zeros((4, 3)))

    def test_layernorm_normalizes(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 8)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_dropout_train_vs_eval(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,)))
        out_train = dropout(x).data
        assert (out_train == 0).any()
        dropout.eval()
        np.testing.assert_allclose(dropout(x).data, np.ones(100))

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestAttention:
    def test_scaled_dot_product_shapes(self):
        rng = np.random.default_rng(0)
        q = Tensor(rng.normal(size=(2, 3, 5, 8)))
        out, weights = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 3, 5, 8)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((2, 3, 5)), rtol=1e-8)

    def test_attention_mask_blocks_positions(self):
        rng = np.random.default_rng(1)
        attention = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        mask = np.array([[True, True, False, False]])
        attention(x, attention_mask=mask)
        weights = attention.last_attention
        # Attention to masked (padding) key positions must be ~0.
        assert weights[0, :, :, 2:].max() < 1e-6

    def test_d_model_divisibility_check(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)


class TestTransformer:
    def test_encoder_output_shape_and_grad(self):
        rng = np.random.default_rng(2)
        encoder = TransformerEncoder(2, 16, 4, 32, dropout=0.0, rng=rng)
        x = Tensor(rng.normal(size=(3, 7, 16)), requires_grad=True)
        out = encoder(x, attention_mask=np.ones((3, 7), dtype=bool))
        assert out.shape == (3, 7, 16)
        out.sum().backward()
        assert x.grad is not None
        assert len(encoder.attention_maps()) == 2

    def test_single_layer(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.0)
        out = layer(Tensor(np.zeros((1, 5, 8))))
        assert out.shape == (1, 5, 8)

    def test_positional_embedding_limit(self):
        positional = PositionalEmbedding(10, 8)
        assert positional(5, 2).shape == (2, 5, 8)
        with pytest.raises(ValueError):
            positional(11, 1)


class TestGRU:
    def test_cell_step_shape(self):
        cell = GRUCell(4, 6)
        h = cell(Tensor(np.zeros((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)

    def test_gru_unidirectional(self):
        gru = GRU(4, 6)
        out, final = gru(Tensor(np.random.default_rng(0).normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 6)
        assert final.shape == (2, 6)
        assert gru.output_size == 6

    def test_gru_bidirectional(self):
        gru = GRU(4, 6, bidirectional=True)
        out, final = gru(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 12)
        assert final.shape == (2, 12)
        assert gru.output_size == 12

    def test_gru_gradient_reaches_input(self):
        gru = GRU(3, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 4, 3)), requires_grad=True)
        out, _ = gru(x)
        out.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0
