"""Tests for the foundation model, masking, pre-training objectives and heads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import FlowContextBuilder
from repro.core import (
    MaskedTokenHead,
    NetFMConfig,
    NetFoundationModel,
    Pretrainer,
    PretrainingConfig,
    SegmentPairHead,
    make_query_answer_pairs,
    make_segment_pairs,
    mask_tokens,
)
from repro.nn import Tensor
from repro.tokenize import CLS, FieldAwareTokenizer, SEP, Vocabulary


def tiny_config(vocab_size: int = 50, max_len: int = 24) -> NetFMConfig:
    return NetFMConfig(
        vocab_size=vocab_size, d_model=16, num_layers=1, num_heads=2, d_ff=32,
        max_len=max_len, dropout=0.0, seed=0,
    )


class TestNetFMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetFMConfig(d_model=10, num_heads=3)
        with pytest.raises(ValueError):
            NetFMConfig(vocab_size=2)
        with pytest.raises(ValueError):
            NetFMConfig(max_len=1)


class TestNetFoundationModel:
    def test_forward_shapes(self):
        model = NetFoundationModel(tiny_config())
        ids = np.random.default_rng(0).integers(0, 50, size=(3, 10))
        mask = np.ones((3, 10), dtype=bool)
        hidden = model(ids, attention_mask=mask)
        assert hidden.shape == (3, 10, 16)
        assert model.encode_cls(ids, mask).shape == (3, 16)
        assert model.encode_mean(ids, mask).shape == (3, 16)

    def test_segment_ids_change_output(self):
        model = NetFoundationModel(tiny_config())
        model.eval()
        ids = np.zeros((1, 6), dtype=np.int64) + 7
        mask = np.ones((1, 6), dtype=bool)
        base = model(ids, attention_mask=mask).data
        seg = model(ids, attention_mask=mask, segment_ids=np.array([[0, 0, 1, 1, 2, 2]])).data
        assert not np.allclose(base, seg)

    def test_sequence_length_limit(self):
        model = NetFoundationModel(tiny_config(max_len=8))
        with pytest.raises(ValueError):
            model(np.zeros((1, 9), dtype=np.int64))

    def test_inputs_embeds_path_matches_token_path(self):
        model = NetFoundationModel(tiny_config())
        model.eval()
        ids = np.random.default_rng(1).integers(0, 50, size=(2, 6))
        mask = np.ones((2, 6), dtype=bool)
        direct = model(ids, attention_mask=mask).data
        via_embeds = model(
            attention_mask=mask, inputs_embeds=model.embed_tokens(ids)
        ).data
        np.testing.assert_allclose(direct, via_embeds, rtol=1e-10)

    def test_forward_requires_some_input(self):
        model = NetFoundationModel(tiny_config())
        with pytest.raises(ValueError):
            model(attention_mask=np.ones((1, 4), dtype=bool))

    def test_attention_maps_and_embedding_matrix(self):
        model = NetFoundationModel(tiny_config())
        ids = np.zeros((1, 5), dtype=np.int64)
        model(ids, attention_mask=np.ones((1, 5), dtype=bool))
        maps = model.attention_maps()
        assert len(maps) == 1 and maps[0].shape == (1, 2, 5, 5)
        assert model.input_embedding_matrix().shape == (50, 16)

    def test_heads_shapes(self):
        config = tiny_config()
        mlm = MaskedTokenHead(config)
        pair = SegmentPairHead(config)
        hidden = Tensor(np.zeros((2, 5, 16)))
        assert mlm(hidden).shape == (2, 5, 50)
        assert pair(Tensor(np.zeros((2, 16)))).shape == (2, 2)


class TestMasking:
    def test_mask_tokens_properties(self):
        vocab = Vocabulary([f"t{i}" for i in range(30)])
        rng = np.random.default_rng(0)
        ids = rng.integers(5, len(vocab), size=(8, 20))
        mask = np.ones_like(ids, dtype=bool)
        mask[:, 15:] = False
        masked, targets, loss_mask = mask_tokens(ids, mask, vocab, rng, 0.15)
        np.testing.assert_array_equal(targets, ids)
        # Only valid, non-special positions may be selected.
        assert not loss_mask[:, 15:].any()
        # Every row has at least one masked position.
        assert loss_mask.any(axis=1).all()
        # Unselected positions are untouched.
        assert np.array_equal(masked[~loss_mask], ids[~loss_mask])
        # Most selected positions carry the [MASK] id.
        assert (masked[loss_mask] == vocab.mask_id).mean() > 0.5

    def test_mask_probability_validation(self):
        with pytest.raises(ValueError):
            PretrainingConfig(mask_probability=0.0)
        with pytest.raises(ValueError):
            PretrainingConfig(objectives=("bogus",))


class TestPairObjectives:
    def test_segment_pairs_structure(self, small_contexts):
        contexts, _ = small_contexts
        rng = np.random.default_rng(0)
        pairs = make_segment_pairs(contexts, rng)
        assert pairs
        labels = {label for _, label in pairs}
        assert labels == {0, 1}
        for tokens, _ in pairs:
            assert tokens[0] == CLS

    def test_query_answer_pairs(self, small_dns_trace):
        rng = np.random.default_rng(0)
        pairs = make_query_answer_pairs(small_dns_trace, FieldAwareTokenizer(), rng)
        assert pairs
        labels = [label for _, label in pairs]
        assert 0 in labels and 1 in labels
        for tokens, _ in pairs:
            assert tokens.count(SEP) >= 2

    def test_query_answer_requires_dns(self):
        rng = np.random.default_rng(0)
        assert make_query_answer_pairs([], FieldAwareTokenizer(), rng) == []


class TestPretrainer:
    def test_mlm_pretraining_reduces_loss(self, small_contexts):
        contexts, vocab = small_contexts
        contexts = contexts[:60]
        model = NetFoundationModel(tiny_config(vocab_size=len(vocab), max_len=48))
        pretrainer = Pretrainer(model, vocab, PretrainingConfig(epochs=3, batch_size=16, seed=0))
        history = pretrainer.pretrain(contexts)
        first_epoch = np.mean(history.losses[: len(history.losses) // 3])
        last_epoch = np.mean(history.losses[-len(history.losses) // 3:])
        assert last_epoch < first_epoch
        accuracy = pretrainer.masked_token_accuracy(contexts, samples=32)
        assert 0.0 <= accuracy <= 1.0

    def test_qa_objective_requires_packets(self, small_contexts):
        contexts, vocab = small_contexts
        model = NetFoundationModel(tiny_config(vocab_size=len(vocab), max_len=48))
        pretrainer = Pretrainer(
            model, vocab, PretrainingConfig(epochs=1, objectives=("mlm", "qa"))
        )
        with pytest.raises(ValueError):
            pretrainer.pretrain(contexts[:10])

    def test_nsp_objective_runs(self, small_contexts):
        contexts, vocab = small_contexts
        model = NetFoundationModel(tiny_config(vocab_size=len(vocab), max_len=48))
        pretrainer = Pretrainer(
            model, vocab,
            PretrainingConfig(epochs=1, batch_size=16, objectives=("mlm", "nsp")),
        )
        history = pretrainer.pretrain(contexts[:40])
        assert history.losses
