"""Finite-difference gradient checks for the ops on the batched train path.

The packed-batch rewrite reshapes and broadcasts more aggressively than the
per-example loops did; these checks pin the analytic gradients of the ops it
leans on (matmul in its batched forms, the embedding row gather, and masked
cross-entropy with a padding mask) against central differences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.losses import cross_entropy, masked_cross_entropy


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = func()
        flat[index] = original - eps
        lower = func()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(build_loss, *arrays, atol=1e-6, rtol=1e-4):
    """Compare autograd gradients of ``build_loss(*tensors)`` to numerics."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor, array in zip(tensors, arrays):
        def value() -> float:
            fresh = [Tensor(a) for a in arrays]
            return float(build_loss(*fresh).data)

        expected = numerical_gradient(value, array)
        np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=rtol)


class TestMatmulGradients:
    def test_matrix_matrix(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_gradients(lambda x, y: (x @ y).sum(), a, b)

    def test_batched_matmul_broadcasts(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        check_gradients(lambda x, y: ((x @ y) * (x @ y)).sum(), a, b)

    def test_vector_forms(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4,))
        b = rng.normal(size=(4, 3))
        check_gradients(lambda x, y: (x @ y).sum(), a, b)
        c = rng.normal(size=(3, 4))
        d = rng.normal(size=(4,))
        check_gradients(lambda x, y: (x @ y).sum(), c, d)


class TestEmbeddingGatherGradients:
    def test_take_rows_accumulates_repeats(self):
        rng = np.random.default_rng(3)
        table = rng.normal(size=(6, 3))
        indices = np.array([[0, 2, 2], [5, 0, 1]])
        weights = rng.normal(size=(2, 3, 3))

        check_gradients(
            lambda t: (Tensor.take_rows(t, indices) * Tensor(weights)).sum(), table
        )

    def test_embedding_layer_matches_numeric(self):
        rng = np.random.default_rng(4)
        layer = Embedding(5, 4, rng=rng)
        indices = np.array([[1, 1, 3], [0, 4, 2]])
        weight = layer.weight.data.copy()

        layer.zero_grad()
        out = layer(indices)
        (out * out).sum().backward()
        analytic = layer.weight.grad.copy()

        def value() -> float:
            out = weight[indices]
            return float((out * out).sum())

        expected = numerical_gradient(value, weight)
        np.testing.assert_allclose(analytic, expected, atol=1e-6, rtol=1e-4)


class TestLossGradients:
    def test_masked_cross_entropy_padding_mask(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(3, 5, 7))
        targets = rng.integers(0, 7, size=(3, 5))
        mask = rng.random((3, 5)) < 0.5
        mask[0] = False  # a fully padded row must contribute nothing
        mask[1, 0] = True  # and at least one real position exists
        check_gradients(
            lambda x: masked_cross_entropy(x, targets, mask), logits, atol=1e-6
        )

    def test_masked_cross_entropy_ignores_masked_logits(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(2, 4, 5))
        targets = rng.integers(0, 5, size=(2, 4))
        mask = np.zeros((2, 4), dtype=bool)
        mask[0, 1] = True
        tensor = Tensor(logits, requires_grad=True)
        masked_cross_entropy(tensor, targets, mask).backward()
        grad = tensor.grad
        assert np.abs(grad[0, 1]).sum() > 0
        untouched = np.ones((2, 4), dtype=bool)
        untouched[0, 1] = False
        assert np.abs(grad[untouched]).sum() == 0.0

    def test_cross_entropy_with_label_smoothing(self):
        rng = np.random.default_rng(7)
        logits = rng.normal(size=(4, 6))
        targets = rng.integers(0, 6, size=4)
        check_gradients(
            lambda x: cross_entropy(x, targets, label_smoothing=0.1), logits
        )


class TestLayerGradients:
    def test_linear_and_layernorm_chain(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 3, 4))
        linear = Linear(4, 4, rng=rng)
        norm = LayerNorm(4)

        inputs = Tensor(x, requires_grad=True)
        out = norm(linear(inputs))
        (out * out).sum().backward()
        analytic = inputs.grad.copy()

        def value() -> float:
            out = norm(linear(Tensor(x)))
            return float((out * out).sum().data)

        expected = numerical_gradient(value, x)
        np.testing.assert_allclose(analytic, expected, atol=1e-5, rtol=1e-3)
