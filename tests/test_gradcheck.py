"""Finite-difference gradient checks for the ops on the batched train path.

The packed-batch rewrite reshapes and broadcasts more aggressively than the
per-example loops did; these checks pin the analytic gradients of the ops it
leans on (matmul in its batched forms, the embedding row gather, and masked
cross-entropy with a padding mask) against central differences.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.nn.kernels import ScratchPool, fused_attention, fused_layer_norm
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.optim import SGD, Adam
from repro.nn.losses import cross_entropy, masked_cross_entropy


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = func()
        flat[index] = original - eps
        lower = func()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(build_loss, *arrays, atol=1e-6, rtol=1e-4):
    """Compare autograd gradients of ``build_loss(*tensors)`` to numerics."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor, array in zip(tensors, arrays):
        def value() -> float:
            fresh = [Tensor(a) for a in arrays]
            return float(build_loss(*fresh).data)

        expected = numerical_gradient(value, array)
        np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=rtol)


class TestMatmulGradients:
    def test_matrix_matrix(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_gradients(lambda x, y: (x @ y).sum(), a, b)

    def test_batched_matmul_broadcasts(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        check_gradients(lambda x, y: ((x @ y) * (x @ y)).sum(), a, b)

    def test_vector_forms(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4,))
        b = rng.normal(size=(4, 3))
        check_gradients(lambda x, y: (x @ y).sum(), a, b)
        c = rng.normal(size=(3, 4))
        d = rng.normal(size=(4,))
        check_gradients(lambda x, y: (x @ y).sum(), c, d)


class TestEmbeddingGatherGradients:
    def test_take_rows_accumulates_repeats(self):
        rng = np.random.default_rng(3)
        table = rng.normal(size=(6, 3))
        indices = np.array([[0, 2, 2], [5, 0, 1]])
        weights = rng.normal(size=(2, 3, 3))

        check_gradients(
            lambda t: (Tensor.take_rows(t, indices) * Tensor(weights)).sum(), table
        )

    def test_embedding_layer_matches_numeric(self):
        rng = np.random.default_rng(4)
        layer = Embedding(5, 4, rng=rng)
        indices = np.array([[1, 1, 3], [0, 4, 2]])
        weight = layer.weight.data.copy()

        layer.zero_grad()
        out = layer(indices)
        (out * out).sum().backward()
        analytic = layer.weight.grad.copy()

        def value() -> float:
            out = weight[indices]
            return float((out * out).sum())

        expected = numerical_gradient(value, weight)
        np.testing.assert_allclose(analytic, expected, atol=1e-6, rtol=1e-4)


class TestLossGradients:
    def test_masked_cross_entropy_padding_mask(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(3, 5, 7))
        targets = rng.integers(0, 7, size=(3, 5))
        mask = rng.random((3, 5)) < 0.5
        mask[0] = False  # a fully padded row must contribute nothing
        mask[1, 0] = True  # and at least one real position exists
        check_gradients(
            lambda x: masked_cross_entropy(x, targets, mask), logits, atol=1e-6
        )

    def test_masked_cross_entropy_ignores_masked_logits(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(2, 4, 5))
        targets = rng.integers(0, 5, size=(2, 4))
        mask = np.zeros((2, 4), dtype=bool)
        mask[0, 1] = True
        tensor = Tensor(logits, requires_grad=True)
        masked_cross_entropy(tensor, targets, mask).backward()
        grad = tensor.grad
        assert np.abs(grad[0, 1]).sum() > 0
        untouched = np.ones((2, 4), dtype=bool)
        untouched[0, 1] = False
        assert np.abs(grad[untouched]).sum() == 0.0

    def test_cross_entropy_with_label_smoothing(self):
        rng = np.random.default_rng(7)
        logits = rng.normal(size=(4, 6))
        targets = rng.integers(0, 6, size=4)
        check_gradients(
            lambda x: cross_entropy(x, targets, label_smoothing=0.1), logits
        )


class TestFusedKernelGradients:
    """Numeric gradcheck of the analytic single-pass VJPs in repro.nn.kernels."""

    def test_fused_layer_norm_all_inputs(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(2, 3, 5))
        gamma = rng.normal(size=(5,)) + 1.0
        beta = rng.normal(size=(5,))
        check_gradients(
            lambda xt, gt, bt: (
                fused_layer_norm(xt, gt, bt, 1e-5, ScratchPool()) ** 2
            ).sum(),
            x, gamma, beta, atol=1e-5, rtol=1e-3,
        )

    @pytest.mark.parametrize("masked", [False, True])
    def test_fused_attention_all_inputs(self, masked):
        rng = np.random.default_rng(11)
        b, s, d, h = 2, 4, 6, 2
        x = rng.normal(size=(b, s, d))
        weights = [rng.normal(size=(d, d)) * 0.3 for _ in range(3)]
        biases = [rng.normal(size=(d,)) * 0.1 for _ in range(3)]
        mask = None
        if masked:
            valid = np.ones((b, s), dtype=bool)
            valid[0, 2:] = False
            mask = ~valid[:, None, None, :]

        def loss(xt, wq, bq, wk, bk, wv, bv):
            out, _ = fused_attention(xt, wq, bq, wk, bk, wv, bv, h, mask, ScratchPool())
            return (out ** 2).sum()

        check_gradients(
            loss, x, weights[0], biases[0], weights[1], biases[1],
            weights[2], biases[2], atol=1e-5, rtol=1e-3,
        )

    def test_fused_layer_norm_under_preallocated_grad_buffers(self):
        """The in-place grad accumulation path matches numerics too."""
        rng = np.random.default_rng(12)
        x = rng.normal(size=(3, 4))
        inp = Tensor(x, requires_grad=True)
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)

        def run():
            return (fused_layer_norm(inp, gamma, beta, 1e-5, ScratchPool()) ** 2).sum()

        run().backward()
        first = inp.grad.copy()
        # Zero-fill (keep buffers), backward again: same values, same buffer.
        for t in (inp, gamma, beta):
            t.zero_grad(set_to_none=False)
        buffer = inp.grad
        run().backward()
        assert inp.grad is buffer
        np.testing.assert_allclose(inp.grad, first, atol=1e-12)


class TestInPlaceOptimizerGradStep:
    def test_in_place_sgd_applies_checked_gradient(self):
        """End to end: gradcheck'd gradient -> in-place update == manual update."""
        rng = np.random.default_rng(13)
        x = rng.normal(size=(4, 3))
        param = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        opt = SGD([param], lr=0.5, in_place=True)
        before = param.data.copy()
        opt.zero_grad(set_to_none=False)
        ((Tensor(x) @ param) ** 2).sum().backward()

        def value() -> float:
            return float(((x @ param.data) ** 2).sum())

        expected_grad = numerical_gradient(value, param.data)
        np.testing.assert_allclose(param.grad, expected_grad, atol=1e-5, rtol=1e-4)
        opt.step()
        np.testing.assert_allclose(param.data, before - 0.5 * param.grad, atol=1e-12)

    def test_stale_buffer_step_is_a_no_op(self):
        """A zero-filled (stale) buffer must not advance Adam's state."""
        param = Tensor(np.ones(3), requires_grad=True)
        opt = Adam([param], lr=0.1, in_place=True)
        opt.zero_grad(set_to_none=False)
        param._add_grad(np.ones(3))
        opt.step()
        after_real_step = param.data.copy()
        m_after = opt._m[0].copy()
        opt.zero_grad(set_to_none=False)  # stale again, no backward this time
        opt.step()
        assert np.array_equal(param.data, after_real_step)
        assert np.array_equal(opt._m[0], m_after)


class TestGradModeThreadInteraction:
    def test_worker_no_grad_does_not_leak_into_taping_thread(self):
        """Fused kernels consult the per-thread grad mode (the PR 6 contract)."""
        rng = np.random.default_rng(14)
        x = rng.normal(size=(2, 3, 4))
        layer = LayerNorm(4, fused=True)
        inp = Tensor(x, requires_grad=True)
        started = threading.Event()
        release = threading.Event()
        results = {}

        def worker():
            with no_grad():
                started.set()
                release.wait(timeout=5)
                results["out"] = layer(Tensor(x, requires_grad=True))

        thread = threading.Thread(target=worker)
        thread.start()
        started.wait(timeout=5)
        out = layer(inp)  # main thread tapes while the worker is in no_grad
        release.set()
        thread.join()
        assert out.requires_grad
        assert not results["out"].requires_grad
        (out ** 2).sum().backward()

        def value() -> float:
            return float((layer(Tensor(x)).data ** 2).sum())

        expected = numerical_gradient(value, x)
        np.testing.assert_allclose(inp.grad, expected, atol=1e-5, rtol=1e-3)


class TestLayerGradients:
    def test_linear_and_layernorm_chain(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 3, 4))
        linear = Linear(4, 4, rng=rng)
        norm = LayerNorm(4)

        inputs = Tensor(x, requires_grad=True)
        out = norm(linear(inputs))
        (out * out).sum().backward()
        analytic = inputs.grad.copy()

        def value() -> float:
            out = norm(linear(Tensor(x)))
            return float((out * out).sum().data)

        expected = numerical_gradient(value, x)
        np.testing.assert_allclose(analytic, expected, atol=1e-5, rtol=1e-3)
