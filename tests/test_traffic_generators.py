"""Tests for the synthetic traffic generators."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.net import DNSMessage, TLSClientHello
from repro.traffic import (
    ATTACK_TYPES,
    AttackConfig,
    AttackGenerator,
    CongestionConfig,
    CongestionSimulator,
    DatacenterConfig,
    DatacenterFlowGenerator,
    DEVICE_PROFILES,
    DNSWorkloadConfig,
    DNSWorkloadGenerator,
    DomainSampler,
    DOMAIN_CATEGORIES,
    EnterpriseScenario,
    EnterpriseScenarioConfig,
    HTTPWorkloadConfig,
    HTTPWorkloadGenerator,
    IoTWorkloadConfig,
    IoTWorkloadGenerator,
    TLSWorkloadConfig,
    TLSWorkloadGenerator,
    apply_jitter,
    build_leaf_spine,
    domain_category,
    drop_packets,
    generate_dga_domain,
    interleave_at_capture_point,
    merge_traces,
    reorder_within_window,
    reweight_categories,
    shifted_dns_config,
    split_by_label,
)


class TestDomains:
    def test_category_lookup(self):
        assert domain_category("netflix.com") == "video"
        assert domain_category("cdn-3.netflix.com") == "video"
        assert domain_category("unknown-host.example") == "unknown"

    def test_sampler_respects_category(self):
        sampler = DomainSampler(np.random.default_rng(0))
        for domain in sampler.sample_many(20, category="mail"):
            assert domain_category(domain) == "mail"
        with pytest.raises(KeyError):
            sampler.sample(category="nonexistent")

    def test_sampler_weights(self):
        sampler = DomainSampler(
            np.random.default_rng(0), category_weights={"video": 1.0}
        )
        categories = {domain_category(sampler.sample()) for _ in range(30)}
        assert categories == {"video"}
        with pytest.raises(ValueError):
            DomainSampler(np.random.default_rng(0), category_weights={"video": 0.0})

    def test_dga_domain(self):
        domain = generate_dga_domain(np.random.default_rng(0), length=12, tld="net")
        label, tld = domain.split(".")
        assert len(label) == 12 and tld == "net"


class TestDNSWorkload:
    def test_query_response_pairing_and_labels(self, small_dns_trace):
        assert len(small_dns_trace) == 6 * 8 * 2
        by_connection = split_by_label(small_dns_trace, "connection_id")
        assert all(len(packets) == 2 for packets in by_connection.values())
        categories = {p.metadata["domain_category"] for p in small_dns_trace}
        assert categories <= set(DOMAIN_CATEGORIES) | {"unknown"}
        assert all(isinstance(p.application, DNSMessage) for p in small_dns_trace)

    def test_determinism(self):
        config = DNSWorkloadConfig(seed=11, num_clients=3, queries_per_client=4)
        a = DNSWorkloadGenerator(config).generate()
        b = DNSWorkloadGenerator(config).generate()
        assert [p.to_bytes() for p in a] == [p.to_bytes() for p in b]

    def test_timestamps_sorted_and_within_window(self, small_dns_trace):
        times = [p.timestamp for p in small_dns_trace]
        assert times == sorted(times)
        assert min(times) >= 0.0

    def test_category_behaviour_differs(self):
        config = DNSWorkloadConfig(seed=5, num_clients=10, queries_per_client=20,
                                   category_weights={"mail": 1.0})
        mail_trace = DNSWorkloadGenerator(config).generate()
        qtypes = Counter(
            p.application.questions[0].type_name
            for p in mail_trace if not p.application.is_response
        )
        assert qtypes.get("MX", 0) > 0  # mail category issues MX lookups

    def test_novel_hostnames_appear_under_shift(self):
        base = DNSWorkloadConfig(seed=2, num_clients=5, queries_per_client=10)
        shifted = shifted_dns_config(base)
        assert shifted.novel_hostname_probability > 0
        trace = DNSWorkloadGenerator(shifted).generate()
        names = [p.application.query_name for p in trace if not p.application.is_response]
        assert any(name.split(".")[0].startswith("srv") for name in names)

    def test_reweight_categories_is_distribution(self):
        weights = reweight_categories(np.random.default_rng(0))
        assert set(weights) == set(DOMAIN_CATEGORIES)
        assert sum(weights.values()) == pytest.approx(1.0)


class TestHTTPAndTLSWorkloads:
    def test_http_sessions_have_handshake_and_labels(self):
        trace = HTTPWorkloadGenerator(HTTPWorkloadConfig(seed=1, num_sessions=5, duration=10)).generate()
        assert trace
        flags = {tuple(p.transport.flag_names()) for p in trace}
        assert ("SYN",) in flags                      # handshake present
        assert any("FIN" in f for f in flags)         # teardown present
        assert {p.metadata["application"] for p in trace} == {"http"}
        statuses = [p.metadata.get("status") for p in trace if "status" in p.metadata]
        assert statuses and all(100 <= s < 600 for s in statuses)

    def test_tls_handshakes_select_strong_suite_for_modern_clients(self):
        config = TLSWorkloadConfig(seed=3, num_sessions=10, duration=10,
                                   profile_weights={"modern-browser": 1.0})
        trace = TLSWorkloadGenerator(config).generate()
        hellos = [p for p in trace if isinstance(p.application, TLSClientHello)]
        assert hellos
        selected = {p.metadata["selected_ciphersuite"] for p in trace}
        assert selected <= {0x1301, 0x1302, 0x1303, 0xC02B, 0xC02C, 0xC02F, 0xC030}

    def test_tls_sni_matches_domain_metadata(self):
        trace = TLSWorkloadGenerator(TLSWorkloadConfig(seed=4, num_sessions=5, duration=5)).generate()
        for packet in trace:
            if isinstance(packet.application, TLSClientHello):
                assert packet.application.server_name == packet.metadata["domain"]


class TestIoTWorkload:
    def test_devices_labelled_and_behaviour_differs(self):
        trace = IoTWorkloadGenerator(IoTWorkloadConfig(seed=0, duration=60, devices_per_type=1)).generate()
        devices = {p.metadata["device"] for p in trace}
        assert devices == set(DEVICE_PROFILES)
        # MQTT devices touch port 8883; camera-style devices use TLS beacons.
        bulb_ports = {p.dst_port for p in trace if p.metadata["device"] == "smart-bulb"}
        camera_ports = {p.dst_port for p in trace if p.metadata["device"] == "camera"}
        assert 8883 in bulb_ports
        assert 443 in camera_ports

    def test_device_macs_use_vendor_oui(self):
        trace = IoTWorkloadGenerator(IoTWorkloadConfig(seed=1, duration=30, devices_per_type=1)).generate()
        camera_sources = {
            p.ethernet.src_mac for p in trace
            if p.metadata["device"] == "camera" and p.src_ip.startswith("192.168.")
        }
        assert any(mac.startswith(DEVICE_PROFILES["camera"].oui) for mac in camera_sources)


class TestAttacks:
    def test_all_attack_types_generated_and_labelled(self):
        trace = AttackGenerator(AttackConfig(seed=0, duration=20)).generate()
        types = {p.metadata["attack_type"] for p in trace}
        assert types == set(ATTACK_TYPES)
        assert all(p.metadata["anomaly"] for p in trace)

    def test_port_scan_targets_many_ports(self):
        trace = AttackGenerator(AttackConfig(seed=1, duration=10, attack_types=("port-scan",),
                                             scan_ports=40)).generate()
        ports = {p.dst_port for p in trace}
        assert len(ports) == 40

    def test_dns_tunnel_uses_long_labels(self):
        trace = AttackGenerator(AttackConfig(seed=2, duration=10, attack_types=("dns-tunnel",),
                                             tunnel_queries=5)).generate()
        names = [p.application.query_name for p in trace]
        assert all(len(name.split(".")[0]) >= 30 for name in names)

    def test_unknown_attack_type_rejected(self):
        with pytest.raises(ValueError):
            AttackGenerator(AttackConfig(attack_types=("not-an-attack",))).generate()

    def test_c2_beacon_is_periodic(self):
        trace = AttackGenerator(AttackConfig(seed=3, duration=10, attack_types=("c2-beacon",),
                                             beacon_count=10)).generate()
        times = np.array([p.timestamp for p in trace])
        intervals = np.diff(np.sort(times))
        assert intervals.std() < 0.5  # beacons are near-periodic


class TestCaptureEffects:
    def test_merge_and_interleave_sorted(self):
        a = DNSWorkloadGenerator(DNSWorkloadConfig(seed=0, num_clients=2, queries_per_client=3)).generate()
        b = HTTPWorkloadGenerator(HTTPWorkloadConfig(seed=1, num_sessions=2, duration=10)).generate()
        merged = merge_traces(a, b)
        assert len(merged) == len(a) + len(b)
        times = [p.timestamp for p in merged]
        assert times == sorted(times)

    def test_jitter_drop_reorder(self):
        trace = DNSWorkloadGenerator(DNSWorkloadConfig(seed=0, num_clients=2, queries_per_client=5)).generate()
        rng = np.random.default_rng(0)
        jittered = apply_jitter(trace, 0.01, rng)
        assert len(jittered) == len(trace)
        assert [p.timestamp for p in jittered] == sorted(p.timestamp for p in jittered)
        dropped = drop_packets(trace, 0.5, rng)
        assert 0 < len(dropped) < len(trace)
        with pytest.raises(ValueError):
            drop_packets(trace, 1.5, rng)
        reordered = reorder_within_window(trace, 4, rng)
        assert Counter(id(p) for p in reordered) == Counter(id(p) for p in trace)

    def test_interleave_at_capture_point(self):
        a = DNSWorkloadGenerator(DNSWorkloadConfig(seed=0, num_clients=1, queries_per_client=5)).generate()
        b = DNSWorkloadGenerator(DNSWorkloadConfig(seed=1, num_clients=1, queries_per_client=5)).generate()
        capture = interleave_at_capture_point(a, b, rng=np.random.default_rng(0),
                                               jitter_std=0.001, loss_rate=0.1)
        assert 0 < len(capture) <= len(a) + len(b)


class TestScenario:
    def test_enterprise_mix_and_attacks(self, small_mixed_trace):
        apps = {p.metadata["application"] for p in small_mixed_trace}
        assert {"dns", "http", "https", "iot"} <= apps
        with_attacks = EnterpriseScenario(
            EnterpriseScenarioConfig(seed=9, duration=10, include_attacks=True)
        ).generate()
        assert any(p.metadata.get("anomaly") for p in with_attacks)


class TestDatacenter:
    def test_topology_structure(self):
        graph = build_leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=4)
        hosts = [n for n, d in graph.nodes(data=True) if d["kind"] == "host"]
        leaves = [n for n, d in graph.nodes(data=True) if d["kind"] == "leaf"]
        assert len(hosts) == 12 and len(leaves) == 3
        assert graph.degree("spine0") == 3

    def test_flow_generation_and_dataset(self):
        generator = DatacenterFlowGenerator(DatacenterConfig(seed=0, num_flows=200))
        flows = generator.generate()
        assert len(flows) == 200
        assert all(f.completion_time > 0 for f in flows)
        sizes = np.array([f.size_bytes for f in flows])
        assert sizes.max() > 50 * sizes.min()  # heavy-tailed: elephants and mice
        features, targets = generator.dataset()
        assert features.shape == (200, 5)
        assert np.all(np.isfinite(features)) and np.all(targets > 0)

    def test_larger_flows_take_longer_on_average(self):
        flows = DatacenterFlowGenerator(DatacenterConfig(seed=1, num_flows=400)).generate()
        sizes = np.array([f.size_bytes for f in flows])
        times = np.array([f.completion_time for f in flows])
        big = times[sizes > np.percentile(sizes, 90)].mean()
        small = times[sizes < np.percentile(sizes, 50)].mean()
        assert big > small

    def test_congestion_simulator_series_and_windows(self):
        simulator = CongestionSimulator(CongestionConfig(seed=0, duration=120))
        series = simulator.simulate()
        assert set(series) == {"arrivals_kb", "queue_kb", "drops_kb", "utilization"}
        assert np.all(series["queue_kb"] >= 0)
        assert np.all(series["utilization"] <= 1.0 + 1e-9)
        features, labels = simulator.windowed_dataset(window=20)
        assert features.shape[1:] == (20, 3)
        assert set(np.unique(labels)) <= {0, 1}
        assert 0.05 < labels.mean() < 0.95  # both classes present
