"""Tests for packet building/parsing, flow assembly and the pcap container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import (
    DNSMessage,
    DNSQuestion,
    FlowKey,
    FlowTable,
    HTTPRequest,
    Packet,
    TCP_FLAG_SYN,
    build_packet,
    flow_statistics,
    parse_packet,
    read_pcap,
    write_pcap,
)


class TestPacket:
    def test_build_and_parse_dns(self):
        message = DNSMessage(transaction_id=7, questions=[DNSQuestion("netflix.com")])
        packet = build_packet(1.0, "10.0.0.2", "8.8.8.8", "UDP", 50000, 53,
                              application=message, metadata={"application": "dns"})
        parsed = parse_packet(packet.to_bytes(), timestamp=1.0)
        assert parsed.src_ip == "10.0.0.2"
        assert parsed.dst_port == 53
        assert isinstance(parsed.application, DNSMessage)
        assert parsed.application.query_name == "netflix.com"

    def test_build_and_parse_http(self):
        request = HTTPRequest(method="GET", path="/x", host="example.com")
        packet = build_packet(2.0, "10.0.0.2", "1.2.3.4", "TCP", 40000, 80,
                              application=request, tcp_flags=TCP_FLAG_SYN)
        parsed = parse_packet(packet.to_bytes())
        assert isinstance(parsed.application, HTTPRequest)
        assert parsed.application.host == "example.com"
        assert parsed.length == parsed.ip.total_length

    def test_icmp_packet(self):
        packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "ICMP", seq=3)
        parsed = parse_packet(packet.to_bytes())
        assert parsed.protocol == 1
        assert parsed.src_port == 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_packet(0.0, "1.1.1.1", "2.2.2.2", "NOTAPROTO")

    def test_raw_payload_packet(self):
        packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1111, 8883,
                              application=b"\x30\x10payload")
        parsed = parse_packet(packet.to_bytes())
        assert parsed.payload.startswith(b"\x30\x10")
        assert parsed.application is None

    def test_metadata_carried(self):
        packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "UDP", 1, 2,
                              metadata={"device": "camera"})
        assert packet.metadata["device"] == "camera"


class TestFlows:
    def test_flow_key_bidirectional(self):
        a = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1000, 80)
        b = build_packet(0.1, "10.0.0.2", "10.0.0.1", "TCP", 80, 1000)
        assert FlowKey.from_packet(a) == FlowKey.from_packet(b)

    def test_flow_table_groups_connections(self):
        table = FlowTable()
        for i in range(3):
            table.add(build_packet(i * 0.1, "10.0.0.1", "10.0.0.2", "TCP", 1000, 80))
            table.add(build_packet(i * 0.1 + 0.05, "10.0.0.2", "10.0.0.1", "TCP", 80, 1000))
        table.add(build_packet(0.2, "10.0.0.3", "10.0.0.4", "UDP", 5000, 53))
        flows = table.flows()
        assert len(flows) == 2
        biggest = max(flows, key=lambda f: f.packet_count)
        assert biggest.packet_count == 6
        assert biggest.duration > 0

    def test_idle_timeout_splits_flows(self):
        table = FlowTable(idle_timeout=1.0)
        table.add(build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1000, 80))
        table.add(build_packet(5.0, "10.0.0.1", "10.0.0.2", "TCP", 1000, 80))
        assert len(table) == 2

    def test_flow_label_majority(self):
        table = FlowTable()
        for i, label in enumerate(["http", "http", "dns"]):
            table.add(build_packet(i * 0.1, "10.0.0.1", "10.0.0.2", "TCP", 1, 2,
                                   metadata={"application": label}))
        flow = table.flows()[0]
        assert flow.label("application") == "http"
        assert flow.label("missing", default="fallback") == "fallback"

    def test_flow_statistics_keys_and_values(self):
        table = FlowTable()
        table.add(build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2))
        table.add(build_packet(0.5, "10.0.0.2", "10.0.0.1", "TCP", 2, 1))
        stats = flow_statistics(table.flows()[0])
        assert stats["packet_count"] == 2.0
        assert stats["duration"] == pytest.approx(0.5)
        assert stats["client_packets"] == 1.0
        empty_stats = flow_statistics(type(table.flows()[0])(key=table.flows()[0].key))
        assert empty_stats["packet_count"] == 0.0


class TestPcap:
    def test_write_read_roundtrip(self, tmp_path):
        packets = [
            build_packet(1.25, "10.0.0.1", "8.8.8.8", "UDP", 40000, 53,
                         application=DNSMessage(transaction_id=1,
                                                questions=[DNSQuestion("example.com")])),
            build_packet(2.5, "10.0.0.1", "1.2.3.4", "TCP", 40001, 80,
                         application=HTTPRequest(host="example.com")),
        ]
        path = write_pcap(tmp_path / "trace.pcap", packets)
        restored = read_pcap(path)
        assert len(restored) == 2
        assert restored[0].timestamp == pytest.approx(1.25, abs=1e-5)
        assert restored[0].application.query_name == "example.com"
        assert restored[1].dst_port == 80

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ValueError):
            read_pcap(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(ValueError):
            read_pcap(path)

    def test_big_endian_magic(self, tmp_path):
        # A 0xD4C3B2A1 capture (written on a big-endian host) parses with
        # byte-swapped global and record headers; packet bytes are network
        # order either way.
        import struct

        packet = build_packet(3.5, "10.0.0.1", "10.0.0.2", "TCP", 1234, 80)
        data = packet.to_bytes()
        blob = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        blob += struct.pack(">IIII", 3, 500_000, len(data), len(data)) + data
        path = tmp_path / "be.pcap"
        path.write_bytes(blob)
        restored = read_pcap(path)
        assert len(restored) == 1
        assert restored[0].timestamp == pytest.approx(3.5)
        assert restored[0].dst_port == 80

    def test_snaplen_truncates_captured_bytes(self, tmp_path):
        # captured < orig_len: headers parse, the payload is cut short, and
        # the opportunistic application decode degrades to None.
        packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 40000, 8000,
                              application=b"x" * 300)
        path = write_pcap(tmp_path / "cut.pcap", [packet], snaplen=80)
        assert path.stat().st_size == 24 + 16 + 80
        restored = read_pcap(path)
        assert len(restored) == 1
        assert restored[0].src_port == 40000
        assert restored[0].payload == b"x" * (80 - 54)
        assert restored[0].application is None

    def test_truncated_tail_is_explicit(self, tmp_path):
        # A file ending inside a record's data, or inside a record header,
        # raises instead of silently dropping the partial record; ending
        # exactly on a record boundary is the only clean EOF.
        packet = build_packet(1.0, "10.0.0.1", "10.0.0.2", "UDP", 1111, 2222)
        path = write_pcap(tmp_path / "tail.pcap", [packet, packet])
        blob = path.read_bytes()
        (tmp_path / "mid.pcap").write_bytes(blob[:-3])
        with pytest.raises(ValueError, match="truncated mid-record"):
            read_pcap(tmp_path / "mid.pcap")
        record_size = (len(blob) - 24) // 2
        (tmp_path / "header.pcap").write_bytes(blob[: 24 + record_size + 7])
        with pytest.raises(ValueError, match="truncated record header"):
            read_pcap(tmp_path / "header.pcap")
        clean = read_pcap(path)
        assert len(clean) == 2
