"""Tracing is observation-only — the serving differential, tracing on vs off.

The observability hard constraint (``docs/OBSERVABILITY.md``): attaching a
:class:`~repro.obs.trace.TraceRecorder` to the assembler and engine must not
perturb a single served bit.  This suite runs every E14 traffic scenario
through the sync path and the fabric at workers {1, 2, 4}, once without a
tracer and once with, and asserts the served flow-record multiset *and*
logits are bit-identical (the same ``prediction_key`` comparison the fabric
bit-identity suite uses).  It also sanity-checks the traces themselves: every
served flow has its full span lifecycle, and fabric spans carry worker
provenance.  CI runs this as the dedicated observability step.
"""

from __future__ import annotations

import pytest

from repro.obs import TraceRecorder
from repro.serve import ColumnsSource, serve_stream

from test_serve_fabric import (
    SCENARIOS,
    make_assembler,
    make_engine,
    prediction_key,
    run_serve,
    scenario,  # noqa: F401  (module-scoped fixture, reused here)
)

CHUNK_ROWS = 13

# Tracing-off references, computed once per scenario — against THIS module's
# fixture instances.  Deliberately not test_serve_fabric's shared sync cache:
# flow keys carry process-global connection ids, so each module's regenerated
# captures differ by key and the caches must not cross-pollinate.
_REFERENCE: dict = {}


def reference(scn):
    if scn["name"] not in _REFERENCE:
        predictions = run_serve(
            scn, ColumnsSource(scn["columns"], chunk_rows=CHUNK_ROWS)
        )
        _REFERENCE[scn["name"]] = sorted(prediction_key(p) for p in predictions)
    return _REFERENCE[scn["name"]]


def traced_serve(scn, workers=None):
    """One full serve of the scenario with tracing on; returns (keys, tracer)."""
    tracer = TraceRecorder()
    assembler = make_assembler(scn, idle_timeout=0.0, tracer=tracer)
    engine = make_engine(scn, tracer=tracer)
    predictions = list(serve_stream(
        ColumnsSource(scn["columns"], chunk_rows=CHUNK_ROWS),
        assembler, engine, workers=workers,
    ))
    return sorted(prediction_key(p) for p in predictions), tracer, predictions


class TestTracingIsObservationOnly:
    """Served multiset + logits bit-identical, tracing on vs tracing off."""

    def test_sync_bit_identical(self, scenario):
        expected = reference(scenario)
        traced, _, _ = traced_serve(scenario)
        assert traced == expected

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fabric_bit_identical(self, scenario, workers):
        expected = reference(scenario)
        traced, _, _ = traced_serve(scenario, workers=workers)
        assert traced == expected


class TestTraceCoversTheServedFlows:
    """The trace is complete and well-formed for every served flow."""

    def test_sync_lifecycle_per_flow(self, scenario):
        _, tracer, predictions = traced_serve(scenario)
        # In-flow recording order: cache hits are announced just before the
        # cached result is emitted, hence cache_hit slots in ahead of emitted.
        rank = {stage: i for i, stage in enumerate((
            "first_packet", "flow_closed", "encode", "batched", "inferred",
            "cache_hit", "emitted",
        ))}
        for p in predictions:
            spans = tracer.spans_for(p.record.key, p.record.generation)
            stages = [s.stage for s in spans]
            assert stages[0] == "first_packet"
            assert "flow_closed" in stages and "encode" in stages
            assert stages[-1] == "emitted"
            if p.cached:
                assert "cache_hit" in stages
            else:
                assert "batched" in stages and "inferred" in stages
            # Pipeline order holds within a flow (sync path, single clock).
            assert [rank[s] for s in stages if s in rank] == sorted(
                rank[s] for s in stages if s in rank
            )

    @pytest.mark.parametrize("workers", [2])
    def test_fabric_spans_carry_worker_provenance(self, scenario, workers):
        _, tracer, predictions = traced_serve(scenario, workers=workers)
        emitted = [s for s in tracer.spans if s.stage == "emitted"]
        assert len(emitted) == len(predictions)
        workers_seen = {s.attrs["worker"] for s in emitted}
        assert workers_seen <= {f"worker[{w}]" for w in range(workers)}
        # Every served flow still has its assembly-side spans.
        for p in predictions:
            stages = {
                s.stage for s in tracer.spans_for(p.record.key, p.record.generation)
            }
            assert {"first_packet", "flow_closed", "encode", "emitted"} <= stages


def test_all_scenarios_present():
    """The sweep really covers the five E14 scenarios."""
    assert sorted(SCENARIOS) == ["attack", "dns", "enterprise", "http", "tls"]
