"""The benchmark gate-floor margin policy (`tools.bench_report.gate_floor`).

Gate floors used to be hand-set constants, which made them drift traps: a
gate recorded at 6.2x with a 5.0 floor would flip red on a 4.95x run — a
one-percent-of-margin scheduling hiccup, not a regression.  The policy ties
each full-size floor to a *trailing measurement* times a configured margin,
so a gate only fails when it loses a meaningful fraction of its recorded
speedup.  These tests pin the policy's arithmetic, its fallbacks, and the
well-formedness of the repo's trailing database.
"""

from __future__ import annotations

import json

import pytest

from tools.bench_report import (
    DEFAULT_MARGIN,
    TRAILING_PATH,
    gate_floor,
    load_trailing,
)


def db(**gates):
    return {"gates": {name: entry for name, entry in gates.items()}}


class TestGateFloor:
    def test_floor_is_trailing_times_margin(self):
        database = db(columnar_generation={"trailing": 6.0, "margin": 0.75})
        assert gate_floor("columnar_generation", 5.0, trailing=database) == 4.5

    def test_small_drift_cannot_flip_a_gate(self):
        # The scenario that motivated the policy: trailing 6.2x, and a run
        # lands at 4.95x-style drift (here: a few percent down).  Any drift
        # smaller than the margin must stay above the floor.
        database = db(g={"trailing": 6.2})
        floor = gate_floor("g", 5.0, trailing=database)
        for drift in (0.99, 0.95, 0.80):
            assert 6.2 * drift >= floor, f"{drift:.0%} of trailing flipped the gate"
        # ...while a real regression past the margin still fails.
        assert 6.2 * 0.5 < floor

    def test_margin_defaults_when_unset(self):
        database = db(g={"trailing": 8.0})
        assert gate_floor("g", 3.0, trailing=database) == round(8.0 * DEFAULT_MARGIN, 3)

    def test_fallback_without_trailing_record(self):
        assert gate_floor("unrecorded", 5.0, trailing=db()) == 5.0
        assert gate_floor("unrecorded", 5.0, trailing={}) == 5.0
        assert gate_floor("g", 2.0, trailing=db(g={"margin": 0.5})) == 2.0

    def test_load_trailing_missing_file(self, tmp_path):
        assert load_trailing(tmp_path / "nope.json") == {}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert load_trailing(bad) == {}


class TestRepoTrailingDatabase:
    """The checked-in benchmarks/e14_trailing.json must be usable as-is."""

    @pytest.fixture(scope="class")
    def database(self):
        return json.loads(TRAILING_PATH.read_text(encoding="utf-8"))

    def test_entries_are_well_formed(self, database):
        gates = database["gates"]
        assert gates, "trailing database should record the full-size gates"
        for name, entry in gates.items():
            assert entry["trailing"] > 0, name
            assert 0 < entry.get("margin", DEFAULT_MARGIN) <= 1, name

    def test_recording_run_passes_its_own_floors(self, database):
        # floor = trailing * margin <= trailing: the run that recorded the
        # trailing values must itself clear every derived floor.
        for name, entry in database["gates"].items():
            assert gate_floor(name, float("inf"), trailing=database) <= entry[
                "trailing"
            ], name

    def test_e14_full_size_floors_come_from_policy(self, database, monkeypatch):
        monkeypatch.delenv("E14_SMOKE", raising=False)
        from benchmarks import test_bench_e14_throughput as e14

        if e14.SMOKE:  # pragma: no cover - suite running in smoke mode
            pytest.skip("E14 imported in smoke mode; floors are hand-set")
        assert e14.GENERATION_SPEEDUP_FLOOR == gate_floor(
            "columnar_generation", 5.0, trailing=database
        )
        assert e14.SERVING_SPEEDUP_FLOOR == gate_floor(
            "serving_micro_batch", 3.0, trailing=database
        )
        if e14.CPU_CORES >= e14.SERVING_PARALLEL_WORKERS:
            assert e14.SERVING_PARALLEL_FLOOR >= 2.5
        else:
            assert e14.SERVING_PARALLEL_FLOOR == gate_floor(
                "serving_parallel", 0.5, trailing=database
            )
