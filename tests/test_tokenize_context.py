"""Tests for tokenizers, vocabulary and context builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import (
    FirstMOfNContextBuilder,
    FlowContextBuilder,
    PacketContextBuilder,
    SessionContextBuilder,
    encode_contexts,
)
from repro.net import DNSMessage, DNSQuestion, build_packet
from repro.tokenize import (
    BPETokenizer,
    ByteTokenizer,
    CLS,
    FieldAwareTokenizer,
    HexCharTokenizer,
    MASK,
    PAD,
    SEP,
    UNK,
    Vocabulary,
    WordPieceTokenizer,
)


class TestVocabulary:
    def test_special_tokens_reserved(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.id_to_token(vocab.mask_id) == MASK
        assert len(vocab) == 5

    def test_build_orders_by_frequency(self):
        vocab = Vocabulary.build([["a", "b", "a"], ["a", "c"]])
        assert vocab.token_to_id("a") < vocab.token_to_id("b")
        assert "c" in vocab

    def test_min_count_and_max_size(self):
        sequences = [["common"] * 5 + ["rare"]]
        vocab = Vocabulary.build(sequences, min_count=2)
        assert "common" in vocab and "rare" not in vocab
        capped = Vocabulary.build([[f"t{i}" for i in range(100)]], max_size=20)
        assert len(capped) == 20

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.token_to_id("unknown-token") == vocab.unk_id
        assert vocab.decode(vocab.encode(["known", "nope"])) == ["known", UNK]

    def test_id_out_of_range(self):
        vocab = Vocabulary()
        with pytest.raises(IndexError):
            vocab.id_to_token(999)

    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocabulary(["alpha", "beta"])
        path = vocab.save(tmp_path / "vocab.json")
        restored = Vocabulary.load(path)
        assert restored.token_to_id("beta") == vocab.token_to_id("beta")
        assert len(restored) == len(vocab)

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_encode_decode_roundtrip(self, tokens):
        vocab = Vocabulary.build([tokens])
        assert vocab.decode(vocab.encode(tokens)) == tokens


def _dns_packet():
    return build_packet(
        0.5, "10.0.0.2", "8.8.8.8", "UDP", 51000, 53,
        application=DNSMessage(transaction_id=1, questions=[DNSQuestion("www.netflix.com")]),
        metadata={"application": "dns", "connection_id": 1, "session_id": 1},
    )


class TestTokenizers:
    def test_byte_tokenizer(self):
        tokens = ByteTokenizer(max_bytes=30).tokenize_packet(_dns_packet())
        assert len(tokens) == 30
        assert all(t.startswith("0x") and len(t) == 4 for t in tokens)
        # First IP byte is version/IHL 0x45.
        assert tokens[0] == "0x45"

    def test_hex_char_tokenizer(self):
        tokens = HexCharTokenizer(max_bytes=10).tokenize_packet(_dns_packet())
        assert len(tokens) == 20
        assert set("".join(tokens)) <= set("0123456789abcdef")

    def test_field_tokenizer_emits_protocol_fields(self):
        tokens = FieldAwareTokenizer().tokenize_packet(_dns_packet())
        assert "ip.proto=UDP" in tokens
        assert "udp.dport=53" in tokens
        assert "dns.qr=query" in tokens
        assert "dns.qname=netflix.com" in tokens
        assert "dns.qname.label=www" in tokens

    def test_field_tokenizer_http_and_tls(self, small_mixed_trace):
        tokenizer = FieldAwareTokenizer()
        all_tokens = set()
        for packet in small_mixed_trace:
            all_tokens.update(tokenizer.tokenize_packet(packet))
        assert any(t.startswith("http.method=") for t in all_tokens)
        assert any(t.startswith("tls.cs=") for t in all_tokens)
        assert any(t.startswith("tcp.flags=") for t in all_tokens)

    def test_field_tokenizer_addresses_flag(self):
        with_addr = FieldAwareTokenizer(include_addresses=True).tokenize_packet(_dns_packet())
        without = FieldAwareTokenizer(include_addresses=False).tokenize_packet(_dns_packet())
        assert any(t.startswith("ip.src16=") for t in with_addr)
        assert not any(t.startswith("ip.src16=") for t in without)

    def test_bpe_learns_and_shrinks_sequences(self, small_dns_trace):
        tokenizer = BPETokenizer(num_merges=40, max_bytes=60)
        baseline_length = len(tokenizer.tokenize_packet(small_dns_trace[0]))
        tokenizer.fit(small_dns_trace[:100])
        assert tokenizer.is_fitted
        merged_length = len(tokenizer.tokenize_packet(small_dns_trace[0]))
        assert merged_length < baseline_length

    def test_wordpiece_fit_and_continuation_marks(self, small_dns_trace):
        tokenizer = WordPieceTokenizer(vocab_size=100, max_bytes=40)
        tokenizer.fit(small_dns_trace[:100])
        assert tokenizer.is_fitted
        tokens = tokenizer.tokenize_packet(small_dns_trace[0])
        assert not tokens[0].startswith("##")
        assert all(t.startswith("##") for t in tokens[1:])

    def test_build_vocabulary_helper(self, small_dns_trace):
        vocab = FieldAwareTokenizer().build_vocabulary(small_dns_trace[:50])
        assert len(vocab) > 10

    def test_length_bucket_monotonic(self):
        buckets = [FieldAwareTokenizer.length_bucket(n) for n in (10, 100, 900, 3000)]
        assert buckets == ["len<=64", "len<=128", "len<=1024", "len>1500"]

    @given(st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_property_tokenizers_deterministic(self, seed):
        packet = _dns_packet()
        for tokenizer in (ByteTokenizer(), FieldAwareTokenizer(), HexCharTokenizer()):
            assert tokenizer.tokenize_packet(packet) == tokenizer.tokenize_packet(packet)


class TestContextBuilders:
    def test_packet_contexts_one_per_packet(self, small_dns_trace):
        contexts = PacketContextBuilder(max_tokens=32).build(
            small_dns_trace[:20], FieldAwareTokenizer()
        )
        assert len(contexts) == 20
        for context in contexts:
            assert context.tokens[0] == CLS
            assert context.tokens[-1] == SEP
            assert len(context.tokens) <= 32
            assert len(context.tokens) == len(context.segments)

    def test_flow_contexts_group_by_connection(self, small_dns_trace):
        contexts = FlowContextBuilder(max_tokens=64).build(small_dns_trace, FieldAwareTokenizer())
        connection_ids = {p.metadata["connection_id"] for p in small_dns_trace}
        assert len(contexts) == len(connection_ids)
        assert all(c.label == "dns" for c in contexts)

    def test_session_contexts_span_connections(self, small_dns_trace):
        sessions = SessionContextBuilder(max_tokens=96).build(small_dns_trace, FieldAwareTokenizer())
        flows = FlowContextBuilder(max_tokens=96).build(small_dns_trace, FieldAwareTokenizer())
        assert len(sessions) < len(flows)

    def test_first_m_of_n_limits_tokens_per_packet(self, small_dns_trace):
        builder = FirstMOfNContextBuilder(tokens_per_packet=4, packets_per_context=3, max_tokens=64)
        contexts = builder.build(small_dns_trace, FieldAwareTokenizer())
        assert contexts
        for context in contexts:
            assert len(context.packets) <= 3
            # Each packet contributes at most tokens_per_packet tokens.
            for segment in set(context.segments):
                segment_tokens = [
                    t for t, s in zip(context.tokens, context.segments)
                    if s == segment and t not in (CLS, SEP)
                ]
                assert len(segment_tokens) <= 4

    def test_label_from_custom_key(self, small_dns_trace):
        contexts = FlowContextBuilder(label_key="domain_category").build(
            small_dns_trace, FieldAwareTokenizer()
        )
        assert all(c.label is not None for c in contexts)

    def test_max_tokens_validation(self):
        with pytest.raises(ValueError):
            PacketContextBuilder(max_tokens=2)

    def test_encode_contexts_padding_and_mask(self, small_dns_trace):
        contexts = PacketContextBuilder(max_tokens=24).build(
            small_dns_trace[:10], FieldAwareTokenizer()
        )
        vocab = Vocabulary.build([c.tokens for c in contexts])
        ids, mask = encode_contexts(contexts, vocab, max_len=24)
        assert ids.shape == (10, 24) and mask.shape == (10, 24)
        assert ids.dtype == np.int64 and mask.dtype == bool
        # Padding positions hold the PAD id and are masked out.
        assert np.all(ids[~mask] == vocab.pad_id)
        assert np.all(mask[:, 0])
