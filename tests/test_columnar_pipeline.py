"""Columnar grouping / training equivalences: flow contexts and BPE fit.

The columnar fast paths must be drop-in: flow/session context encoding from
a :class:`~repro.net.columns.PacketColumns` batch has to reproduce the
object pipeline's id matrices and labels exactly, and the incremental BPE
``fit`` has to learn the identical merge list as the reference ``Counter``
loop — including on tie-heavy corpora, where the tie-break is now explicit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import FlowContextBuilder, SessionContextBuilder
from repro.context.builders import encode_contexts
from repro.net import PacketColumns, build_packet
from repro.netglue.solvers import _PacketTaskEncoder, SolverSettings, _subsample
from repro.tokenize import BPETokenizer, ByteTokenizer, FieldAwareTokenizer, Vocabulary
from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig


@pytest.fixture(scope="module")
def capture():
    columns = EnterpriseScenario(
        EnterpriseScenarioConfig(
            seed=6, duration=12.0, dns_clients=4, dns_queries_per_client=5,
            http_sessions=6, tls_sessions=6, iot_devices_per_type=1,
        )
    ).generate_columns()
    return columns, columns.to_packets()


class TestColumnarFlowContexts:
    @pytest.mark.parametrize("builder_class", [FlowContextBuilder, SessionContextBuilder])
    @pytest.mark.parametrize("max_tokens", [32, 96])
    def test_encode_columns_matches_object_path(self, capture, builder_class, max_tokens):
        columns, packets = capture
        builder = builder_class(max_tokens=max_tokens)
        tokenizer = FieldAwareTokenizer()
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        expected_ids, expected_mask = encode_contexts(contexts, vocabulary, max_tokens)
        ids, mask, labels = builder.encode_columns(
            columns, tokenizer, vocabulary, return_labels=True
        )
        assert np.array_equal(ids, expected_ids)
        assert np.array_equal(mask, expected_mask)
        assert labels == [c.label for c in contexts]

    def test_encode_columns_byte_tokenizer(self, capture):
        columns, packets = capture
        builder = FlowContextBuilder(max_tokens=48)
        tokenizer = ByteTokenizer()
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, mask = builder.encode_columns(columns, tokenizer, vocabulary)
        expected_ids, expected_mask = encode_contexts(contexts, vocabulary, 48)
        assert np.array_equal(ids, expected_ids)
        assert np.array_equal(mask, expected_mask)

    def test_group_columns_matches_object_grouping(self, capture):
        columns, packets = capture
        builder = FlowContextBuilder()
        order, bounds = builder.group_columns(columns)
        object_groups = [
            sorted(group, key=lambda p: p.timestamp)
            for group in builder._group(packets).values()
        ]
        assert len(bounds) - 1 == len(object_groups)
        for index, group in enumerate(object_groups):
            rows = order[bounds[index] : bounds[index + 1]]
            assert [packets[r] for r in rows] == group

    def test_fallback_keys_without_metadata_ids(self):
        # Packets with no connection/session ids group by 5-tuple / source ip.
        packets = [
            build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80),
            build_packet(0.1, "10.0.0.2", "10.0.0.1", "TCP", 80, 1111),
            build_packet(0.2, "10.0.0.3", "10.0.0.2", "UDP", 2222, 53),
        ]
        columns = PacketColumns.from_packets(packets)
        builder = FlowContextBuilder(max_tokens=32)
        tokenizer = FieldAwareTokenizer()
        contexts = builder.build(packets, tokenizer)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        ids, mask = builder.encode_columns(columns, tokenizer, vocabulary)
        expected_ids, expected_mask = encode_contexts(contexts, vocabulary, 32)
        assert np.array_equal(ids, expected_ids)
        assert np.array_equal(mask, expected_mask)
        session_builder = SessionContextBuilder(max_tokens=32)
        session_contexts = session_builder.build(packets, tokenizer)
        session_ids, _ = session_builder.encode_columns(columns, tokenizer, vocabulary)
        expected_session_ids, _ = encode_contexts(session_contexts, vocabulary, 32)
        assert np.array_equal(session_ids, expected_session_ids)

    def test_empty_batch(self):
        columns = PacketColumns.from_packets([])
        builder = FlowContextBuilder(max_tokens=16)
        ids, mask, labels = builder.encode_columns(
            columns, FieldAwareTokenizer(), Vocabulary(), return_labels=True
        )
        assert ids.shape == (0, 16) and mask.shape == (0, 16) and labels == []


class TestSolverColumnarParity:
    def test_encoder_reproduces_object_pipeline(self, capture):
        columns, packets = capture
        settings = SolverSettings(max_train_contexts=60, max_eval_contexts=60)

        rng = np.random.default_rng(settings.seed)
        object_encoder = _PacketTaskEncoder(settings, "application")
        contexts = object_encoder.contexts(packets, settings.max_train_contexts, rng)
        vocabulary = Vocabulary.build([c.tokens for c in contexts])
        expected_ids, expected_mask = encode_contexts(
            contexts, vocabulary, settings.max_tokens
        )

        rng = np.random.default_rng(settings.seed)
        columnar_encoder = _PacketTaskEncoder(settings, "application")
        ids, mask, labels = columnar_encoder.encode_train_columns(
            columns, settings.max_train_contexts, rng
        )
        assert columnar_encoder.vocabulary.tokens() == vocabulary.tokens()
        assert np.array_equal(ids, expected_ids)
        assert np.array_equal(mask, expected_mask)
        assert labels == [c.label for c in contexts]


class TestIncrementalBPEFit:
    def _trace(self, seed=5):
        return EnterpriseScenario(
            EnterpriseScenarioConfig(
                seed=seed, duration=8.0, dns_clients=3, dns_queries_per_client=4,
                http_sessions=4, tls_sessions=4, iot_devices_per_type=1,
            )
        ).generate()

    @pytest.mark.parametrize("num_merges", [8, 60])
    def test_fit_matches_reference(self, num_merges):
        packets = self._trace()
        fast = BPETokenizer(num_merges=num_merges).fit(packets)
        reference = BPETokenizer(num_merges=num_merges).fit_reference(packets)
        assert fast.merges == reference.merges
        assert len(fast.merges) == num_merges
        assert fast._merge_ranks == reference._merge_ranks

    def test_fit_accepts_columns(self):
        packets = self._trace(seed=9)
        columns = PacketColumns.from_packets(packets)
        assert (
            BPETokenizer(num_merges=24).fit(columns).merges
            == BPETokenizer(num_merges=24).fit_reference(packets).merges
        )

    def test_tie_break_is_deterministic(self):
        # Near-identical packets produce many equal pair counts; the
        # incremental fit must break ties exactly as the Counter loop does
        # (earliest first occurrence in the current corpus).
        trace = [
            build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1000 + (i % 3), 443)
            for i in range(20)
        ]
        fast = BPETokenizer(num_merges=50, max_bytes=32).fit(trace)
        reference = BPETokenizer(num_merges=50, max_bytes=32).fit_reference(trace)
        assert fast.merges == reference.merges
        # Exhaustion: both stop once no pair occurs twice.
        assert len(fast.merges) < 50

    def test_fit_tokenization_round_trip(self):
        packets = self._trace(seed=2)
        tokenizer = BPETokenizer(num_merges=32).fit(packets)
        assert tokenizer.is_fitted
        tokens = tokenizer.tokenize_packet(packets[0])
        assert tokenizer.tokenize_trace(packets)[0] == tokens

    def test_empty_and_tiny_corpora(self):
        assert BPETokenizer(num_merges=8).fit([]).merges == []
        single = [build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2)]
        assert (
            BPETokenizer(num_merges=8).fit(single).merges
            == BPETokenizer(num_merges=8).fit_reference(single).merges
        )


def test_subsample_keeps_order():
    rng = np.random.default_rng(0)
    items = list(range(100))
    sample = _subsample(items, 10, rng)
    assert sample == sorted(sample) and len(sample) == 10
    assert _subsample(items, 200, rng) == items
