"""Tests for losses, metrics, optimizers, schedules, trainer and serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    Linear,
    SGD,
    Sequential,
    Tensor,
    Trainer,
    WarmupLinearSchedule,
    accuracy,
    auroc,
    average_precision,
    binary_cross_entropy_with_logits,
    classification_report,
    clip_grad_norm,
    confusion_matrix,
    cross_entropy,
    fpr_at_tpr,
    load_checkpoint,
    macro_f1,
    mae_loss,
    masked_cross_entropy,
    mse_loss,
    precision_recall_f1,
    save_checkpoint,
    train_test_split,
    weighted_f1,
    iterate_minibatches,
)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0, -1.0], [0.5, 0.5, 0.5]])
        targets = np.array([0, 2])
        loss = cross_entropy(Tensor(logits), targets).item()
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -(log_probs[0, 0] + log_probs[1, 2]) / 2
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_cross_entropy_label_smoothing_increases_loss_on_confident_preds(self):
        logits = Tensor(np.array([[10.0, -10.0]]))
        targets = np.array([0])
        plain = cross_entropy(logits, targets).item()
        smoothed = cross_entropy(logits, targets, label_smoothing=0.2).item()
        assert smoothed > plain

    def test_cross_entropy_shape_checks(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3))

    def test_masked_cross_entropy_only_counts_masked_positions(self):
        logits = np.zeros((1, 4, 5))
        logits[0, 1, 2] = 10.0  # confident correct prediction at masked position
        targets = np.full((1, 4), 2)
        mask = np.zeros((1, 4), dtype=bool)
        mask[0, 1] = True
        loss = masked_cross_entropy(Tensor(logits), targets, mask).item()
        assert loss < 0.01
        empty = masked_cross_entropy(Tensor(logits), targets, np.zeros((1, 4), bool))
        assert empty.item() == 0.0

    def test_bce_with_logits_stable_at_extremes(self):
        logits = Tensor(np.array([100.0, -100.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0])).item()
        assert np.isfinite(loss) and loss < 1e-6

    def test_mse_and_mae(self):
        predictions = Tensor(np.array([1.0, 3.0]))
        targets = np.array([0.0, 0.0])
        assert mse_loss(predictions, targets).item() == pytest.approx(5.0)
        assert mae_loss(predictions, targets).item() == pytest.approx(2.0)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        # Gradient should be negative for the true class, positive for others.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0


class TestMetrics:
    def test_accuracy_and_confusion(self):
        y_true = np.array([0, 1, 1, 2])
        y_pred = np.array([0, 1, 2, 2])
        assert accuracy(y_true, y_pred) == pytest.approx(0.75)
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix[1, 2] == 1 and matrix.sum() == 4

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_f1_perfect_and_zero(self):
        y = np.array([0, 1, 0, 1])
        assert macro_f1(y, y) == pytest.approx(1.0)
        assert weighted_f1(y, 1 - y) == pytest.approx(0.0)

    def test_precision_recall_f1_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        stats = precision_recall_f1(y_true, y_pred)
        assert stats["precision"][1] == pytest.approx(2 / 3)
        assert stats["recall"][1] == pytest.approx(1.0)

    def test_auroc_perfect_and_random(self):
        labels = np.array([0, 0, 1, 1])
        assert auroc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == pytest.approx(1.0)
        assert auroc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == pytest.approx(0.0)
        assert auroc(labels, np.array([0.5, 0.5, 0.5, 0.5])) == pytest.approx(0.5)

    def test_auroc_requires_both_classes(self):
        with pytest.raises(ValueError):
            auroc(np.array([1, 1]), np.array([0.5, 0.6]))

    def test_fpr_at_tpr(self):
        labels = np.array([0] * 50 + [1] * 50)
        scores = np.concatenate([np.linspace(0, 0.4, 50), np.linspace(0.6, 1.0, 50)])
        assert fpr_at_tpr(labels, scores, 0.95) == pytest.approx(0.0)

    def test_average_precision_perfect(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.9, 0.2, 0.8])
        assert average_precision(labels, scores) == pytest.approx(1.0)

    def test_classification_report_contains_classes(self):
        report = classification_report(np.array([0, 1]), np.array([0, 1]), ["cat-a", "cat-b"])
        assert "cat-a" in report and "macro" in report


@given(st.integers(2, 40), st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_property_f1_bounded(n, classes):
    rng = np.random.default_rng(n * 7 + classes)
    y_true = rng.integers(0, classes, size=n)
    y_pred = rng.integers(0, classes, size=n)
    for metric in (macro_f1, weighted_f1):
        value = metric(y_true, y_pred, classes)
        assert 0.0 <= value <= 1.0


class TestOptimizers:
    def _toy_problem(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(64, 3))
        weights_true = np.array([[1.0], [-2.0], [0.5]])
        targets = features @ weights_true
        return features, targets

    @pytest.mark.parametrize("optimizer_cls", [SGD, Adam, AdamW])
    def test_optimizers_reduce_loss(self, optimizer_cls):
        features, targets = self._toy_problem()
        model = Linear(3, 1, rng=np.random.default_rng(1))
        lr = 0.05 if optimizer_cls is SGD else 0.05
        optimizer = optimizer_cls(model.parameters(), lr=lr)
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(features)), targets)
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss * 0.2

    def test_sgd_momentum_and_weight_decay(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1, momentum=0.9, weight_decay=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        assert param.data[0] < 1.0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_clip_grad_norm(self):
        params = [Tensor(np.zeros(4), requires_grad=True) for _ in range(2)]
        for p in params:
            p.grad = np.full(4, 10.0)
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert total == pytest.approx(1.0, rel=1e-6)


class TestSchedules:
    def test_warmup_linear_shape(self):
        optimizer = SGD([Tensor([0.0], requires_grad=True)], lr=1.0)
        schedule = WarmupLinearSchedule(optimizer, warmup_steps=5, total_steps=20)
        rates = [schedule.step() for _ in range(20)]
        assert rates[0] < rates[4]
        assert max(rates) == pytest.approx(1.0, abs=0.01)
        assert rates[-1] < 0.1

    def test_cosine_schedule_decays(self):
        optimizer = SGD([Tensor([0.0], requires_grad=True)], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=10, min_factor=0.1)
        rates = [schedule.step() for _ in range(10)]
        assert rates[0] > rates[-1]
        assert rates[-1] == pytest.approx(0.1, abs=0.02)

    def test_constant_schedule(self):
        optimizer = SGD([Tensor([0.0], requires_grad=True)], lr=0.5)
        schedule = ConstantSchedule(optimizer)
        assert schedule.step() == pytest.approx(0.5)

    def test_invalid_total_steps(self):
        optimizer = SGD([Tensor([0.0], requires_grad=True)], lr=0.5)
        with pytest.raises(ValueError):
            WarmupLinearSchedule(optimizer, 1, 0)


class TestTrainerAndData:
    def test_trainer_runs_and_records_history(self):
        model = Linear(2, 1, rng=np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=0.05)
        trainer = Trainer(model, optimizer)
        features = np.random.default_rng(1).normal(size=(32, 2))
        targets = features.sum(axis=1, keepdims=True)

        def batches():
            return [lambda: mse_loss(model(Tensor(features)), targets) for _ in range(4)]

        history = trainer.fit(batches, epochs=3)
        assert len(history.losses) == 12
        assert history.losses[-1] < history.losses[0]
        assert history.wall_time > 0

    def test_trainer_early_stopping(self):
        model = Linear(1, 1)
        optimizer = SGD(model.parameters(), lr=0.01)
        trainer = Trainer(model, optimizer)
        constant = [0.5]

        def batches():
            return [lambda: mse_loss(model(Tensor(np.ones((2, 1)))), np.ones((2, 1)))]

        def eval_fn():
            return {"f1": constant[0]}

        history = trainer.fit(batches, epochs=20, eval_fn=eval_fn, patience=2)
        assert len(history.eval_metrics) < 20

    def test_trainer_rejects_non_tensor_loss(self):
        model = Linear(1, 1)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
        with pytest.raises(TypeError):
            trainer.train_step(lambda: 3.0)

    def test_iterate_minibatches_and_split(self):
        features = np.arange(20).reshape(10, 2)
        labels = np.arange(10)
        batches = list(iterate_minibatches([features, labels], batch_size=4, shuffle=False))
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 2)
        (train, train_y), (test, test_y) = train_test_split([features, labels], 0.3)
        assert len(train) + len(test) == 10
        with pytest.raises(ValueError):
            list(iterate_minibatches([features, labels[:5]], 2))

    def test_checkpoint_roundtrip(self, tmp_path):
        model = Sequential(Linear(3, 3, rng=np.random.default_rng(5)))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, metadata={"step": 7})
        other = Sequential(Linear(3, 3, rng=np.random.default_rng(6)))
        metadata = load_checkpoint(other, path)
        assert metadata["step"] == 7
        np.testing.assert_allclose(
            model.state_dict()["layers.items.0.weight"],
            other.state_dict()["layers.items.0.weight"],
        )
