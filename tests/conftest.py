"""Shared fixtures: small traces and tokenized contexts reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import FlowContextBuilder
from repro.tokenize import FieldAwareTokenizer, Vocabulary
from repro.traffic import (
    DNSWorkloadConfig,
    DNSWorkloadGenerator,
    EnterpriseScenario,
    EnterpriseScenarioConfig,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dns_trace():
    """A small deterministic DNS trace (query/response pairs with labels)."""
    config = DNSWorkloadConfig(seed=7, num_clients=6, queries_per_client=8, duration=20.0)
    return DNSWorkloadGenerator(config).generate()


@pytest.fixture(scope="session")
def small_mixed_trace():
    """A small enterprise capture mixing DNS, HTTP, HTTPS and IoT traffic."""
    config = EnterpriseScenarioConfig(
        seed=3, duration=15.0, dns_clients=4, dns_queries_per_client=6,
        http_sessions=8, tls_sessions=10, iot_devices_per_type=1,
    )
    return EnterpriseScenario(config).generate()


@pytest.fixture(scope="session")
def small_contexts(small_mixed_trace):
    """Flow contexts + vocabulary over the small mixed trace."""
    tokenizer = FieldAwareTokenizer()
    builder = FlowContextBuilder(max_tokens=48)
    contexts = builder.build(small_mixed_trace, tokenizer)
    vocabulary = Vocabulary.build([c.tokens for c in contexts])
    return contexts, vocabulary
