"""Native columnar traffic synthesis: bit-identity with the object path.

Every generator's ``generate_columns()`` must be field-for-field identical
(same seed) to ``PacketColumns.from_packets(generate())`` — the contract
that lets the rest of the pipeline consume columns without ever checking
which path produced them.  The global connection/session counters are reset
between the two runs so metadata ids line up.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.net import PacketColumns, build_packet
from repro.traffic import (
    AttackConfig,
    AttackGenerator,
    DNSWorkloadConfig,
    DNSWorkloadGenerator,
    EnterpriseScenario,
    EnterpriseScenarioConfig,
    HTTPWorkloadConfig,
    HTTPWorkloadGenerator,
    IoTWorkloadConfig,
    IoTWorkloadGenerator,
    TLSWorkloadConfig,
    TLSWorkloadGenerator,
    apply_jitter,
    drop_packets,
    interleave_at_capture_point,
    merge_traces,
    reorder_within_window,
    shifted_dns_config,
)
from repro.traffic.base import TrafficGenerator, _reset_id_counters


def assert_columns_equal(reference: PacketColumns, columns: PacketColumns) -> None:
    """Field-for-field equality of two column batches."""
    for field in dataclasses.fields(PacketColumns):
        actual = getattr(columns, field.name)
        expected = getattr(reference, field.name)
        if isinstance(expected, np.ndarray):
            assert actual.shape == expected.shape, field.name
            assert np.array_equal(actual, expected), field.name
        else:
            assert actual == expected, field.name


def assert_generator_equivalent(make_generator) -> None:
    """``generate_columns()`` equals ``from_packets(generate())`` bit-for-bit."""
    _reset_id_counters()
    reference = PacketColumns.from_packets(make_generator().generate())
    _reset_id_counters()
    columns = make_generator().generate_columns()
    assert_columns_equal(reference, columns)


GENERATORS = {
    "dns": lambda seed: DNSWorkloadGenerator(
        DNSWorkloadConfig(seed=seed, num_clients=5, queries_per_client=6, duration=15.0)
    ),
    "dns-shifted": lambda seed: DNSWorkloadGenerator(
        shifted_dns_config(DNSWorkloadConfig(seed=seed, num_clients=4, queries_per_client=5))
    ),
    "http": lambda seed: HTTPWorkloadGenerator(
        HTTPWorkloadConfig(seed=seed, num_sessions=8, duration=12.0)
    ),
    "tls": lambda seed: TLSWorkloadGenerator(
        TLSWorkloadConfig(seed=seed, num_sessions=10, duration=12.0)
    ),
    "iot": lambda seed: IoTWorkloadGenerator(
        IoTWorkloadConfig(seed=seed, devices_per_type=2, duration=20.0)
    ),
    "attack": lambda seed: AttackGenerator(AttackConfig(seed=seed, duration=10.0)),
    "scenario": lambda seed: EnterpriseScenario(
        EnterpriseScenarioConfig(
            seed=seed, duration=10.0, dns_clients=3, dns_queries_per_client=4,
            http_sessions=4, tls_sessions=4, iot_devices_per_type=1,
        )
    ),
    "scenario-attacks-loss-jitter": lambda seed: EnterpriseScenario(
        EnterpriseScenarioConfig(
            seed=seed, duration=10.0, dns_clients=3, dns_queries_per_client=4,
            http_sessions=4, tls_sessions=4, iot_devices_per_type=1,
            include_attacks=True, capture_jitter_std=0.002, capture_loss_rate=0.05,
        )
    ),
}


class TestGeneratorColumnEquivalence:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_columns_match_object_path(self, name, seed):
        assert_generator_equivalent(lambda: GENERATORS[name](seed))

    def test_wire_bytes_match(self):
        _reset_id_counters()
        packets = GENERATORS["scenario"](3).generate()
        _reset_id_counters()
        columns = GENERATORS["scenario"](3).generate_columns()
        matrix, lengths = columns.wire_matrix()
        for row, packet in enumerate(packets):
            assert matrix[row, : lengths[row]].tobytes() == packet.to_bytes()

    def test_generator_without_plan_falls_back_to_conversion(self):
        class ListOnly(TrafficGenerator):
            def generate(self):
                return [build_packet(0.5, "10.0.0.1", "10.0.0.2", "TCP", 1234, 80)]

        columns = ListOnly().generate_columns()
        assert len(columns) == 1
        assert columns.to_packets() == ListOnly().generate()


class TestColumnarCaptureEffects:
    def _columns(self, seed=5):
        return DNSWorkloadGenerator(
            DNSWorkloadConfig(seed=seed, num_clients=3, queries_per_client=5)
        ).generate_columns()

    def test_merge_traces_columnar(self):
        a, b = self._columns(1), self._columns(2)
        merged = merge_traces(a, b)
        assert isinstance(merged, PacketColumns)
        assert len(merged) == len(a) + len(b)
        times = merged.timestamps
        assert (times[1:] >= times[:-1]).all()

    def test_jitter_matches_object_path(self):
        columns = self._columns()
        packets = columns.to_packets()
        jittered_objects = apply_jitter(packets, 0.01, np.random.default_rng(0))
        jittered_columns = apply_jitter(columns, 0.01, np.random.default_rng(0))
        assert_columns_equal(
            PacketColumns.from_packets(jittered_objects), jittered_columns
        )

    def test_drop_matches_object_path(self):
        columns = self._columns()
        packets = columns.to_packets()
        kept_objects = drop_packets(packets, 0.3, np.random.default_rng(4))
        kept_columns = drop_packets(columns, 0.3, np.random.default_rng(4))
        assert_columns_equal(PacketColumns.from_packets(kept_objects), kept_columns)
        with pytest.raises(ValueError):
            drop_packets(columns, 1.2, np.random.default_rng(0))

    def test_interleave_columnar_matches_object_path(self):
        a, b = self._columns(1), self._columns(2)
        object_capture = interleave_at_capture_point(
            a.to_packets(), b.to_packets(),
            rng=np.random.default_rng(9), jitter_std=0.001, loss_rate=0.1,
        )
        column_capture = interleave_at_capture_point(
            a, b, rng=np.random.default_rng(9), jitter_std=0.001, loss_rate=0.1
        )
        assert isinstance(column_capture, PacketColumns)
        assert_columns_equal(PacketColumns.from_packets(object_capture), column_capture)

    def test_reorder_within_window_columnar(self):
        columns = self._columns()
        packets = columns.to_packets()
        reference = reorder_within_window(packets, 4, np.random.default_rng(2))
        reordered = reorder_within_window(columns, 4, np.random.default_rng(2))
        assert reordered.to_packets() == reference


class TestColumnsRowAccess:
    def _columns(self):
        return EnterpriseScenario(
            EnterpriseScenarioConfig(
                seed=11, duration=8.0, dns_clients=2, dns_queries_per_client=3,
                http_sessions=3, tls_sessions=3, iot_devices_per_type=1,
            )
        ).generate_columns()

    def test_int_index_materializes_packet(self):
        columns = self._columns()
        packets = columns.to_packets()
        assert columns[0] == packets[0]
        assert columns[-1] == packets[-1]
        with pytest.raises(IndexError):
            columns[len(columns)]

    def test_slice_round_trip(self):
        columns = self._columns()
        packets = columns.to_packets()
        window = columns[5:20]
        assert isinstance(window, PacketColumns)
        assert window.to_packets() == packets[5:20]
        assert_columns_equal(PacketColumns.from_packets(packets[5:20]), window)

    def test_index_array_round_trip_with_repeats(self):
        columns = self._columns()
        packets = columns.to_packets()
        rows = np.array([3, 1, 1, 10, -1])
        selected = columns[rows]
        expected = [packets[i] for i in [3, 1, 1, 10, len(packets) - 1]]
        assert selected.to_packets() == expected
        assert_columns_equal(PacketColumns.from_packets(expected), selected)

    def test_boolean_mask_round_trip(self):
        columns = self._columns()
        packets = columns.to_packets()
        mask = np.zeros(len(columns), dtype=bool)
        mask[::3] = True
        assert columns[mask].to_packets() == [p for p, m in zip(packets, mask) if m]
        with pytest.raises(IndexError):
            columns[mask[:-1]]
        with pytest.raises(IndexError):
            columns[np.array([0, len(columns)])]

    def test_concat_round_trip(self):
        columns = self._columns()
        left, right = columns[: len(columns) // 2], columns[len(columns) // 2 :]
        rejoined = PacketColumns.concat([left, right])
        assert_columns_equal(
            PacketColumns.from_packets(columns.to_packets()), rejoined
        )
        assert len(PacketColumns.concat([])) == 0

    def test_grouping_id_columns_match_metadata(self):
        columns = self._columns()
        for row, metadata in enumerate(columns.metadata):
            assert columns.connection_ids[row] == metadata.get("connection_id", -1)
            assert columns.session_ids[row] == metadata.get("session_id", -1)


def test_datacenter_dataset_matches_flow_features():
    """The columnar dataset() must equal the per-flow feature_vector path."""
    from repro.traffic import DatacenterConfig, DatacenterFlowGenerator

    generator = DatacenterFlowGenerator(DatacenterConfig(seed=4, num_flows=150))
    features, targets = generator.dataset()
    flows = generator.generate()
    assert np.allclose(features, np.stack([f.feature_vector() for f in flows]))
    assert np.allclose(targets, [f.completion_time for f in flows])
