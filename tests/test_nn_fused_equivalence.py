"""Differential harness: fused kernels vs the composed reference paths.

Every fused fast path in ``repro.nn`` keeps its composed reference
implementation alive behind a flag (``fused=False`` on the layers and
losses, ``in_place=False`` on the optimizers, ``predict_logits_reference``
on the classifier).  This file drives both sides over the same inputs and
pins the equivalence contract:

* forwards and loss *values* are **bit-identical** (the fused forward
  replays the composed NumPy op sequence exactly);
* backwards are analytic single-pass VJPs — equal to the composed
  gradients to ``assert_allclose`` tolerance (last-ulp association
  differences only), so training curves stay loss-for-loss identical;
* in-place optimizer updates are bit-identical to the reference update
  expressions, state buffers included;
* the tape-free eval forward is bit-identical to the module-graph loop
  and makes a lone row's logits equal to the same row served in any batch
  (the batch-invariance contract the serving engine relies on);
* float32 models stay float32 end to end on the fused path;
* steady-state training allocates no scratch buffers.

Shapes deliberately cover 1-element, odd and power-of-two rows, singleton
batches, and padded vs padding-free masks.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NetFMConfig
from repro.core.finetuning import FinetuneConfig, SequenceClassifier
from repro.core.model import NetFoundationModel
from repro.core.pretraining import Pretrainer, PretrainingConfig
from repro.nn import (
    Adam,
    AdamW,
    SGD,
    LayerNorm,
    MultiHeadAttention,
    Tensor,
    Trainer,
    cross_entropy,
    masked_cross_entropy,
    no_grad,
)
from repro.tokenize import Vocabulary

SHAPES = [(1, 1, 4), (1, 7, 8), (2, 1, 8), (3, 5, 8), (4, 16, 16)]


def random_mask(rng: np.random.Generator, batch: int, seq: int) -> np.ndarray:
    """A padding mask with at least one valid position per row."""
    mask = np.ones((batch, seq), dtype=bool)
    for row in range(batch):
        mask[row, rng.integers(1, seq + 1) :] = False
    return mask


def build_model_pair(fused_dropout: float = 0.0, **overrides):
    """Two identically-initialized foundation models, fused and reference."""
    kwargs = dict(
        vocab_size=37, d_model=16, num_heads=2, num_layers=2, d_ff=32,
        max_len=24, dropout=fused_dropout, seed=11,
    )
    kwargs.update(overrides)
    fused = NetFoundationModel(NetFMConfig(fused=True, **kwargs))
    reference = NetFoundationModel(NetFMConfig(fused=False, **kwargs))
    return fused, reference


class TestForwardBitIdentity:
    @pytest.mark.parametrize("batch,seq,d", SHAPES)
    def test_layer_norm_forward(self, batch, seq, d):
        rng = np.random.default_rng(batch * 100 + seq)
        x = rng.normal(size=(batch, seq, d))
        fused = LayerNorm(d, fused=True)
        reference = LayerNorm(d, fused=False)
        out_fused = fused(Tensor(x, requires_grad=True))
        out_ref = reference(Tensor(x, requires_grad=True))
        assert np.array_equal(out_fused.data, out_ref.data)
        with no_grad():
            assert np.array_equal(fused(Tensor(x)).data, out_ref.data)

    @pytest.mark.parametrize("batch,seq,d", SHAPES)
    @pytest.mark.parametrize("masked", [False, True])
    def test_attention_forward(self, batch, seq, d, masked):
        rng = np.random.default_rng(batch * 10 + seq + masked)
        x = rng.normal(size=(batch, seq, d))
        mask = random_mask(rng, batch, seq) if masked else None
        fused = MultiHeadAttention(d, 2, rng=np.random.default_rng(0), fused=True)
        reference = MultiHeadAttention(d, 2, rng=np.random.default_rng(0), fused=False)
        fused.eval(), reference.eval()
        out_fused = fused(Tensor(x, requires_grad=True), attention_mask=mask)
        out_ref = reference(Tensor(x, requires_grad=True), attention_mask=mask)
        assert np.array_equal(out_fused.data, out_ref.data)
        assert np.array_equal(fused.last_attention, reference.last_attention)

    @pytest.mark.parametrize("masked", [False, True])
    def test_model_logits(self, masked):
        fused, reference = build_model_pair()
        clf_fused = SequenceClassifier(fused, 4, FinetuneConfig(dropout=0.0))
        clf_ref = SequenceClassifier(reference, 4, FinetuneConfig(dropout=0.0))
        rng = np.random.default_rng(5)
        for batch, seq in [(1, 6), (3, 9), (4, 16), (2, 1)]:
            ids = rng.integers(0, 37, (batch, seq))
            mask = random_mask(rng, batch, seq) if masked else None
            lf = clf_fused.predict_logits(ids, mask)
            lr = clf_ref.predict_logits(ids, mask)
            if batch == 1:
                # The fast path trades exact 1-row reproduction of the
                # composed loop for batch invariance (see TestEvalFastPath).
                np.testing.assert_allclose(lf, lr)
            else:
                assert np.array_equal(lf, lr)


class TestLossEquivalence:
    def test_cross_entropy_value_and_grad(self):
        rng = np.random.default_rng(2)
        for n, c in [(1, 2), (5, 7), (8, 16)]:
            logits = rng.normal(size=(n, c))
            targets = rng.integers(0, c, size=n)
            tf, tr = Tensor(logits, requires_grad=True), Tensor(logits, requires_grad=True)
            lf = cross_entropy(tf, targets, fused=True)
            lr = cross_entropy(tr, targets, fused=False)
            assert np.array_equal(lf.data, lr.data)
            lf.backward(), lr.backward()
            np.testing.assert_allclose(tf.grad, tr.grad, atol=1e-12)

    def test_cross_entropy_label_smoothing(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(6, 5))
        targets = rng.integers(0, 5, size=6)
        tf, tr = Tensor(logits, requires_grad=True), Tensor(logits, requires_grad=True)
        lf = cross_entropy(tf, targets, label_smoothing=0.1, fused=True)
        lr = cross_entropy(tr, targets, label_smoothing=0.1, fused=False)
        np.testing.assert_allclose(lf.data, lr.data, rtol=1e-12)
        lf.backward(), lr.backward()
        np.testing.assert_allclose(tf.grad, tr.grad, atol=1e-12)

    def test_masked_cross_entropy_value_and_grad(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(3, 6, 9))
        targets = rng.integers(0, 9, size=(3, 6))
        mask = rng.random((3, 6)) < 0.4
        mask[1, 2] = True
        tf, tr = Tensor(logits, requires_grad=True), Tensor(logits, requires_grad=True)
        lf = masked_cross_entropy(tf, targets, mask, fused=True)
        lr = masked_cross_entropy(tr, targets, mask, fused=False)
        assert np.array_equal(lf.data, lr.data)
        lf.backward(), lr.backward()
        np.testing.assert_allclose(tf.grad, tr.grad, atol=1e-12)

    def test_masked_cross_entropy_empty_mask(self):
        logits = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        mask = np.zeros((2, 3), dtype=bool)
        for fused in (True, False):
            loss = masked_cross_entropy(logits, np.zeros((2, 3), dtype=np.int64), mask, fused=fused)
            assert float(loss.data) == 0.0


class TestGradientEquivalence:
    @pytest.mark.parametrize("batch,seq,d", SHAPES)
    def test_layer_norm_backward(self, batch, seq, d):
        rng = np.random.default_rng(batch + seq)
        x = rng.normal(size=(batch, seq, d))
        grads = {}
        for fused in (True, False):
            layer = LayerNorm(d, fused=fused)
            inp = Tensor(x, requires_grad=True)
            (layer(inp) * layer(inp)).sum().backward()
            grads[fused] = (inp.grad, layer.gamma.grad, layer.beta.grad)
        for gf, gr in zip(grads[True], grads[False]):
            np.testing.assert_allclose(gf, gr, atol=1e-10)

    @pytest.mark.parametrize("masked", [False, True])
    def test_attention_backward(self, masked):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(3, 7, 8))
        mask = random_mask(rng, 3, 7) if masked else None
        grads = {}
        for fused in (True, False):
            layer = MultiHeadAttention(8, 2, rng=np.random.default_rng(1), fused=fused)
            layer.eval()
            inp = Tensor(x, requires_grad=True)
            (layer(inp, attention_mask=mask) ** 2).sum().backward()
            grads[fused] = [inp.grad] + [p.grad for p in layer.parameters()]
        for gf, gr in zip(grads[True], grads[False]):
            np.testing.assert_allclose(gf, gr, atol=1e-10)


class TestTrainingEquivalence:
    def _fit(self, fused: bool) -> tuple[list, SequenceClassifier]:
        kwargs = dict(
            vocab_size=23, d_model=12, num_heads=2, num_layers=1, d_ff=24,
            max_len=12, dropout=0.0, seed=2,
        )
        model = NetFoundationModel(NetFMConfig(fused=fused, **kwargs))
        clf = SequenceClassifier(
            model, 3, FinetuneConfig(epochs=2, batch_size=4, dropout=0.0, seed=0)
        )
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 23, (12, 10))
        mask = np.ones((12, 10), dtype=bool)
        labels = rng.integers(0, 3, 12)
        history = clf.fit(ids, mask, labels)
        return history.losses, clf

    def test_finetune_curves_loss_for_loss(self):
        losses_fused, clf_fused = self._fit(True)
        losses_ref, clf_ref = self._fit(False)
        np.testing.assert_allclose(losses_fused, losses_ref)
        for pf, pr in zip(clf_fused.parameters(), clf_ref.parameters()):
            np.testing.assert_allclose(pf.data, pr.data, atol=1e-10)

    def test_pretrain_curves_loss_for_loss(self):
        vocabulary = Vocabulary(["a", "b", "c", "d"])
        losses = {}
        for fused in (True, False):
            config = NetFMConfig(
                vocab_size=len(vocabulary), d_model=12, num_heads=2, num_layers=1,
                d_ff=24, max_len=10, dropout=0.0, seed=4, fused=fused,
            )
            rng = np.random.default_rng(6)
            ids = rng.integers(0, len(vocabulary), (10, 8))
            mask = np.ones((10, 8), dtype=bool)
            pretrainer = Pretrainer(
                NetFoundationModel(config), vocabulary,
                PretrainingConfig(epochs=2, batch_size=5, seed=0),
            )
            losses[fused] = pretrainer.pretrain_encoded(ids, mask).losses
        np.testing.assert_allclose(losses[True], losses[False])


class TestOptimizerStateEquivalence:
    CONFIGS = [
        (SGD, dict(lr=0.1)),
        (SGD, dict(lr=0.1, momentum=0.9, weight_decay=0.01)),
        (Adam, dict(lr=1e-2)),
        (Adam, dict(lr=1e-2, weight_decay=0.01)),
        (AdamW, dict(lr=1e-2, weight_decay=0.05)),
    ]

    @pytest.mark.parametrize("cls,kwargs", CONFIGS)
    def test_in_place_updates_bit_identical(self, cls, kwargs):
        rng = np.random.default_rng(7)
        shapes = [(4, 3), (3,), (2, 2)]
        datas = [rng.normal(size=s) for s in shapes]
        grads = [[rng.normal(size=s) for s in shapes] for _ in range(5)]

        def run(in_place):
            params = [Tensor(d.copy(), requires_grad=True) for d in datas]
            opt = cls(params, in_place=in_place, **kwargs)
            for step_grads in grads:
                opt.zero_grad(set_to_none=not in_place)
                for p, g in zip(params, step_grads):
                    p._add_grad(g.copy())
                opt.step()
            return params, opt

        params_ip, opt_ip = run(True)
        params_ref, opt_ref = run(False)
        for pi, pr in zip(params_ip, params_ref):
            assert np.array_equal(pi.data, pr.data)
        if isinstance(opt_ip, Adam):
            for mi, mr in zip(opt_ip._m, opt_ref._m):
                assert np.array_equal(mi, mr)
            for vi, vr in zip(opt_ip._v, opt_ref._v):
                assert np.array_equal(vi, vr)

    def test_untouched_parameter_skipped_with_preallocated_buffers(self):
        p_active = Tensor(np.ones(3), requires_grad=True)
        p_idle = Tensor(np.ones(3), requires_grad=True)
        opt = Adam([p_active, p_idle], lr=0.1, in_place=True)
        before = p_idle.data.copy()
        for _ in range(2):
            opt.zero_grad(set_to_none=False)
            p_active._add_grad(np.ones(3))
            opt.step()
        assert np.array_equal(p_idle.data, before)
        assert not np.array_equal(p_active.data, np.ones(3))

    def test_grad_buffers_reused_between_steps(self):
        p = Tensor(np.ones((2, 2)), requires_grad=True)
        opt = SGD([p], lr=0.1, in_place=True)
        opt.zero_grad(set_to_none=False)
        p._add_grad(np.ones((2, 2)))
        opt.step()
        buffer = p.grad
        opt.zero_grad(set_to_none=False)
        p._add_grad(np.ones((2, 2)))
        assert p.grad is buffer


class TestEvalFastPath:
    def _classifier(self, seed=0):
        model, _ = build_model_pair(seed=seed)
        return SequenceClassifier(model, 4, FinetuneConfig(dropout=0.0))

    @pytest.mark.parametrize("masked", [False, True])
    def test_bit_identical_to_module_loop(self, masked):
        clf = self._classifier()
        rng = np.random.default_rng(1)
        for batch, seq in [(2, 5), (3, 1), (5, 13), (4, 16)]:
            ids = rng.integers(0, 37, (batch, seq))
            mask = random_mask(rng, batch, seq) if masked else None
            assert np.array_equal(
                clf.predict_logits(ids, mask),
                clf.predict_logits_reference(ids, mask),
            )

    @settings(max_examples=20, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=6),
        seq=st.integers(min_value=1, max_value=12),
        chunk=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_singleton_matches_in_batch(self, batch, seq, chunk, seed):
        """A row's served logits never depend on batch packing or chunking."""
        clf = self._classifier()
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 37, (batch, seq))
        mask = random_mask(rng, batch, seq)
        full = clf.predict_logits(ids, mask)
        chunked = clf.predict_logits(ids, mask, batch_size=chunk)
        assert np.array_equal(full, chunked)
        for row in range(batch):
            lone = clf.predict_logits(ids[row : row + 1], mask[row : row + 1])
            assert np.array_equal(lone[0], full[row])

    def test_attention_maps_match_module_loop(self):
        clf = self._classifier()
        rng = np.random.default_rng(8)
        ids = rng.integers(0, 37, (3, 7))
        mask = random_mask(rng, 3, 7)
        clf.predict_logits(ids, mask)
        fast_maps = [m.copy() for m in clf.model.attention_maps()]
        clf.predict_logits_reference(ids, mask)
        ref_maps = clf.model.attention_maps()
        assert len(fast_maps) == len(ref_maps) == clf.model.config.num_layers
        for fm, rm in zip(fast_maps, ref_maps):
            assert np.array_equal(fm, rm)

    def test_weight_updates_are_picked_up(self):
        clf = self._classifier()
        ids = np.arange(8).reshape(2, 4)
        before = clf.predict_logits(ids, None)
        clf.head.weight.data += 0.5
        after = clf.predict_logits(ids, None)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, clf.predict_logits_reference(ids, None))


class TestFloat32Discipline:
    def _cast(self, module, dtype):
        for p in module.parameters():
            p.data = p.data.astype(dtype)
        return module

    def test_fused_forward_stays_float32(self):
        model, _ = build_model_pair()
        clf = SequenceClassifier(model, 4, FinetuneConfig(dropout=0.0))
        self._cast(clf, np.float32)
        ids = np.arange(12).reshape(3, 4)
        logits = clf.predict_logits(ids, np.ones((3, 4), dtype=bool))
        assert logits.dtype == np.float32

    def test_fused_float32_tracks_float64(self):
        ids = np.arange(12).reshape(3, 4)
        mask = np.ones((3, 4), dtype=bool)
        model64, _ = build_model_pair()
        clf64 = SequenceClassifier(model64, 4, FinetuneConfig(dropout=0.0))
        logits64 = clf64.predict_logits(ids, mask)
        model32, _ = build_model_pair()
        clf32 = self._cast(
            SequenceClassifier(model32, 4, FinetuneConfig(dropout=0.0)), np.float32
        )
        logits32 = clf32.predict_logits(ids, mask)
        np.testing.assert_allclose(logits32, logits64, rtol=1e-3, atol=1e-4)

    def test_fused_loss_stays_float32(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(4, 5)).astype(np.float32), requires_grad=True)
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64), fused=True)
        assert loss.data.dtype == np.float32
        loss.backward()
        assert logits.grad.dtype == np.float32


class TestAllocationDiscipline:
    def test_steady_state_training_allocates_no_scratch(self):
        model, _ = build_model_pair()
        clf = SequenceClassifier(model, 3, FinetuneConfig(dropout=0.0))
        optimizer = Adam(clf.parameters(), lr=1e-3)
        trainer = Trainer(clf, optimizer)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 37, (4, 8))
        mask = np.ones((4, 8), dtype=bool)
        labels = rng.integers(0, 3, 4)
        for _ in range(4):
            trainer.train_step(lambda: cross_entropy(clf(ids, mask), labels))
        history = trainer.history
        assert len(history.step_wall_times) == len(history.losses) == 4
        assert all(t > 0 for t in history.step_wall_times)
        # After the first step every pooled shape exists; later same-shape
        # steps must not miss the pool.
        assert history.step_scratch_allocations[1:] == [0, 0, 0]
        # The taped graph has a fixed size per batch shape.
        assert len(set(history.step_tensor_allocations[1:])) == 1

    def test_grad_mode_is_thread_local_for_fused_kernels(self):
        layer = LayerNorm(4, fused=True)
        x = rng_x = np.random.default_rng(0).normal(size=(2, 3, 4))
        results = {}

        def eval_worker():
            with no_grad():
                results["eval"] = layer(Tensor(rng_x, requires_grad=True))

        inp = Tensor(x, requires_grad=True)
        out = layer(inp)  # taped in the main thread
        worker = threading.Thread(target=eval_worker)
        worker.start()
        worker.join()
        assert not results["eval"].requires_grad
        out.sum().backward()
        assert inp.grad is not None and layer.gamma.grad is not None
