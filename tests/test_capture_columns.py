"""Columnar capture & flow-statistics layer: bit-identity with the object path.

``read_pcap_columns(path)`` must equal ``PacketColumns.from_packets(
read_pcap(path))`` field for field — including the decoded application
objects, the name dicts and the error behavior for malformed records — and
``write_pcap_columns`` must produce byte-for-byte the file ``write_pcap``
writes.  ``FlowStatsColumns`` must reproduce the ``FlowTable`` +
``flow_statistics`` feature table bit-for-bit (feature order, flow order,
float rounding) along with the per-flow majority labels.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.net import (
    DNSMessage,
    DNSQuestion,
    FlowTable,
    PacketColumns,
    build_packet,
    flow_feature_matrix,
    flow_statistics,
    read_pcap,
    read_pcap_columns,
    write_pcap,
    write_pcap_columns,
)
from repro.net.flow_columns import FLOW_FEATURE_NAMES, FlowStatsColumns
from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig


def assert_columns_equal(reference: PacketColumns, columns: PacketColumns) -> None:
    for field in dataclasses.fields(PacketColumns):
        actual = getattr(columns, field.name)
        expected = getattr(reference, field.name)
        if isinstance(expected, np.ndarray):
            assert actual.shape == expected.shape, field.name
            assert np.array_equal(actual, expected), field.name
        else:
            assert actual == expected, field.name


@pytest.fixture(scope="module")
def trace():
    config = EnterpriseScenarioConfig(
        seed=11, duration=25.0, dns_clients=6, dns_queries_per_client=5,
        http_sessions=8, tls_sessions=8, iot_devices_per_type=2,
        include_attacks=True,
    )
    return EnterpriseScenario(config).generate()


@pytest.fixture(scope="module")
def capture_path(trace, tmp_path_factory):
    return write_pcap(tmp_path_factory.mktemp("pcap") / "capture.pcap", trace)


class TestReadPcapColumns:
    def test_bit_identical_to_object_reader(self, capture_path):
        reference = PacketColumns.from_packets(read_pcap(capture_path))
        assert_columns_equal(reference, read_pcap_columns(capture_path))

    def test_reused_decode_cache_is_exact(self, capture_path):
        reference = PacketColumns.from_packets(read_pcap(capture_path))
        cache: dict = {}
        for _ in range(2):  # second read runs fully warm
            assert_columns_equal(
                reference, read_pcap_columns(capture_path, decode_cache=cache)
            )

    def test_empty_capture(self, tmp_path):
        path = write_pcap(tmp_path / "empty.pcap", [])
        assert_columns_equal(PacketColumns.from_packets([]), read_pcap_columns(path))

    def test_big_endian_capture(self, tmp_path):
        import struct

        packets = [
            build_packet(2.25, "10.0.0.1", "8.8.8.8", "UDP", 40000, 53,
                         application=DNSMessage(transaction_id=3,
                                                questions=[DNSQuestion("a.example")])),
            build_packet(2.5, "10.0.0.1", "10.0.0.9", "ICMP", seq=1),
        ]
        blob = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        for packet in packets:
            data = packet.to_bytes()
            seconds = int(packet.timestamp)
            micros = int(round((packet.timestamp - seconds) * 1_000_000))
            blob += struct.pack(">IIII", seconds, micros, len(data), len(data)) + data
        path = tmp_path / "be.pcap"
        path.write_bytes(blob)
        assert_columns_equal(
            PacketColumns.from_packets(read_pcap(path)), read_pcap_columns(path)
        )

    def test_snaplen_truncated_records(self, trace, tmp_path):
        # snaplen cuts payloads (captured < orig_len) but leaves the fixed
        # headers intact: both readers agree on the degraded parse.
        path = write_pcap(tmp_path / "cut.pcap", trace[:200], snaplen=60)
        assert_columns_equal(
            PacketColumns.from_packets(read_pcap(path)), read_pcap_columns(path)
        )

    def test_truncation_errors_match_object_reader(self, trace, tmp_path):
        full = write_pcap(tmp_path / "full.pcap", trace[:4]).read_bytes()
        mid = tmp_path / "mid.pcap"
        mid.write_bytes(full[:-5])
        with pytest.raises(ValueError, match="truncated mid-record"):
            read_pcap(mid)
        with pytest.raises(ValueError, match="truncated mid-record"):
            read_pcap_columns(mid)

    def test_unparseable_row_raises_like_parse_packet(self, tmp_path):
        # A record too short for Ethernet+IPv4 goes through the per-packet
        # fallback and raises exactly what the object reader raises.
        import struct

        blob = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        blob += struct.pack("<IIII", 0, 0, 10, 10) + b"\x00" * 10
        path = tmp_path / "short_record.pcap"
        path.write_bytes(blob)
        with pytest.raises(ValueError) as object_error:
            read_pcap(path)
        with pytest.raises(ValueError) as columnar_error:
            read_pcap_columns(path)
        assert str(object_error.value) == str(columnar_error.value)

    def test_tls_branch_ntp_fallback_not_cached_across_port_pairs(self, tmp_path):
        # Identical non-handshake payloads on the TLS ports decode
        # differently depending on whether a port is 123 (the NTP
        # fallback), so the memoization must not reuse one row's result
        # for the other — in either order.
        from repro.net import NTPPacket

        ntp_bytes = NTPPacket().pack()
        for ports in [((5000, 443), (123, 443)), ((123, 443), (5000, 443))]:
            packets = [
                build_packet(float(i), "10.0.0.1", "10.0.0.2", "UDP", src, dst,
                             application=ntp_bytes)
                for i, (src, dst) in enumerate(ports)
            ]
            path = write_pcap(tmp_path / "tlsntp.pcap", packets)
            assert_columns_equal(
                PacketColumns.from_packets(read_pcap(path)), read_pcap_columns(path)
            )

    def test_non_ipv4_row_raises_like_parse_packet(self, tmp_path):
        import struct

        data = b"\xff" * 60  # version nibble 0xf != 4
        blob = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        blob += struct.pack("<IIII", 0, 0, len(data), len(data)) + data
        path = tmp_path / "notip.pcap"
        path.write_bytes(blob)
        with pytest.raises(ValueError) as object_error:
            read_pcap(path)
        with pytest.raises(ValueError) as columnar_error:
            read_pcap_columns(path)
        assert str(object_error.value) == str(columnar_error.value)


class TestWritePcapColumns:
    def test_byte_identical_to_object_writer(self, trace, tmp_path):
        columns = PacketColumns.from_packets(trace)
        object_path = write_pcap(tmp_path / "obj.pcap", columns.to_packets())
        columnar_path = write_pcap_columns(tmp_path / "col.pcap", columns)
        assert object_path.read_bytes() == columnar_path.read_bytes()

    def test_snaplen_byte_identical(self, trace, tmp_path):
        columns = PacketColumns.from_packets(trace[:100])
        object_path = write_pcap(tmp_path / "obj.pcap", columns.to_packets(), snaplen=70)
        columnar_path = write_pcap_columns(tmp_path / "col.pcap", columns, snaplen=70)
        assert object_path.read_bytes() == columnar_path.read_bytes()

    def test_round_trip_through_columns(self, trace, tmp_path):
        # generate → write_pcap_columns → read_pcap_columns: the no-object
        # capture path reproduces what the object pipeline would parse.
        columns = PacketColumns.from_packets(trace[:150])
        path = write_pcap_columns(tmp_path / "rt.pcap", columns)
        assert_columns_equal(
            PacketColumns.from_packets(read_pcap(path)), read_pcap_columns(path)
        )


class TestFlowStatsColumns:
    def _object_table(self, packets, label_key=None):
        table = FlowTable()
        table.extend(packets)
        flows = table.flows()
        features = np.stack([
            np.array(list(flow_statistics(flow).values()), dtype=float)
            for flow in flows
        ])
        if label_key is None:
            return features
        return features, [flow.label(label_key) for flow in flows]

    def test_feature_names_match_flow_statistics(self):
        packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1, 2)
        table = FlowTable()
        table.add(packet)
        assert tuple(flow_statistics(table.flows()[0])) == FLOW_FEATURE_NAMES

    def test_features_bit_identical(self, trace):
        columns = PacketColumns.from_packets(trace)
        expected, expected_labels = self._object_table(trace, "application")
        actual, labels = flow_feature_matrix(columns, label_key="application")
        assert actual.shape == expected.shape
        assert np.array_equal(actual, expected)
        assert labels == expected_labels

    def test_features_from_parsed_pcap(self, capture_path):
        # Parsed captures have no metadata, exercise the 5-tuple-only path.
        columns = read_pcap_columns(capture_path)
        expected = self._object_table(read_pcap(capture_path))
        assert np.array_equal(flow_feature_matrix(columns), expected)

    def test_packet_list_input(self, trace):
        expected = self._object_table(trace[:300])
        assert np.array_equal(flow_feature_matrix(trace[:300]), expected)

    def test_grouping_slices_cover_all_rows(self, trace):
        columns = PacketColumns.from_packets(trace)
        stats = FlowStatsColumns.from_columns(columns)
        assert stats.bounds[0] == 0 and stats.bounds[-1] == len(columns)
        assert sorted(stats.order.tolist()) == list(range(len(columns)))
        # rows within each flow are in timestamp order
        for g in range(len(stats)):
            rows = stats.order[stats.bounds[g]:stats.bounds[g + 1]]
            times = columns.timestamps[rows]
            assert (np.diff(times) >= 0).all()

    def test_empty_batch(self):
        columns = PacketColumns.from_packets([])
        stats = FlowStatsColumns.from_columns(columns)
        assert stats.features.shape == (0, len(FLOW_FEATURE_NAMES))

    def test_no_ip_rows_group_like_objects(self):
        # Packets without an IP layer (src_ip == "") still group and
        # featurize exactly like the object path.
        from repro.net import EthernetHeader, Packet

        bare = [
            Packet(timestamp=float(i), ethernet=EthernetHeader(), payload=b"xy")
            for i in range(3)
        ]
        mixed = bare + [build_packet(0.5, "10.0.0.1", "10.0.0.2", "TCP", 5, 6)]
        expected = self._object_table(mixed)
        actual = flow_feature_matrix(PacketColumns.from_packets(mixed))
        assert np.array_equal(actual, expected)


class TestFlowStatsSolverColumnar:
    def test_solver_matches_object_feature_pipeline(self):
        from repro.core.finetuning import LabelEncoder
        from repro.netglue.solvers import FlowStatsSolver

        config = EnterpriseScenarioConfig(seed=5, duration=15.0, include_attacks=False)
        columns = EnterpriseScenario(config).generate_columns()
        packets = columns.to_packets()

        table = FlowTable()
        table.extend(packets)
        flows = [f for f in table.flows() if f.label("application") is not None]
        expected = np.stack([
            np.array(list(flow_statistics(flow).values()), dtype=float)
            for flow in flows
        ])
        labels = [str(flow.label("application")) for flow in flows]

        solver = FlowStatsSolver()
        features, encoded, encoder = solver._flow_features(columns, "application", None)
        assert np.array_equal(features, expected)
        assert encoder.decode(encoded) == labels

    def test_solver_accepts_packet_lists(self):
        from repro.netglue.solvers import FlowStatsSolver

        config = EnterpriseScenarioConfig(seed=6, duration=10.0, include_attacks=False)
        columns = EnterpriseScenario(config).generate_columns()
        solver = FlowStatsSolver()
        from_columns = solver._flow_features(columns, "application", None)
        from_packets = solver._flow_features(columns.to_packets(), "application", None)
        assert np.array_equal(from_columns[0], from_packets[0])
        assert np.array_equal(from_columns[1], from_packets[1])


class TestLazyDecode:
    """``read_pcap_columns(lazy_decode=True)``: decode-free cold parse,
    bit-identical materialization on first ``app_kind``/``applications``
    access, pending-state propagation through select/concat."""

    def test_materialized_lazy_equals_eager(self, capture_path):
        eager = read_pcap_columns(capture_path)
        lazy = read_pcap_columns(capture_path, lazy_decode=True)
        assert lazy.decode_pending
        assert_columns_equal(eager, lazy)  # field access triggers the decode
        assert not lazy.decode_pending

    def test_cold_parse_is_decode_free(self, capture_path):
        lazy = read_pcap_columns(capture_path, lazy_decode=True)
        # Byte-level consumption: wire serialization, header columns and
        # row selection never touch the application layer.
        matrix, lengths = lazy.wire_matrix()
        assert matrix.shape[0] == len(lazy) and lengths.sum() > 0
        subset = lazy[5:40]
        assert lazy.decode_pending and subset.decode_pending

    def test_app_kind_access_triggers_decode(self, capture_path):
        eager = read_pcap_columns(capture_path)
        lazy = read_pcap_columns(capture_path, lazy_decode=True)
        assert np.array_equal(lazy.app_kind, eager.app_kind)
        assert not lazy.decode_pending
        assert lazy.applications == eager.applications

    def test_select_and_concat_propagate_pending(self, capture_path):
        eager = read_pcap_columns(capture_path)
        lazy = read_pcap_columns(capture_path, lazy_decode=True)
        parts = [lazy[0:25], lazy[25:60], lazy[60 : len(lazy)]]
        assert all(part.decode_pending for part in parts)
        merged = type(parts[0]).concat(parts)
        assert merged.decode_pending and lazy.decode_pending
        assert np.array_equal(merged.app_kind, eager.app_kind)
        assert merged.applications == eager.applications

    def test_lazy_decode_uses_shared_cache(self, capture_path):
        cache: dict = {}
        eager = read_pcap_columns(capture_path, decode_cache=cache)
        lazy = read_pcap_columns(
            capture_path, decode_cache=cache, lazy_decode=True
        )
        assert_columns_equal(eager, lazy)

    def test_to_packets_matches_object_reader(self, capture_path):
        lazy = read_pcap_columns(capture_path, lazy_decode=True)
        assert lazy.to_packets() == read_pcap(capture_path)

    def test_concurrent_decode_is_safe(self, capture_path):
        # Threaded consumers (parallel shard writes over a lazily parsed
        # corpus) may race on the same pending batch: every thread must see
        # the fully decoded columns, never a crash or torn state.
        import threading

        eager = read_pcap_columns(capture_path)
        for _ in range(50):
            lazy = read_pcap_columns(capture_path, lazy_decode=True)
            barrier = threading.Barrier(6)
            errors: list[Exception] = []

            def worker():
                try:
                    barrier.wait()
                    assert np.array_equal(lazy.app_kind, eager.app_kind)
                    assert lazy.applications == eager.applications
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors

    def test_parallel_shard_writes_over_lazy_corpus(self, capture_path, tmp_path):
        from repro.corpus import PacketTraceCorpus

        eager = read_pcap_columns(capture_path)
        corpus = PacketTraceCorpus(
            read_pcap_columns(capture_path, lazy_decode=True)
        )
        corpus.save_shards(tmp_path / "lazy", shard_rows=40, workers=4)
        restored = PacketTraceCorpus.open_shards(tmp_path / "lazy")
        assert_columns_equal(eager, restored.columns())


class TestFlowStatsIdleTimeout:
    """``FlowStatsColumns`` with ``idle_timeout`` splits flows bit-identically
    to ``FlowTable(idle_timeout=...)`` (the shared expiry rule)."""

    def _object_reference(self, packets, idle_timeout, label_key=None):
        table = FlowTable(idle_timeout=idle_timeout)
        table.extend(packets)
        flows = table.flows()
        features = np.stack([
            np.array(list(flow_statistics(flow).values()), dtype=float)
            for flow in flows
        ])
        if label_key is None:
            return features
        return features, [flow.label(label_key) for flow in flows]

    @pytest.mark.parametrize("idle_timeout", [0.05, 0.2, 1.0, 30.0])
    def test_features_bit_identical(self, trace, idle_timeout):
        columns = PacketColumns.from_packets(trace)
        expected = self._object_reference(trace, idle_timeout)
        actual = flow_feature_matrix(columns, idle_timeout=idle_timeout)
        assert actual.shape == expected.shape
        assert np.array_equal(actual, expected)

    def test_labels_follow_the_split_flows(self, trace):
        columns = PacketColumns.from_packets(trace)
        expected, labels = self._object_reference(
            trace, 0.2, label_key="application"
        )
        actual, actual_labels = flow_feature_matrix(
            columns, label_key="application", idle_timeout=0.2
        )
        assert np.array_equal(actual, expected)
        assert actual_labels == labels

    def test_zero_timeout_unchanged(self, trace):
        columns = PacketColumns.from_packets(trace)
        assert np.array_equal(
            flow_feature_matrix(columns, idle_timeout=0.0),
            flow_feature_matrix(columns),
        )

    def test_grouping_slices_respect_generations(self, trace):
        columns = PacketColumns.from_packets(trace)
        stats = FlowStatsColumns.from_columns(columns, idle_timeout=0.2)
        # Every row appears exactly once, and each flow's slice is
        # timestamp-ordered with intra-flow gaps within the timeout.
        assert sorted(stats.order.tolist()) == list(range(len(columns)))
        for g in range(len(stats)):
            rows = stats.order[stats.bounds[g] : stats.bounds[g + 1]]
            times = columns.timestamps[rows]
            assert np.all(np.diff(times) >= 0)

    def test_packet_list_input_with_timeout(self, trace):
        columns = PacketColumns.from_packets(trace)
        assert np.array_equal(
            flow_feature_matrix(columns, idle_timeout=0.5),
            flow_feature_matrix(trace, idle_timeout=0.5),
        )


class TestTolerantRead:
    """``read_pcap_columns(errors="quarantine")`` — damaged captures.

    The tolerant mode's contract: the returned columns are bit-identical to
    a strict read of the clean prefix with the bad records excised, and every
    skipped record is reported as a :class:`PcapReadError` with its kind,
    record index and byte offset.  The strict default must raise exactly as
    before.
    """

    def test_errors_param_is_validated(self, capture_path):
        with pytest.raises(ValueError, match="errors must be"):
            read_pcap_columns(capture_path, errors="ignore")

    def test_clean_capture_round_trips_with_no_errors(self, capture_path):
        reference = read_pcap_columns(capture_path)
        columns, errors = read_pcap_columns(capture_path, errors="quarantine")
        assert errors == []
        assert_columns_equal(reference, columns)

    def test_truncated_record_yields_clean_prefix(self, capture_path, tmp_path):
        from repro.net import PcapReadError

        raw = capture_path.read_bytes()
        damaged = tmp_path / "cut.pcap"
        damaged.write_bytes(raw[:-5])  # the last record loses payload bytes
        with pytest.raises(ValueError, match="truncated mid-record"):
            read_pcap_columns(damaged)
        columns, errors = read_pcap_columns(damaged, errors="quarantine")
        full = read_pcap_columns(capture_path)
        assert_columns_equal(full[np.arange(len(full) - 1)], columns)
        assert len(errors) == 1
        assert isinstance(errors[0], PcapReadError)
        assert errors[0].kind == "truncated-record"
        assert errors[0].index == len(full) - 1

    def test_truncated_header_yields_all_records(self, capture_path, tmp_path):
        raw = capture_path.read_bytes()
        damaged = tmp_path / "tail.pcap"
        damaged.write_bytes(raw + b"\x07" * 8)  # a partial next record header
        with pytest.raises(ValueError, match="truncated record header"):
            read_pcap_columns(damaged)
        columns, errors = read_pcap_columns(damaged, errors="quarantine")
        assert_columns_equal(read_pcap_columns(capture_path), columns)
        assert [e.kind for e in errors] == ["truncated-header"]
        assert errors[0].offset == len(raw)

    @staticmethod
    def _splice_bad_record(raw: bytes, after_records: int) -> tuple[bytes, int]:
        """Insert an unparseable record after ``after_records`` records."""
        import struct

        header = struct.Struct("<IHHiIII")
        record = struct.Struct("<IIII")
        pos = header.size
        for _ in range(after_records):
            captured = record.unpack_from(raw, pos)[2]
            pos += record.size + captured
        bad = record.pack(0, 0, 4, 4) + b"\xde\xad\xbe\xef"  # < Ethernet size
        return raw[:pos] + bad + raw[pos:], pos

    def test_bad_record_is_excised(self, capture_path, tmp_path):
        raw = capture_path.read_bytes()
        spliced, offset = self._splice_bad_record(raw, after_records=3)
        damaged = tmp_path / "bad.pcap"
        damaged.write_bytes(spliced)
        with pytest.raises(ValueError):  # the fallback parser's error
            read_pcap_columns(damaged)
        columns, errors = read_pcap_columns(damaged, errors="quarantine")
        assert_columns_equal(read_pcap_columns(capture_path), columns)
        assert [e.kind for e in errors] == ["bad-record"]
        assert errors[0].index == 3
        assert errors[0].offset == offset

    def test_lazy_tolerant_read_matches_eager(self, capture_path, tmp_path):
        raw = capture_path.read_bytes()
        spliced, _ = self._splice_bad_record(raw, after_records=2)
        damaged = tmp_path / "bad_lazy.pcap"
        damaged.write_bytes(spliced)
        eager, _ = read_pcap_columns(damaged, errors="quarantine")
        lazy, errors = read_pcap_columns(
            damaged, errors="quarantine", lazy_decode=True
        )
        assert [e.kind for e in errors] == ["bad-record"]
        assert_columns_equal(eager, lazy)

    def test_replay_source_quarantine_mode(self, capture_path, tmp_path):
        from repro.serve import PcapReplaySource, chunk_columns

        raw = capture_path.read_bytes()
        damaged = tmp_path / "cut_replay.pcap"
        damaged.write_bytes(raw[:-5])
        source = PcapReplaySource(damaged, chunk_rows=7, errors="quarantine")
        chunks = list(source)
        assert [e.kind for e in source.errors] == ["truncated-record"]
        reference = read_pcap_columns(capture_path)
        clean = reference[np.arange(len(reference) - 1)]
        expected = list(chunk_columns(clean, 7))
        assert len(chunks) == len(expected)
        for got, want in zip(chunks, expected):
            assert np.array_equal(got.timestamps, want.timestamps)
            assert np.array_equal(got.payload_lengths, want.payload_lengths)
        strict = PcapReplaySource(damaged, chunk_rows=7)
        with pytest.raises(ValueError, match="truncated mid-record"):
            list(strict)
