"""Execute the usage examples embedded in module docstrings.

The README and docs point at these examples; running them as doctests keeps
them from rotting.  CI additionally runs this module through
``python -m pytest tests/test_doctests.py`` in the docs job.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

#: Modules whose docstring examples are part of the documented API surface.
DOCTESTED_MODULES = [
    "repro.net.packet",
    "repro.net.columns",
    "repro.tokenize.base",
    "repro.tokenize.vocab",
    "repro.tokenize.bpe",
    "repro.tokenize.field_aware",
    "repro.corpus.packets",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctests to run"
    assert results.failed == 0, f"{module_name}: {results.failed} doctest(s) failed"
