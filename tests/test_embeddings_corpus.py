"""Tests for embedding probes (neighbours, analogies, clusters, PCA) and the corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import (
    CorpusConfig,
    NetworkingCorpusGenerator,
    PROTOCOL_DEVICE,
    PROTOCOL_LAYER,
)
from repro.embeddings import (
    NETWORKING_ANALOGIES,
    Analogy,
    analogy_accuracy,
    cluster_purity,
    cosine_similarity,
    evaluate_grouping,
    group_separation,
    kmeans,
    nearest_neighbors,
    neighbor_rank,
    pca,
    project_embeddings,
    silhouette_score,
    similarity_matrix,
    solve_analogy,
)


def _structured_embeddings() -> dict[str, np.ndarray]:
    """Hand-built embeddings with perfect group and analogy structure."""
    base = {
        "king": np.array([1.0, 1.0, 0.0]),
        "queen": np.array([1.0, 0.0, 1.0]),
        "man": np.array([0.0, 1.0, 0.0]),
        "woman": np.array([0.0, 0.0, 1.0]),
        "apple": np.array([-1.0, -1.0, -1.0]),
    }
    return base


class TestNeighbors:
    def test_cosine_similarity_bounds_and_zero(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [-1, 0]) == pytest.approx(-1.0)
        assert cosine_similarity([0, 0], [1, 0]) == 0.0

    def test_nearest_neighbors_and_rank(self):
        embeddings = _structured_embeddings()
        neighbors = nearest_neighbors(embeddings, "king", k=2)
        assert neighbors[0][0] in ("queen", "man")
        assert neighbor_rank(embeddings, "king", "apple") == len(embeddings) - 1
        with pytest.raises(KeyError):
            nearest_neighbors(embeddings, "missing")
        with pytest.raises(KeyError):
            neighbor_rank(embeddings, "king", "missing")

    def test_similarity_matrix_symmetric(self):
        tokens, matrix = similarity_matrix(_structured_embeddings())
        assert len(tokens) == matrix.shape[0] == matrix.shape[1]
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(matrix), np.ones(len(tokens)), atol=1e-12)


class TestAnalogies:
    def test_solve_analogy_king_queen(self):
        embeddings = _structured_embeddings()
        answers = solve_analogy(embeddings, "man", "king", "woman", k=1)
        assert answers[0][0] == "queen"

    def test_analogy_accuracy_with_skips(self):
        embeddings = _structured_embeddings()
        analogies = [
            Analogy("man", "king", "woman", "queen"),
            Analogy("bgp", "router", "stp", "switch"),  # tokens missing -> skipped
        ]
        result = analogy_accuracy(embeddings, analogies)
        assert result["evaluated"] == 1
        assert result["accuracy"] == pytest.approx(1.0)
        assert len(result["skipped"]) == 1

    def test_missing_token_raises(self):
        with pytest.raises(KeyError):
            solve_analogy(_structured_embeddings(), "man", "king", "ghost")

    def test_networking_analogy_catalogue_well_formed(self):
        assert len(NETWORKING_ANALOGIES) >= 5
        for analogy in NETWORKING_ANALOGIES:
            assert analogy.a != analogy.expected


class TestClusters:
    def _grouped_matrix(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(10, 4)) + np.array([5, 0, 0, 0])
        b = rng.normal(0.0, 0.1, size=(10, 4)) + np.array([0, 5, 0, 0])
        return np.concatenate([a, b]), np.array([0] * 10 + [1] * 10)

    def test_silhouette_high_for_separated_clusters(self):
        matrix, labels = self._grouped_matrix()
        assert silhouette_score(matrix, labels) > 0.8
        with pytest.raises(ValueError):
            silhouette_score(matrix, np.zeros(20))

    def test_kmeans_and_purity(self):
        matrix, labels = self._grouped_matrix()
        assignment = kmeans(matrix, 2, rng=np.random.default_rng(0))
        assert cluster_purity(assignment, labels) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            kmeans(matrix, 0)

    def test_group_separation_gap_positive(self):
        matrix, labels = self._grouped_matrix()
        separation = group_separation(matrix, labels)
        assert separation["gap"] > 0.5

    def test_evaluate_grouping_handles_missing_tokens(self):
        embeddings = {"a1": np.array([1.0, 0.0]), "a2": np.array([0.9, 0.1]),
                      "b1": np.array([0.0, 1.0]), "b2": np.array([0.1, 0.9])}
        groups = {"a": ["a1", "a2", "a-missing"], "b": ["b1", "b2"]}
        result = evaluate_grouping(embeddings, groups)
        assert result["purity"] == pytest.approx(1.0)
        assert result["coverage"] == pytest.approx(4 / 5)
        degenerate = evaluate_grouping({"x": np.ones(2)}, {"only": ["x"]})
        assert degenerate["purity"] == 0.0


class TestPCA:
    def test_pca_shapes_and_variance(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(50, 6)) @ np.diag([5, 3, 1, 0.1, 0.1, 0.1])
        projected, ratio = pca(matrix, components=2)
        assert projected.shape == (50, 2)
        assert ratio[0] >= ratio[1] > 0
        with pytest.raises(ValueError):
            pca(matrix, components=0)

    def test_project_embeddings(self):
        embeddings = {f"t{i}": np.random.default_rng(i).normal(size=5) for i in range(8)}
        projected = project_embeddings(embeddings, components=2)
        assert set(projected) == set(embeddings)
        assert all(v.shape == (2,) for v in projected.values())


class TestCorpus:
    def test_corpus_size_and_tokenization(self):
        sentences = NetworkingCorpusGenerator(CorpusConfig(seed=0, num_sentences=200)).generate()
        assert len(sentences) == 200
        assert all(isinstance(s, list) and s for s in sentences)
        assert all(token == token.lower() for s in sentences for token in s)

    def test_corpus_mentions_relations(self):
        sentences = NetworkingCorpusGenerator(CorpusConfig(seed=1, num_sentences=800)).generate()
        flattened = [token for sentence in sentences for token in sentence]
        for protocol, device in list(PROTOCOL_DEVICE.items())[:4]:
            assert protocol in flattened
            assert device in flattened
        for protocol in list(PROTOCOL_LAYER)[:4]:
            assert protocol in flattened

    def test_corpus_deterministic(self):
        a = NetworkingCorpusGenerator(CorpusConfig(seed=5, num_sentences=50)).generate()
        b = NetworkingCorpusGenerator(CorpusConfig(seed=5, num_sentences=50)).generate()
        assert a == b

    def test_tokenize_strips_punctuation(self):
        assert NetworkingCorpusGenerator.tokenize("BGP, runs; on (routers)!") == [
            "bgp", "runs", "on", "routers",
        ]
