"""Determinism guarantees for the synthetic data substrate.

Every downstream number in this repository (benchmarks, OOD sweeps, the
throughput suite) assumes that the corpus and traffic generators are pure
functions of their configuration: same seed, same bytes.  These tests hash
the generated artifacts so a regression in any generator's RNG discipline
fails loudly rather than silently shifting benchmark results.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.corpus import CorpusConfig, NetworkingCorpusGenerator
from repro.traffic import (
    AttackConfig,
    AttackGenerator,
    DNSWorkloadConfig,
    DNSWorkloadGenerator,
    EnterpriseScenario,
    EnterpriseScenarioConfig,
    HTTPWorkloadConfig,
    HTTPWorkloadGenerator,
    IoTWorkloadConfig,
    IoTWorkloadGenerator,
)


def corpus_digest(sentences: list[list[str]]) -> str:
    joined = "\n".join(" ".join(sentence) for sentence in sentences)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def trace_digest(packets) -> str:
    digest = hashlib.sha256()
    for packet in packets:
        digest.update(packet.to_bytes())
    return digest.hexdigest()


def label_digest(packets, key: str) -> str:
    joined = "|".join(str(p.metadata.get(key)) for p in packets)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


class TestCorpusDeterminism:
    def test_same_seed_same_sentences(self):
        config = CorpusConfig(seed=42, num_sentences=300)
        first = NetworkingCorpusGenerator(config).generate()
        second = NetworkingCorpusGenerator(config).generate()
        assert corpus_digest(first) == corpus_digest(second)

    def test_different_seed_different_sentences(self):
        first = NetworkingCorpusGenerator(CorpusConfig(seed=1, num_sentences=300)).generate()
        second = NetworkingCorpusGenerator(CorpusConfig(seed=2, num_sentences=300)).generate()
        assert corpus_digest(first) != corpus_digest(second)

    def test_different_size_class_different_corpus(self):
        small = NetworkingCorpusGenerator(CorpusConfig(seed=1, num_sentences=100)).generate()
        large = NetworkingCorpusGenerator(CorpusConfig(seed=1, num_sentences=400)).generate()
        assert len(small) == 100 and len(large) == 400
        assert corpus_digest(small) != corpus_digest(large)


GENERATORS = {
    "dns": lambda seed, scale: DNSWorkloadGenerator(
        DNSWorkloadConfig(seed=seed, num_clients=4 * scale, queries_per_client=5, duration=15.0)
    ),
    "http": lambda seed, scale: HTTPWorkloadGenerator(
        HTTPWorkloadConfig(seed=seed, num_sessions=6 * scale, duration=15.0)
    ),
    "iot": lambda seed, scale: IoTWorkloadGenerator(
        IoTWorkloadConfig(seed=seed, devices_per_type=scale, duration=15.0)
    ),
    "attack": lambda seed, scale: AttackGenerator(
        AttackConfig(seed=seed, duration=10.0, events_per_attack=scale)
    ),
}


class TestTrafficDeterminism:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_same_seed_identical_byte_hashes(self, name):
        build = GENERATORS[name]
        first = build(7, 1).generate()
        second = build(7, 1).generate()
        assert first, f"{name}: generator produced no packets"
        assert trace_digest(first) == trace_digest(second)
        assert [p.timestamp for p in first] == [p.timestamp for p in second]

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_different_seed_different_byte_hashes(self, name):
        build = GENERATORS[name]
        assert trace_digest(build(7, 1).generate()) != trace_digest(build(8, 1).generate())

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_different_size_class_different_byte_hashes(self, name):
        build = GENERATORS[name]
        small = build(7, 1).generate()
        large = build(7, 2).generate()
        assert len(small) != len(large)
        assert trace_digest(small) != trace_digest(large)


class TestScenarioDeterminism:
    def _config(self, seed: int) -> EnterpriseScenarioConfig:
        return EnterpriseScenarioConfig(
            seed=seed, duration=12.0, dns_clients=3, dns_queries_per_client=4,
            http_sessions=5, tls_sessions=5, iot_devices_per_type=1,
        )

    def test_same_seed_identical_scenario(self):
        first = EnterpriseScenario(self._config(3)).generate()
        second = EnterpriseScenario(self._config(3)).generate()
        assert trace_digest(first) == trace_digest(second)
        assert label_digest(first, "application") == label_digest(second, "application")

    def test_different_seed_different_scenario(self):
        first = EnterpriseScenario(self._config(3)).generate()
        second = EnterpriseScenario(self._config(4)).generate()
        assert trace_digest(first) != trace_digest(second)
