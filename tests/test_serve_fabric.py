"""The parallel serving fabric (`repro.serve.fabric`) — differential validation.

The fabric's contract is *bit-identity as a multiset*: for any chunk size,
shard count and worker count, ``serve_stream(..., workers=k)`` must serve
exactly the flows the single-threaded path serves — same encoded contexts,
labels, generations, timestamps and close reasons, and logits identical to
the last bit — only the arrival order may differ.  The harness checks that
differentially, per scenario: every fabric run is compared against the
synchronous path on the same stream *and* against the offline reference
(:meth:`~repro.context.builders.FlowContextBuilder.encode_columns` plus the
batched solver forward), over a sweep of chunk sizes {1, k, n} × workers
{1, 2, 4} × traffic scenarios (DNS, HTTP, TLS, attack, enterprise mix),
plus a seeded out-of-order/burst arrival case.

The backpressure half gates the pipeline mechanics: bounded queues never
exceed their bounds under a slow model, shutdown drains cleanly, and a
failing stage propagates its exception to the caller instead of hanging.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.context import FlowContextBuilder
from repro.core import NetFMConfig, NetFoundationModel, SequenceClassifier
from repro.net import PacketColumns, build_packet
from repro.serve import (
    ColumnsSource,
    InferenceEngine,
    PredictionCache,
    ServingFabric,
    ShardedAssembler,
    StreamingFlowAssembler,
    burst_chunks,
    chunk_columns,
    interleave_columns,
    serve_stream,
)
from repro.nn.numeric import assert_within_ulp, ulp_budget
from repro.tokenize import FieldAwareTokenizer, Vocabulary
from repro.traffic import (
    AttackConfig,
    AttackGenerator,
    DNSWorkloadConfig,
    DNSWorkloadGenerator,
    EnterpriseScenario,
    EnterpriseScenarioConfig,
    HTTPWorkloadConfig,
    HTTPWorkloadGenerator,
    TLSWorkloadConfig,
    TLSWorkloadGenerator,
)

MAX_TOKENS = 64

SCENARIOS = {
    "dns": lambda: DNSWorkloadGenerator(
        DNSWorkloadConfig(seed=1, duration=8.0, num_clients=5, queries_per_client=6)
    ),
    "http": lambda: HTTPWorkloadGenerator(
        HTTPWorkloadConfig(seed=2, duration=8.0, num_sessions=8, requests_per_session=2)
    ),
    "tls": lambda: TLSWorkloadGenerator(
        TLSWorkloadConfig(seed=3, duration=8.0, num_sessions=10)
    ),
    "attack": lambda: AttackGenerator(
        AttackConfig(
            seed=4, duration=8.0, scan_ports=20, flood_packets=25,
            tunnel_queries=12, beacon_count=10, brute_force_attempts=15,
        )
    ),
    "enterprise": lambda: EnterpriseScenario(
        EnterpriseScenarioConfig(
            seed=6, duration=12.0, dns_clients=4, dns_queries_per_client=5,
            http_sessions=6, tls_sessions=6, iot_devices_per_type=1,
        )
    ),
}


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def scenario(request):
    """One scenario's capture plus its full offline reference."""
    columns = SCENARIOS[request.param]().generate_columns()
    tokenizer = FieldAwareTokenizer()
    builder = FlowContextBuilder(max_tokens=MAX_TOKENS)
    contexts = builder.build(columns.to_packets(), tokenizer)
    vocabulary = Vocabulary.build([c.tokens for c in contexts])
    ids, mask, labels = builder.encode_columns(
        columns, tokenizer, vocabulary, return_labels=True
    )
    config = NetFMConfig(
        vocab_size=len(vocabulary), d_model=32, num_layers=2, num_heads=4,
        d_ff=64, max_len=MAX_TOKENS, dropout=0.0, seed=0,
    )
    classifier = SequenceClassifier(NetFoundationModel(config), num_classes=4)
    offline_logits = classifier.predict_logits(ids, mask)
    return {
        "name": request.param,
        "columns": columns,
        "tokenizer": tokenizer,
        "vocabulary": vocabulary,
        "ids": ids,
        "mask": mask,
        "labels": labels,
        "classifier": classifier,
        "offline_logits": offline_logits,
    }


def make_assembler(scn, **kwargs):
    return StreamingFlowAssembler(
        scn["tokenizer"], scn["vocabulary"],
        builder=FlowContextBuilder(max_tokens=MAX_TOKENS), **kwargs,
    )


def make_engine(scn, classifier=None, **kwargs):
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("cache", PredictionCache())
    return InferenceEngine(classifier or scn["classifier"], **kwargs)


def run_serve(scn, source, workers=None, idle_timeout=0.0, engine=None, **options):
    assembler = make_assembler(scn, idle_timeout=idle_timeout)
    engine = engine or make_engine(scn)
    return list(serve_stream(source, assembler, engine, workers=workers, **options))


def prediction_key(p):
    """Everything the bit-identity contract covers, hashable."""
    return (
        str(p.record.key), p.record.generation,
        p.record.token_ids.tobytes(), p.record.attention_mask.tobytes(),
        p.record.label, p.record.packet_count,
        p.record.start_time, p.record.end_time, p.record.closed_by,
        p.logits.tobytes(),
    )


def record_key(r):
    return (
        str(r.key), r.generation, r.token_ids.tobytes(),
        r.attention_mask.tobytes(), r.label, r.packet_count,
        r.start_time, r.end_time, r.closed_by,
    )


# Sync references are deterministic per (scenario, chunk, idle) — computed
# once and shared across the worker-count sweep.
_SYNC_CACHE: dict = {}


def sync_reference(scn, chunk_rows, idle_timeout=0.0):
    cache_key = (scn["name"], chunk_rows, idle_timeout)
    if cache_key not in _SYNC_CACHE:
        predictions = run_serve(
            scn, ColumnsSource(scn["columns"], chunk_rows=chunk_rows),
            idle_timeout=idle_timeout,
        )
        _SYNC_CACHE[cache_key] = sorted(prediction_key(p) for p in predictions)
    return _SYNC_CACHE[cache_key]


class TestDifferentialScenarioSweep:
    """Fabric == sync path == offline reference, per scenario."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_rows", [1, 13, None])
    def test_fabric_matches_sync_bitwise(self, scenario, chunk_rows, workers):
        columns = scenario["columns"]
        chunk_rows = chunk_rows or len(columns)
        reference = sync_reference(scenario, chunk_rows)
        predictions = run_serve(
            scenario, ColumnsSource(columns, chunk_rows=chunk_rows), workers=workers
        )
        assert sorted(prediction_key(p) for p in predictions) == reference

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fabric_matches_sync_under_timeouts(self, scenario, workers):
        # Timeout eviction happens mid-stream, across the clock broadcast.
        reference = sync_reference(scenario, 13, idle_timeout=0.2)
        predictions = run_serve(
            scenario, ColumnsSource(scenario["columns"], chunk_rows=13),
            workers=workers, idle_timeout=0.2,
        )
        assert sorted(prediction_key(p) for p in predictions) == reference

    @pytest.mark.parametrize("workers", [2, 4])
    def test_fabric_matches_offline_reference(self, scenario, workers):
        # Without timeouts every flow closes at flush, so the served multiset
        # must be exactly the offline encode_columns rows — and each row's
        # logits must match the offline batched solver forward.
        ids, mask, labels = scenario["ids"], scenario["mask"], scenario["labels"]
        offline = sorted(
            (ids[row].tobytes(), mask[row].tobytes(), labels[row])
            for row in range(len(ids))
        )
        by_content = {}
        for row in range(len(ids)):
            by_content.setdefault(
                (ids[row].tobytes(), mask[row].tobytes(), labels[row]),
                scenario["offline_logits"][row],
            )
        predictions = run_serve(
            scenario, ColumnsSource(scenario["columns"], chunk_rows=13),
            workers=workers,
        )
        served = sorted(
            (p.record.token_ids.tobytes(), p.record.attention_mask.tobytes(),
             p.record.label)
            for p in predictions
        )
        assert served == offline
        for p in predictions:
            content = (
                p.record.token_ids.tobytes(),
                p.record.attention_mask.tobytes(), p.record.label,
            )
            np.testing.assert_allclose(
                p.logits, by_content[content], rtol=0, atol=1e-10
            )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_out_of_order_burst_arrival(self, scenario, workers):
        # Seeded multi-queue-tap shape: flows interleaved out of global
        # capture order (per-flow order kept), delivered in variable-size
        # bursts.  The fabric must still match both the sync path on the
        # same arrival and the offline reference for the arrived stream.
        shuffled = interleave_columns(scenario["columns"], seed=7)
        bursts = list(burst_chunks(shuffled, 17, seed=3))
        reference = run_serve(scenario, bursts)
        predictions = run_serve(scenario, bursts, workers=workers)
        assert (
            sorted(prediction_key(p) for p in predictions)
            == sorted(prediction_key(p) for p in reference)
        )
        ids, mask, labels = FlowContextBuilder(max_tokens=MAX_TOKENS).encode_columns(
            shuffled, scenario["tokenizer"], scenario["vocabulary"],
            return_labels=True,
        )
        assert (
            sorted((p.record.token_ids.tobytes(), p.record.label)
                   for p in predictions)
            == sorted((ids[row].tobytes(), labels[row]) for row in range(len(ids)))
        )

    @pytest.mark.parametrize("options", [
        {"replicate_model": False},
        {"shards": 3},
        {"cacheless": True},
    ])
    def test_fabric_modes_match_sync(self, scenario, options):
        # Shared-classifier-behind-a-lock, shards != workers, and no-cache
        # configurations all keep the multiset contract.
        options = dict(options)
        cacheless = options.pop("cacheless", False)
        engine = make_engine(scenario, cache=None) if cacheless else None
        sync = run_serve(
            scenario, ColumnsSource(scenario["columns"], chunk_rows=13),
            engine=make_engine(scenario, cache=None) if cacheless else None,
        )
        predictions = run_serve(
            scenario, ColumnsSource(scenario["columns"], chunk_rows=13),
            workers=2, engine=engine, **options,
        )
        assert (
            sorted(prediction_key(p) for p in predictions)
            == sorted(prediction_key(p) for p in sync)
        )


class TestFloat32ServingParity:
    """The float32 serving build vs the float64 reference, per scenario.

    The relaxed-ulp policy's serving acceptance (repro.nn.numeric): on
    every E14 scenario the f32 engine must produce *identical* class
    predictions and an *identical* cache-hit pattern, with logits inside
    the documented ``logits`` ulp budget of the f64 reference.
    """

    def test_f32_engine_matches_f64_reference(self, scenario):
        source = lambda: ColumnsSource(scenario["columns"], chunk_rows=13)
        p64 = run_serve(scenario, source(), engine=make_engine(scenario))
        p32 = run_serve(
            scenario, source(),
            engine=make_engine(scenario, serve_dtype="float32"),
        )
        identity = lambda p: (str(p.record.key), p.record.generation)
        assert [identity(p) for p in p32] == [identity(p) for p in p64]
        assert [p.class_id for p in p32] == [p.class_id for p in p64]
        assert [p.cached for p in p32] == [p.cached for p in p64]
        budget = ulp_budget("logits")
        for ours, theirs in zip(p32, p64):
            assert ours.logits.dtype == np.float32
            assert_within_ulp(
                ours.logits, theirs.logits, budget,
                f"{scenario['name']} logits for flow {ours.record.key}",
            )

    def test_fabric_workers_serve_the_f32_build(self, scenario):
        engine = make_engine(scenario, serve_dtype="float32")
        predictions = run_serve(
            scenario, ColumnsSource(scenario["columns"], chunk_rows=13),
            workers=2, engine=engine,
        )
        assert all(p.logits.dtype == np.float32 for p in predictions)
        # The fabric's merged report keeps the build's numeric provenance.
        assert engine.report.model_dtype == "float32"
        assert engine.report.numeric_policy == "relaxed-ulp-f32"


class TestShardedAssembler:
    """The hash-bucketing stage on its own (no threads)."""

    def test_shard_assignment_is_chunk_invariant(self, scenario):
        # The shard of a row is a pure function of its flow key, so the
        # assignment cannot depend on how the stream was chunked.
        template = make_assembler(scenario)
        sharded = ShardedAssembler.from_template(template, 4)
        columns = scenario["columns"]
        whole = sharded.shard_rows(columns)
        for chunk_rows in (1, 13, 50):
            parts = [
                sharded.shard_rows(chunk)
                for chunk in chunk_columns(columns, chunk_rows)
            ]
            assert np.array_equal(np.concatenate(parts), whole)

    def test_int_and_digit_string_ids_share_a_shard(self, scenario):
        # connection_id 5 and connection_id "5" group under the same key
        # ("conn-5"), so they must land on the same shard — one key can
        # never hash through two domains.
        sharded = ShardedAssembler.from_template(make_assembler(scenario), 4)
        packets = [
            build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80,
                         metadata={"connection_id": 5}),
            build_packet(0.1, "10.0.0.1", "10.0.0.2", "TCP", 1111, 80,
                         metadata={"connection_id": "5"}),
            build_packet(0.2, "10.0.0.3", "10.0.0.4", "UDP", 2222, 53,
                         metadata={"connection_id": "05"}),
            build_packet(0.3, "10.0.0.5", "10.0.0.6", "UDP", 2223, 53),
        ]
        shards = sharded.shard_rows(PacketColumns.from_packets(packets))
        assert shards[0] == shards[1]
        assert all(0 <= s < 4 for s in shards)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_eviction_parity_with_single_assembler(self, scenario, shards):
        # Same records, same generations, same closed_by reasons: the
        # stream-clock broadcast keeps every shard's idle eviction on the
        # global clock, not its own sub-stream's.
        columns = scenario["columns"]
        single = make_assembler(scenario, idle_timeout=0.2)
        sharded = ShardedAssembler.from_template(
            make_assembler(scenario, idle_timeout=0.2), shards
        )
        reference, records = [], []
        for chunk in chunk_columns(columns, 13):
            reference.extend(single.push(chunk))
            records.extend(sharded.push(chunk))
        reference.extend(single.flush())
        records.extend(sharded.flush())
        assert sorted(map(record_key, records)) == sorted(map(record_key, reference))
        assert len(sharded) == 0

    def test_open_flow_accounting(self, scenario):
        columns = scenario["columns"]
        single = make_assembler(scenario)
        sharded = ShardedAssembler.from_template(make_assembler(scenario), 4)
        for chunk in chunk_columns(columns, 50):
            single.push(chunk)
            sharded.push(chunk)
            assert len(sharded) == len(single)
        sharded.flush()
        assert len(sharded) == 0

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            ShardedAssembler([])
        with pytest.raises(ValueError):
            ShardedAssembler.from_template(make_assembler(scenario), 0)


class _SlowClassifier:
    """Delegates to a real classifier after a per-forward delay."""

    def __init__(self, classifier, delay=0.002):
        self.classifier = classifier
        self.delay = delay

    def predict_logits(self, ids, mask, batch_size=32):
        time.sleep(self.delay)
        return self.classifier.predict_logits(ids, mask, batch_size=batch_size)


class _FailingClassifier:
    def predict_logits(self, ids, mask, batch_size=32):
        raise RuntimeError("model fell over")


class TestBackpressureAndShutdown:
    """Bounded queues, clean drain, exception propagation."""

    def test_queue_depths_stay_within_bounds_under_slow_engine(self, scenario):
        bounds = {"chunk_queue": 2, "record_queue": 4, "output_queue": 8}
        fabric = ServingFabric(
            ColumnsSource(scenario["columns"], chunk_rows=13),
            make_assembler(scenario),
            make_engine(
                scenario, classifier=_SlowClassifier(scenario["classifier"])
            ),
            workers=2, **bounds,
        )
        predictions = list(fabric)
        reference = sync_reference(scenario, 13)
        assert sorted(prediction_key(p) for p in predictions) == reference
        queues = fabric.summary().get("queues", {})
        assert queues, "fabric should sample queue depths"
        assert queues["chunks"]["max_depth"] <= bounds["chunk_queue"]
        for worker in range(2):
            stage = f"records[{worker}]"
            if stage in queues:
                assert queues[stage]["max_depth"] <= bounds["record_queue"]

    def test_clean_drain_and_worker_accounting(self, scenario):
        fabric = ServingFabric(
            ColumnsSource(scenario["columns"], chunk_rows=13),
            make_assembler(scenario), make_engine(scenario), workers=2,
        )
        predictions = list(fabric)
        for thread in fabric._threads:
            assert not thread.is_alive()
        for engine in fabric.engines:
            assert engine.pending == 0
        summary = fabric.summary()
        assert summary["flows"] == len(predictions)
        workers = summary["workers"]
        assert set(workers) == {"worker[0]", "worker[1]"}
        assert sum(stats["flows"] for stats in workers.values()) == len(predictions)
        for stats in workers.values():
            assert 0.0 <= stats["utilization"] <= 1.0
        assert 0.0 <= summary["cache_hit_rate"] <= 1.0

    def test_early_consumer_close_does_not_hang(self, scenario):
        fabric = ServingFabric(
            ColumnsSource(scenario["columns"], chunk_rows=1),
            make_assembler(scenario), make_engine(scenario),
            workers=2, output_queue=2,
        )
        iterator = iter(fabric)
        next(iterator)
        iterator.close()
        deadline = time.monotonic() + 10.0
        for thread in fabric._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not thread.is_alive()

    def test_worker_exception_propagates(self, scenario):
        fabric = ServingFabric(
            ColumnsSource(scenario["columns"], chunk_rows=13),
            make_assembler(scenario),
            make_engine(scenario, classifier=_FailingClassifier()),
            workers=2,
        )
        with pytest.raises(RuntimeError, match="model fell over"):
            list(fabric)
        for thread in fabric._threads:
            assert not thread.is_alive()

    def test_source_exception_propagates(self, scenario):
        def broken_source():
            yield from chunk_columns(scenario["columns"][:30], 13)
            raise OSError("tap went away")

        fabric = ServingFabric(
            broken_source(), make_assembler(scenario), make_engine(scenario),
            workers=2,
        )
        with pytest.raises(OSError, match="tap went away"):
            list(fabric)

    def test_fabric_validation(self, scenario):
        source = ColumnsSource(scenario["columns"])
        with pytest.raises(ValueError):
            ServingFabric(source, make_assembler(scenario), make_engine(scenario),
                          workers=0)
        with pytest.raises(ValueError):
            ServingFabric(source, make_assembler(scenario), make_engine(scenario),
                          workers=2, chunk_queue=0)
        with pytest.raises(TypeError):
            ServingFabric(source, object(), make_engine(scenario), workers=2)
        fabric = ServingFabric(
            source, make_assembler(scenario), make_engine(scenario), workers=1
        )
        list(fabric)
        with pytest.raises(RuntimeError):
            list(fabric)

    def test_thread_count_is_bounded(self, scenario):
        # source + assembly + k workers, no stragglers left behind.
        before = threading.active_count()
        predictions = run_serve(
            scenario, ColumnsSource(scenario["columns"], chunk_rows=13), workers=4
        )
        assert predictions
        assert threading.active_count() == before
