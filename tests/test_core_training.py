"""Tests for fine-tuning, few-shot adaptation, representations and the pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import FlowContextBuilder, encode_contexts
from repro.core import (
    FinetuneConfig,
    LabelEncoder,
    NetFMConfig,
    NetFMPipeline,
    NetFoundationModel,
    PretrainingConfig,
    PrototypeClassifier,
    SequenceClassifier,
    contextual_token_embeddings,
    few_shot_episode,
    input_token_embeddings,
    sequence_embeddings,
)
from repro.tokenize import FieldAwareTokenizer, Vocabulary


def tiny_config(vocab_size: int, max_len: int = 48) -> NetFMConfig:
    return NetFMConfig(
        vocab_size=vocab_size, d_model=16, num_layers=1, num_heads=2, d_ff=32,
        max_len=max_len, dropout=0.0, seed=0,
    )


@pytest.fixture(scope="module")
def labelled_dataset(small_mixed_trace_module):
    trace = small_mixed_trace_module
    tokenizer = FieldAwareTokenizer()
    builder = FlowContextBuilder(max_tokens=48, label_key="application")
    contexts = [c for c in builder.build(trace, tokenizer) if c.label is not None]
    vocab = Vocabulary.build([c.tokens for c in contexts])
    encoder = LabelEncoder([c.label for c in contexts])
    ids, mask = encode_contexts(contexts, vocab, 48)
    labels = encoder.encode([c.label for c in contexts])
    return contexts, vocab, encoder, ids, mask, labels


@pytest.fixture(scope="module")
def small_mixed_trace_module():
    from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig

    config = EnterpriseScenarioConfig(
        seed=3, duration=15.0, dns_clients=4, dns_queries_per_client=6,
        http_sessions=8, tls_sessions=10, iot_devices_per_type=1,
    )
    return EnterpriseScenario(config).generate()


class TestLabelEncoder:
    def test_roundtrip_and_unknown(self):
        encoder = LabelEncoder(["b", "a", "b"])
        assert encoder.classes == ["a", "b"]
        assert encoder.decode(encoder.encode(["a", "b"])) == ["a", "b"]
        assert encoder.num_classes == 2
        with pytest.raises(KeyError):
            encoder.encode(["c"])


class TestSequenceClassifier:
    def test_finetuning_beats_majority_class(self, labelled_dataset):
        _, vocab, encoder, ids, mask, labels = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        classifier = SequenceClassifier(
            model, encoder.num_classes, FinetuneConfig(epochs=4, batch_size=16, seed=0)
        )
        classifier.fit(ids, mask, labels)
        metrics = classifier.evaluate(ids, mask, labels)
        majority = max(np.bincount(labels)) / len(labels)
        assert metrics["accuracy"] > majority
        assert 0.0 <= metrics["f1"] <= 1.0
        probabilities = classifier.predict_proba(ids[:5], mask[:5])
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_freeze_encoder_only_trains_head(self, labelled_dataset):
        _, vocab, encoder, ids, mask, labels = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        before = model.token_embedding.weight.data.copy()
        classifier = SequenceClassifier(
            model, encoder.num_classes,
            FinetuneConfig(epochs=1, batch_size=16, freeze_encoder=True),
        )
        classifier.fit(ids[:32], mask[:32], labels[:32])
        np.testing.assert_allclose(model.token_embedding.weight.data, before)

    def test_eval_during_training_recorded(self, labelled_dataset):
        _, vocab, encoder, ids, mask, labels = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        classifier = SequenceClassifier(model, encoder.num_classes,
                                        FinetuneConfig(epochs=2, batch_size=16))
        history = classifier.fit(ids[:32], mask[:32], labels[:32],
                                 eval_data=(ids[:16], mask[:16], labels[:16]))
        assert len(history.eval_metrics) == 2


class TestFewShot:
    def test_prototype_classifier(self, labelled_dataset):
        _, vocab, encoder, ids, mask, labels = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        rng = np.random.default_rng(0)
        support, query = few_shot_episode(labels, shots=3, rng=rng)
        assert len(set(support.tolist()) & set(query.tolist())) == 0
        classifier = PrototypeClassifier(model).fit(ids[support], mask[support], labels[support])
        metrics = classifier.evaluate(ids[query], mask[query], labels[query])
        assert 0.0 <= metrics["accuracy"] <= 1.0
        euclid = PrototypeClassifier(model, metric="euclidean").fit(
            ids[support], mask[support], labels[support]
        )
        assert euclid.predict(ids[query][:4], mask[query][:4]).shape == (4,)

    def test_predict_before_fit_raises(self, labelled_dataset):
        _, vocab, _, ids, mask, _ = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        with pytest.raises(RuntimeError):
            PrototypeClassifier(model).predict(ids[:2], mask[:2])

    def test_unknown_metric(self, labelled_dataset):
        _, vocab, _, _, _, _ = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        with pytest.raises(ValueError):
            PrototypeClassifier(model, metric="manhattan")


class TestRepresentations:
    def test_input_and_contextual_embeddings(self, labelled_dataset):
        contexts, vocab, _, _, _, _ = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        static = input_token_embeddings(model, vocab)
        assert len(static) == len(vocab)
        contextual = contextual_token_embeddings(model, contexts[:20], vocab)
        assert contextual
        for vector in list(contextual.values())[:3]:
            assert vector.shape == (16,)
        # Special tokens are excluded from contextual embeddings.
        assert "[PAD]" not in contextual

    def test_sequence_embeddings_poolings(self, labelled_dataset):
        contexts, vocab, _, _, _, _ = labelled_dataset
        model = NetFoundationModel(tiny_config(len(vocab)))
        cls = sequence_embeddings(model, contexts[:10], vocab, pooling="cls")
        mean = sequence_embeddings(model, contexts[:10], vocab, pooling="mean")
        assert cls.shape == (10, 16) and mean.shape == (10, 16)
        assert not np.allclose(cls, mean)
        with pytest.raises(ValueError):
            sequence_embeddings(model, contexts[:2], vocab, pooling="max")


class TestPipeline:
    def test_end_to_end_pretrain_finetune(self, small_mixed_trace_module):
        trace = small_mixed_trace_module
        pipeline = NetFMPipeline(
            context_builder=FlowContextBuilder(max_tokens=32, label_key="application"),
            model_config=NetFMConfig(d_model=16, num_layers=1, num_heads=2, d_ff=32,
                                     max_len=32, dropout=0.0),
            pretrain_config=PretrainingConfig(epochs=1, batch_size=16),
            finetune_config=FinetuneConfig(epochs=2, batch_size=16),
        )
        contexts, history = pipeline.pretrain(trace)
        assert contexts and history.losses
        result = pipeline.finetune(trace, eval_packets=trace)
        assert "f1" in result.metrics
        assert result.metrics["f1"] > 0.3
        few_shot = pipeline.few_shot(trace, trace)
        assert 0.0 <= few_shot["accuracy"] <= 1.0

    def test_pipeline_ordering_enforced(self, small_mixed_trace_module):
        pipeline = NetFMPipeline()
        with pytest.raises(RuntimeError):
            pipeline.build_model()
        with pytest.raises(RuntimeError):
            pipeline.finetune(small_mixed_trace_module)
        with pytest.raises(RuntimeError):
            pipeline.encode_labelled(small_mixed_trace_module)
