"""Tests for OOD detection and interpretability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import Context, FlowContextBuilder, encode_contexts
from repro.core import FinetuneConfig, LabelEncoder, NetFMConfig, NetFoundationModel, SequenceClassifier
from repro.interpret import (
    attention_rollout,
    byte_region_superfields,
    cls_attention,
    deletion_score,
    faithfulness_gap,
    field_superfields,
    grouped_occlusion_saliency,
    integrated_gradients,
    occlusion_saliency,
    packet_superfields,
    random_deletion_score,
)
from repro.ood import (
    EnergyDetector,
    EnsembleDisagreementDetector,
    KNNDistanceDetector,
    MahalanobisDetector,
    MaxSoftmaxDetector,
    ZeroDayScenario,
    detection_report,
    evaluate_scores,
)
from repro.tokenize import FieldAwareTokenizer, Vocabulary


class TestOODDetectors:
    def _gaussian_features(self, seed=0):
        rng = np.random.default_rng(seed)
        in_dist = rng.normal(0.0, 1.0, size=(200, 8))
        out_dist = rng.normal(4.0, 1.0, size=(80, 8))
        labels = rng.integers(0, 3, size=200)
        return in_dist, out_dist, labels

    def test_mahalanobis_separates(self):
        in_dist, out_dist, labels = self._gaussian_features()
        detector = MahalanobisDetector().fit(in_dist, labels)
        metrics = evaluate_scores(detector.score(in_dist), detector.score(out_dist))
        assert metrics["auroc"] > 0.95
        with pytest.raises(RuntimeError):
            MahalanobisDetector().score(in_dist)

    def test_knn_detector_separates(self):
        in_dist, out_dist, _ = self._gaussian_features(1)
        detector = KNNDistanceDetector(k=3).fit(in_dist)
        metrics = evaluate_scores(detector.score(in_dist), detector.score(out_dist))
        assert metrics["auroc"] > 0.95
        with pytest.raises(ValueError):
            KNNDistanceDetector(k=0)

    def test_max_softmax_and_energy(self):
        confident = np.array([[0.98, 0.01, 0.01], [0.9, 0.05, 0.05]])
        uncertain = np.array([[0.4, 0.3, 0.3]])
        detector = MaxSoftmaxDetector()
        assert detector.score(uncertain)[0] > detector.score(confident).max()
        with pytest.raises(ValueError):
            detector.score(np.zeros(3))
        energies = EnergyDetector().score(np.array([[10.0, 0.0], [0.1, 0.0]]))
        assert energies[0] < energies[1]  # larger logits -> lower energy -> less OOD
        with pytest.raises(ValueError):
            EnergyDetector(temperature=0.0)

    def test_ensemble_disagreement(self):
        agree = np.stack([np.array([[0.9, 0.1]]), np.array([[0.88, 0.12]])])
        disagree = np.stack([np.array([[0.9, 0.1]]), np.array([[0.1, 0.9]])])
        detector = EnsembleDisagreementDetector()
        assert detector.score(disagree)[0] > detector.score(agree)[0]
        with pytest.raises(ValueError):
            detector.score(np.zeros((2, 2)))

    def test_evaluate_scores_and_report(self):
        metrics = evaluate_scores(np.zeros(10), np.ones(10))
        assert metrics["auroc"] == pytest.approx(1.0)
        assert metrics["fpr_at_95tpr"] == pytest.approx(0.0)
        report = detection_report({"knn": metrics})
        assert "knn" in report and "AUROC" in report
        with pytest.raises(ValueError):
            evaluate_scores(np.array([]), np.ones(3))


class TestZeroDayScenario:
    def test_split_structure(self):
        split = ZeroDayScenario(seed=0, duration=10.0, zero_day_type="port-scan").build()
        assert split.zero_day_type == "port-scan"
        assert "port-scan" not in split.known_types
        assert all(p.metadata["attack_type"] == "port-scan" for p in split.test_zero_day)
        assert not any(p.metadata.get("anomaly") for p in split.train_benign)
        assert len(split.train) == len(split.train_benign) + len(split.train_known_attacks)
        assert len(split.test) == len(split.test_benign) + len(split.test_zero_day)

    def test_invalid_attack_type(self):
        with pytest.raises(ValueError):
            ZeroDayScenario(zero_day_type="not-real")


@pytest.fixture(scope="module")
def tiny_classifier(small_contexts_module):
    contexts, vocab = small_contexts_module
    labelled = [c for c in contexts if c.label is not None]
    encoder = LabelEncoder([c.label for c in labelled])
    config = NetFMConfig(vocab_size=len(vocab), d_model=16, num_layers=1, num_heads=2,
                         d_ff=32, max_len=48, dropout=0.0, seed=0)
    model = NetFoundationModel(config)
    classifier = SequenceClassifier(model, encoder.num_classes,
                                    FinetuneConfig(epochs=2, batch_size=16, seed=0))
    ids, mask = encode_contexts(labelled, vocab, 48)
    labels = encoder.encode([c.label for c in labelled])
    classifier.fit(ids, mask, labels)
    return classifier, labelled, vocab, ids, mask, labels


@pytest.fixture(scope="module")
def small_contexts_module():
    from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig

    trace = EnterpriseScenario(EnterpriseScenarioConfig(
        seed=3, duration=12.0, dns_clients=3, dns_queries_per_client=5,
        http_sessions=6, tls_sessions=8, iot_devices_per_type=1,
    )).generate()
    tokenizer = FieldAwareTokenizer()
    contexts = FlowContextBuilder(max_tokens=48).build(trace, tokenizer)
    vocab = Vocabulary.build([c.tokens for c in contexts])
    return contexts, vocab


class TestSuperfields:
    def test_field_superfields_group_by_prefix(self):
        tokens = ["[CLS]", "ip.proto=UDP", "dns.qname=netflix.com", "dns.qname.label=www",
                  "udp.dport=53", "[SEP]"]
        groups = field_superfields(tokens)
        assert set(groups) == {"ip.proto", "dns.qname", "udp.dport"}
        assert groups["dns.qname"] == [2, 3]

    def test_packet_superfields_use_segments(self):
        context = Context(tokens=["[CLS]", "a", "b", "[SEP]", "c"],
                          segments=[0, 0, 0, 0, 1], packets=[])
        groups = packet_superfields(context)
        assert groups == {"packet-0": [1, 2], "packet-1": [4]}

    def test_byte_region_superfields(self):
        tokens = [f"0x{i:02x}" for i in range(50)]
        groups = byte_region_superfields(tokens)
        assert len(groups["ip-header"]) == 20
        assert len(groups["transport-header"]) == 20
        assert len(groups["payload"]) == 10


class TestExplanations:
    def test_occlusion_saliency_identifies_marker_token(self):
        # Toy predictor: P(class 1) is high iff token id 7 is present.
        def predict(ids, mask):
            has_marker = (ids == 7).any(axis=1)
            p1 = np.where(has_marker, 0.9, 0.1)
            return np.stack([1 - p1, p1], axis=1)

        ids = np.array([1, 7, 3, 4])
        mask = np.ones(4, dtype=bool)
        saliency = occlusion_saliency(predict, ids, mask, target_class=1, mask_token_id=0)
        assert saliency.argmax() == 1
        with pytest.raises(ValueError):
            occlusion_saliency(predict, np.zeros((2, 3), dtype=int), np.ones((2, 3), bool), 0, 0)

    def test_grouped_occlusion(self):
        def predict(ids, mask):
            score = (ids == 7).any(axis=1).astype(float)
            return np.stack([1 - score, score], axis=1)

        ids = np.array([7, 7, 3, 4])
        mask = np.ones(4, dtype=bool)
        groups = {"marker": [0, 1], "rest": [2, 3]}
        saliency = grouped_occlusion_saliency(predict, ids, mask, 1, 0, groups)
        assert saliency["marker"] > saliency["rest"]

    def test_attention_explanations(self, tiny_classifier):
        classifier, _, _, ids, mask, _ = tiny_classifier
        classifier.predict(ids[:2], mask[:2])
        maps = classifier.model.attention_maps()
        cls_weights = cls_attention(maps)
        rolled = attention_rollout(maps)
        assert cls_weights.shape == rolled.shape == (2, ids.shape[1])
        np.testing.assert_allclose(rolled.sum(axis=1), np.ones(2), rtol=1e-6)
        with pytest.raises(ValueError):
            attention_rollout([])

    def test_integrated_gradients_runs_and_masks_padding(self, tiny_classifier):
        classifier, _, _, ids, mask, labels = tiny_classifier
        attributions = integrated_gradients(classifier, ids[0], mask[0],
                                            target_class=int(labels[0]), steps=4)
        assert attributions.shape == (ids.shape[1],)
        assert np.all(attributions[~mask[0]] == 0.0)
        assert np.abs(attributions).sum() > 0
        with pytest.raises(ValueError):
            integrated_gradients(classifier, ids, mask, 0)

    def test_faithfulness_gap_on_real_classifier(self, tiny_classifier):
        classifier, _, vocab, ids, mask, labels = tiny_classifier
        index = 0
        target = int(classifier.predict(ids[index:index + 1], mask[index:index + 1])[0])
        saliency = occlusion_saliency(
            classifier.predict_proba, ids[index], mask[index], target, vocab.mask_id
        )
        explained = deletion_score(classifier.predict_proba, ids[index], mask[index],
                                   target, saliency, vocab.mask_id)
        random_drop = random_deletion_score(classifier.predict_proba, ids[index], mask[index],
                                            target, vocab.mask_id,
                                            rng=np.random.default_rng(0))
        gap = faithfulness_gap(classifier.predict_proba, ids[index], mask[index], target,
                               saliency, vocab.mask_id, rng=np.random.default_rng(0))
        assert gap["explained"] == pytest.approx(explained)
        # Deleting the most salient tokens should hurt at least as much as random.
        assert gap["explained"] >= random_drop - 0.05
