"""Tests for Word2Vec, GloVe, the GRU classifier and classical baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GloVe,
    GloVeConfig,
    GRUClassifier,
    GRUClassifierConfig,
    KNearestNeighbors,
    LogisticRegression,
    MajorityClassBaseline,
    Word2Vec,
    Word2VecConfig,
    standardize_features,
)
from repro.embeddings import cosine_similarity
from repro.tokenize import Vocabulary


def _paired_corpus(pairs: int = 150, seed: int = 0) -> list[list[str]]:
    """Sentences in which tokens of the same group always co-occur."""
    rng = np.random.default_rng(seed)
    groups = [["port80", "port443", "web"], ["port25", "port110", "mail"], ["port53", "port123", "infra"]]
    corpus = []
    for _ in range(pairs):
        group = groups[int(rng.integers(0, len(groups)))]
        sentence = [str(t) for t in rng.permutation(group)] + ["traffic", "flow"]
        corpus.append(sentence)
    return corpus


class TestWord2Vec:
    def test_skipgram_learns_cooccurrence_structure(self):
        corpus = _paired_corpus()
        model = Word2Vec(Word2VecConfig(dim=16, epochs=3, window=3, seed=0)).fit(corpus)
        same = cosine_similarity(model.vector("port80"), model.vector("port443"))
        different = cosine_similarity(model.vector("port80"), model.vector("port25"))
        assert same > different

    def test_cbow_mode_runs(self):
        corpus = _paired_corpus(60)
        model = Word2Vec(Word2VecConfig(dim=8, epochs=2, mode="cbow", seed=1)).fit(corpus)
        assert model.vector("web").shape == (8,)

    def test_vocabulary_and_lookup_errors(self):
        model = Word2Vec(Word2VecConfig(dim=8, epochs=1))
        with pytest.raises(RuntimeError):
            model.vector("anything")
        model.fit([["a", "b"], ["a", "c"]])
        assert "a" in model
        with pytest.raises(KeyError):
            model.vector("zzz")
        assert model.embedding_matrix().shape[0] == len(model.vocabulary)
        assert "[PAD]" not in model.embeddings()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Word2VecConfig(mode="glove")
        with pytest.raises(ValueError):
            Word2VecConfig(window=0)

    def test_shared_vocabulary_supported(self):
        vocab = Vocabulary(["a", "b", "c"])
        model = Word2Vec(Word2VecConfig(dim=4, epochs=1)).fit([["a", "b"], ["b", "c"]], vocab)
        assert model.vocabulary is vocab


class TestGloVe:
    def test_learns_cooccurrence_structure(self):
        corpus = _paired_corpus(120)
        model = GloVe(GloVeConfig(dim=16, epochs=10, seed=0)).fit(corpus)
        same = cosine_similarity(model.vector("port80"), model.vector("port443"))
        different = cosine_similarity(model.vector("port80"), model.vector("port25"))
        assert same > different

    def test_empty_corpus(self):
        model = GloVe(GloVeConfig(dim=4, epochs=1)).fit([[]])
        assert model.embedding_matrix().shape[1] == 4

    def test_lookup_errors(self):
        model = GloVe()
        with pytest.raises(RuntimeError):
            model.vector("x")


def _toy_sequence_dataset(n: int = 120, seq: int = 8, vocab: int = 20, seed: int = 0):
    """Sequences whose label is determined by a marker token."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(5, vocab, size=(n, seq))
    labels = rng.integers(0, 2, size=n)
    ids[labels == 0, 2] = 5   # class-0 marker
    ids[labels == 1, 2] = 6   # class-1 marker
    mask = np.ones((n, seq), dtype=bool)
    return ids, mask, labels


class TestGRUClassifier:
    def test_learns_separable_task(self):
        ids, mask, labels = _toy_sequence_dataset()
        classifier = GRUClassifier(
            vocab_size=20, num_classes=2,
            config=GRUClassifierConfig(embedding_dim=12, hidden_size=12, epochs=6,
                                       batch_size=16, seed=0),
        )
        classifier.fit(ids, mask, labels)
        metrics = classifier.evaluate(ids, mask, labels)
        assert metrics["accuracy"] > 0.8

    def test_pretrained_embeddings_and_freeze(self):
        pretrained = np.random.default_rng(0).normal(size=(20, 12))
        classifier = GRUClassifier(
            vocab_size=20, num_classes=2, pretrained_embeddings=pretrained,
            config=GRUClassifierConfig(embedding_dim=12, hidden_size=8, epochs=1,
                                       freeze_embeddings=True),
        )
        np.testing.assert_allclose(classifier.embedding.weight.data, pretrained)
        ids, mask, labels = _toy_sequence_dataset(40)
        classifier.fit(ids, mask, labels)
        np.testing.assert_allclose(classifier.embedding.weight.data, pretrained)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GRUClassifier(vocab_size=20, num_classes=2,
                          pretrained_embeddings=np.zeros((5, 5)))

    def test_eval_history_recorded(self):
        ids, mask, labels = _toy_sequence_dataset(48)
        classifier = GRUClassifier(vocab_size=20, num_classes=2,
                                   config=GRUClassifierConfig(epochs=2, batch_size=16))
        history = classifier.fit(ids, mask, labels, eval_data=(ids, mask, labels))
        assert len(history.eval_metrics) == 2


class TestClassical:
    def _blobs(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        features = np.concatenate([
            rng.normal(-2.0, 0.5, size=(n // 2, 3)),
            rng.normal(2.0, 0.5, size=(n // 2, 3)),
        ])
        labels = np.concatenate([np.zeros(n // 2, np.int64), np.ones(n // 2, np.int64)])
        return features, labels

    def test_logistic_regression_separates_blobs(self):
        features, labels = self._blobs()
        model = LogisticRegression().fit(features, labels)
        assert model.evaluate(features, labels)["accuracy"] > 0.95
        probabilities = model.predict_proba(features[:5])
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5), rtol=1e-9)

    def test_logistic_regression_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((2, 3)))

    def test_knn(self):
        features, labels = self._blobs(100)
        model = KNearestNeighbors(k=3).fit(features, labels)
        assert model.evaluate(features, labels)["accuracy"] > 0.95
        with pytest.raises(ValueError):
            KNearestNeighbors(k=0)
        with pytest.raises(RuntimeError):
            KNearestNeighbors().predict(features)

    def test_majority_baseline(self):
        labels = np.array([0, 0, 0, 1])
        model = MajorityClassBaseline().fit(np.zeros((4, 1)), labels)
        assert model.predict(np.zeros((2, 1))).tolist() == [0, 0]
        assert model.evaluate(np.zeros((4, 1)), labels)["accuracy"] == pytest.approx(0.75)

    def test_standardize_features(self):
        train = np.random.default_rng(0).normal(3.0, 2.0, size=(50, 4))
        test = np.random.default_rng(1).normal(3.0, 2.0, size=(20, 4))
        std_train, std_test = standardize_features(train, test)
        np.testing.assert_allclose(std_train.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(std_train.std(axis=0), np.ones(4), atol=1e-9)
        assert std_test.shape == (20, 4)
