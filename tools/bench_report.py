#!/usr/bin/env python3
"""Run the E14 throughput suite and write a machine-readable report.

Produces ``BENCH_e14.json`` with the per-gate speedups and throughputs the
benchmark measures (columnar generation, flow grouping, incremental BPE fit,
batched/columnar encode paths, packed training, micro-batched serving with
its latency/cache scorecard), plus environment metadata — so the
performance trajectory across PRs can be tracked by tooling instead of by
reading benchmark stdout.

Usage::

    PYTHONPATH=src python tools/bench_report.py              # full sizes
    PYTHONPATH=src python tools/bench_report.py --smoke      # CI sizes
    PYTHONPATH=src python tools/bench_report.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default=str(REPO_ROOT / "BENCH_e14.json"),
        help="where to write the JSON report (default: BENCH_e14.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the tiny CI sizes (same effect as E14_SMOKE=1)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ["E14_SMOKE"] = "1"
    sys.path.insert(0, str(REPO_ROOT))
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy
    from benchmarks import test_bench_e14_throughput as e14

    started = time.time()
    rows = e14.run_experiment()
    elapsed = time.time() - started

    gates = {
        "byte_encode": ("encode/byte", e14.BYTE_SPEEDUP_FLOOR),
        "bpe_encode": ("encode/bpe (learned)", e14.BPE_SPEEDUP_FLOOR),
        "field_aware_columnar_encode": (
            "encode/field-aware (columnar)", e14.FIELD_COLUMNAR_SPEEDUP_FLOOR
        ),
        "columnar_generation": ("generate/columnar", e14.GENERATION_SPEEDUP_FLOOR),
        "columnar_flow_grouping": ("group/flow (columnar)", e14.GROUPING_SPEEDUP_FLOOR),
        "incremental_bpe_fit": ("fit/bpe (incremental)", e14.BPE_FIT_SPEEDUP_FLOOR),
        "columnar_pcap_parse": ("parse/pcap (columnar)", e14.PCAP_PARSE_SPEEDUP_FLOOR),
        "columnar_flow_stats": ("stats/flow (columnar)", e14.FLOW_STATS_SPEEDUP_FLOOR),
        "serving_micro_batch": (
            "serve/micro-batch (engine)", e14.SERVING_SPEEDUP_FLOOR
        ),
    }
    serving = rows["serve/micro-batch (engine)"]
    report = {
        "suite": "e14-throughput",
        "smoke": bool(e14.SMOKE),
        "trace_packets": e14.TRACE_PACKETS,
        "elapsed_seconds": round(elapsed, 2),
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
        "gates": {
            name: {
                "row": row_name,
                "speedup": round(rows[row_name]["speedup"], 3),
                "floor": floor,
                "passed": rows[row_name]["speedup"] >= floor,
            }
            for name, (row_name, floor) in gates.items()
        },
        "rows": {
            name: {
                metric: (None if value != value else round(value, 3))  # NaN -> null
                for metric, value in row.items()
            }
            for name, row in rows.items()
        },
        "train_tokens_per_second": {
            "legacy_full_width": round(rows["train/legacy full-width"]["tokens_per_s"], 1),
            "packed_bucketed": round(rows["train/packed bucketed"]["tokens_per_s"], 1),
        },
        "serving": {
            "flows": int(serving["flows"]),
            "speedup": round(serving["speedup"], 3),
            "unbatched_flows_per_s": round(serving["per_packet_tok_s"], 1),
            "throughput_flows_per_s": round(serving["batched_tok_s"], 1),
            "throughput_packets_per_s": round(serving["packets_per_s"], 1),
            "p50_latency_ms": round(serving["p50_ms"], 3),
            "p99_latency_ms": round(serving["p99_ms"], 3),
            "cache_hit_rate": round(serving["cache_hit_rate"], 3),
            "mean_batch": round(serving["mean_batch"], 2),
        },
    }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    failed = [name for name, gate in report["gates"].items() if not gate["passed"]]
    status = "FAILED: " + ", ".join(failed) if failed else "all gates passed"
    print(f"wrote {output} ({status})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
