#!/usr/bin/env python3
"""Run the E14 throughput suite and write a machine-readable report.

Produces ``BENCH_e14.json`` with the per-gate speedups and throughputs the
benchmark measures (columnar generation, flow grouping, incremental BPE fit,
batched/columnar encode paths, packed training, micro-batched serving with
its latency/cache scorecard), plus environment metadata — so the
performance trajectory across PRs can be tracked by tooling instead of by
reading benchmark stdout.

The full-size gate floors follow a *margin policy*: each gate's floor is
its trailing measurement (``benchmarks/e14_trailing.json``, recorded on the
reference host) times a configured margin, so ordinary run-to-run drift —
allocator state, scheduler jitter, tens of percent across days for the
allocation-heavy reference paths — can never
flip a gate red, while a real regression past the margin still does.  Gates
without a trailing record fall back to their hand-set floor.  The report
records the trailing value, margin and derived floor per gate; after a
deliberate perf change, refresh the trailing file with ``--update-trailing``
(only written when every gate passed).

Usage::

    PYTHONPATH=src python tools/bench_report.py              # full sizes
    PYTHONPATH=src python tools/bench_report.py --smoke      # CI sizes
    PYTHONPATH=src python tools/bench_report.py -o out.json
    PYTHONPATH=src python tools/bench_report.py --update-trailing
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAILING_PATH = REPO_ROOT / "benchmarks" / "e14_trailing.json"

# Default slack between the trailing measurement and the floor derived from
# it: a gate goes red only when it loses more than 40% of its recorded
# speedup.  The margin has to clear not just scheduler jitter but the
# host's allocator-state drift: the same gate measured on the same code
# swings up to ~35% across days, because the wall time of the
# allocation-heavy reference sides tracks glibc's adaptive mmap threshold
# and the page-fault cost of the moment.  Losing more than the margin is
# squarely real-regression territory.
DEFAULT_MARGIN = 0.6


def load_trailing(path: "Path | str | None" = None) -> dict:
    """The trailing-measurement database, ``{}`` when absent or unreadable."""
    path = Path(path) if path is not None else TRAILING_PATH
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}


def gate_floor(
    gate: str, fallback: float, trailing: "dict | None" = None
) -> float:
    """The margin-policy floor for ``gate``.

    ``trailing-measurement x margin`` when the gate has a trailing record,
    the hand-set ``fallback`` otherwise.  ``trailing`` injects a database
    (tests); by default the repo's ``benchmarks/e14_trailing.json`` is read.
    """
    database = load_trailing() if trailing is None else trailing
    entry = database.get("gates", {}).get(gate)
    if not entry or "trailing" not in entry:
        return fallback
    margin = float(entry.get("margin", DEFAULT_MARGIN))
    return round(float(entry["trailing"]) * margin, 3)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default=str(REPO_ROOT / "BENCH_e14.json"),
        help="where to write the JSON report (default: BENCH_e14.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the tiny CI sizes (same effect as E14_SMOKE=1)",
    )
    parser.add_argument(
        "--update-trailing", action="store_true",
        help="rewrite benchmarks/e14_trailing.json from this run's "
             "measurements (full-size runs only, and only if all gates pass)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ["E14_SMOKE"] = "1"
    sys.path.insert(0, str(REPO_ROOT))
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy
    from benchmarks import test_bench_e14_throughput as e14

    started = time.time()
    rows = e14.run_experiment()
    elapsed = time.time() - started

    gates = {
        "byte_encode": ("encode/byte", e14.BYTE_SPEEDUP_FLOOR),
        "bpe_encode": ("encode/bpe (learned)", e14.BPE_SPEEDUP_FLOOR),
        "field_aware_columnar_encode": (
            "encode/field-aware (columnar)", e14.FIELD_COLUMNAR_SPEEDUP_FLOOR
        ),
        "columnar_generation": ("generate/columnar", e14.GENERATION_SPEEDUP_FLOOR),
        "columnar_flow_grouping": ("group/flow (columnar)", e14.GROUPING_SPEEDUP_FLOOR),
        "incremental_bpe_fit": ("fit/bpe (incremental)", e14.BPE_FIT_SPEEDUP_FLOOR),
        "columnar_pcap_parse": ("parse/pcap (columnar)", e14.PCAP_PARSE_SPEEDUP_FLOOR),
        "columnar_flow_stats": ("stats/flow (columnar)", e14.FLOW_STATS_SPEEDUP_FLOOR),
        "train_step": ("train/step (fused)", e14.TRAIN_STEP_SPEEDUP_FLOOR),
        "forward_latency": (
            "serve/forward (fused)", e14.FORWARD_LATENCY_SPEEDUP_FLOOR
        ),
        "forward_latency_f32": (
            "serve/forward (fused, f32)", e14.FORWARD_F32_SPEEDUP_FLOOR
        ),
        "serving_micro_batch": (
            "serve/micro-batch (engine)", e14.SERVING_SPEEDUP_FLOOR
        ),
        "serving_f32": (
            "serve/micro-batch (engine, f32)", e14.SERVING_F32_SPEEDUP_FLOOR
        ),
        "serving_parallel": (
            "serve/parallel (fabric)", e14.SERVING_PARALLEL_FLOOR
        ),
    }
    trailing_db = load_trailing()
    serving = rows["serve/micro-batch (engine)"]
    serving_f32 = rows["serve/micro-batch (engine, f32)"]
    parallel = rows["serve/parallel (fabric)"]
    obs = rows["serve/observability"]
    report = {
        "suite": "e14-throughput",
        "smoke": bool(e14.SMOKE),
        "trace_packets": e14.TRACE_PACKETS,
        "elapsed_seconds": round(elapsed, 2),
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
        "gates": {
            name: {
                "row": row_name,
                "speedup": round(rows[row_name]["speedup"], 3),
                "floor": floor,
                "passed": rows[row_name]["speedup"] >= floor,
                # Margin-policy provenance: which trailing measurement (and
                # margin) this floor was derived from, when one is recorded.
                **(
                    {
                        "trailing": trailing_db["gates"][name]["trailing"],
                        "margin": trailing_db["gates"][name].get(
                            "margin", DEFAULT_MARGIN
                        ),
                    }
                    if not e14.SMOKE and name in trailing_db.get("gates", {})
                    else {}
                ),
            }
            for name, (row_name, floor) in gates.items()
        },
        "rows": {
            name: {
                metric: (
                    value if isinstance(value, (dict, str))  # nested / identifiers
                    else None if value != value else round(value, 3)  # NaN -> null
                )
                for metric, value in row.items()
            }
            for name, row in rows.items()
        },
        "train_tokens_per_second": {
            "legacy_full_width": round(rows["train/legacy full-width"]["tokens_per_s"], 1),
            "packed_bucketed": round(rows["train/packed bucketed"]["tokens_per_s"], 1),
        },
        "model": {
            "train_step_speedup": round(rows["train/step (fused)"]["speedup"], 3),
            "train_step_ms": round(rows["train/step (fused)"]["step_ms"], 3),
            "steady_scratch_allocs": int(
                rows["train/step (fused)"]["steady_scratch_allocs"]
            ),
            "forward_speedup": round(rows["serve/forward (fused)"]["speedup"], 3),
            "forward_latency_ms": round(
                rows["serve/forward (fused)"]["latency_ms"], 3
            ),
            "forward_f32_speedup": round(
                rows["serve/forward (fused, f32)"]["speedup"], 3
            ),
            "forward_f32_latency_ms": round(
                rows["serve/forward (fused, f32)"]["latency_ms"], 3
            ),
        },
        "serving": {
            "flows": int(serving["flows"]),
            "speedup": round(serving["speedup"], 3),
            "unbatched_flows_per_s": round(serving["per_packet_tok_s"], 1),
            "throughput_flows_per_s": round(serving["batched_tok_s"], 1),
            "throughput_packets_per_s": round(serving["packets_per_s"], 1),
            "p50_latency_ms": round(serving["p50_ms"], 3),
            "p99_latency_ms": round(serving["p99_ms"], 3),
            "cache_hit_rate": round(serving["cache_hit_rate"], 3),
            "mean_batch": round(serving["mean_batch"], 2),
            # Numeric provenance (repro.nn.numeric, via ServingReport): the
            # build dtype the engine served and the policy its logits are
            # governed by.
            "model_dtype": serving["model_dtype"],
            "numeric_policy": serving["numeric_policy"],
            # Resilience counters (repro.serve.resilience): all zero on the
            # fault-free benchmark stream, surfaced so a chaos run's report
            # is comparable field for field.
            "errors": int(serving["resilience"]["errors"]),
            "retries": int(serving["resilience"]["retries"]),
            "quarantined": int(serving["resilience"]["quarantined"]),
            "restarts": int(serving["resilience"]["restarts"]),
        },
        "serving_f32": {
            "speedup": round(serving_f32["speedup"], 3),
            "throughput_flows_per_s": round(serving_f32["batched_tok_s"], 1),
            "throughput_packets_per_s": round(serving_f32["packets_per_s"], 1),
            "p50_latency_ms": round(serving_f32["p50_ms"], 3),
            "p99_latency_ms": round(serving_f32["p99_ms"], 3),
            "cache_hit_rate": round(serving_f32["cache_hit_rate"], 3),
            "model_dtype": serving_f32["model_dtype"],
            "numeric_policy": serving_f32["numeric_policy"],
        },
        "serving_parallel": {
            "workers": int(parallel["workers"]),
            "cores": e14.CPU_CORES,
            "speedup": round(parallel["speedup"], 3),
            "single_flows_per_s": round(parallel["per_packet_tok_s"], 1),
            "fabric_flows_per_s": round(parallel["batched_tok_s"], 1),
        },
        # Observability scorecard (repro.obs, docs/OBSERVABILITY.md): the
        # measured cost of turning tracing on (tracing-off is the exact path
        # the serving gate times, so its overhead is zero by construction),
        # the per-stage span latency breakdown of a fully traced serve, and
        # the kernel-layer profile (scratch-pool hit rate, per-fused-kernel
        # calls and wall time) of one engine pass.
        "observability": {
            "tracing_off_s": round(obs["tracing_off_s"], 4),
            "tracing_on_s": round(obs["tracing_on_s"], 4),
            "tracing_overhead_ratio": round(obs["tracing_overhead_ratio"], 3),
            "stages": {
                stage: {
                    "count": int(row["count"]),
                    "mean_ms": round(row["mean_ms"], 4),
                    "p50_ms": round(row["p50_ms"], 4),
                    "p99_ms": round(row["p99_ms"], 4),
                    "total_ms": round(row["total_ms"], 3),
                }
                for stage, row in obs["stages"].items()
            },
            "kernel_profile": {
                "pool": {k: int(v) for k, v in obs["kernel_profile"]["pool"].items()},
                "kernels": {
                    name: {
                        "calls": int(row["calls"]),
                        "wall_ms": round(row["wall_ms"], 3),
                    }
                    for name, row in obs["kernel_profile"]["kernels"].items()
                },
            },
        },
    }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    failed = [name for name, gate in report["gates"].items() if not gate["passed"]]
    status = "FAILED: " + ", ".join(failed) if failed else "all gates passed"
    print(f"wrote {output} ({status})")

    if args.update_trailing and not failed and not e14.SMOKE:
        updated = {
            "comment": (
                "Trailing full-size gate measurements on the reference host; "
                "gate floors are trailing * margin (tools/bench_report.py). "
                "Refresh deliberately via --update-trailing after perf changes."
            ),
            "gates": {
                name: {
                    "trailing": report["gates"][name]["speedup"],
                    "margin": trailing_db.get("gates", {})
                    .get(name, {})
                    .get("margin", DEFAULT_MARGIN),
                }
                for name in gates
            },
        }
        TRAILING_PATH.write_text(
            json.dumps(updated, indent=2) + "\n", encoding="utf-8"
        )
        print(f"updated {TRAILING_PATH}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
