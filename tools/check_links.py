#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans ``README.md`` and ``docs/*.md`` (or any paths given on the command
line) for markdown links/images, and verifies that every non-external target
exists relative to the file that references it (or to the repo root).
External links (http/https/mailto) are not fetched — CI must not depend on
the network.  Exits non-zero listing every broken link.

Usage::

    python tools/check_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")

REPO_ROOT = Path(__file__).resolve().parent.parent


def default_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists() and not (REPO_ROOT / target).resolve().exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    if not files:
        print("no markdown files to check", file=sys.stderr)
        return 1
    errors: list[str] = []
    checked = 0
    for path in files:
        errors.extend(check_file(path))
        checked += 1
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{len(errors)} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
