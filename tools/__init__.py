"""Repo tooling (benchmark reporting, doc checks) — importable as a package.

``tools.bench_report`` doubles as a library: the E14 benchmark module and
the policy unit tests import :func:`tools.bench_report.gate_floor` from
here, so the floor policy has exactly one implementation.
"""
