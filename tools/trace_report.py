#!/usr/bin/env python
"""Render a serving trace (JSONL) as per-stage and critical-path tables.

Usage::

    python tools/trace_report.py trace.jsonl            # both tables
    python tools/trace_report.py trace.jsonl --top 5    # 5 slowest flows
    python tools/trace_report.py trace.jsonl --json     # machine-readable
    python tools/trace_report.py --selftest             # exercised in CI

The input is the :meth:`repro.obs.trace.TraceRecorder.export_jsonl` format:
one JSON object per line with ``flow``/``generation``/``stage``/``kind``/
``start``/``end``/``attrs`` keys.  The analysis itself lives in
:mod:`repro.obs.trace` (:func:`stage_breakdown`, :func:`critical_paths`) so
benchmarks and tests share one implementation; this tool only formats.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.trace import (  # noqa: E402
    TraceRecorder,
    critical_paths,
    load_trace,
    stage_breakdown,
)


def format_stage_table(breakdown: dict) -> str:
    """The per-stage latency table, pipeline order, one row per stage."""
    lines = [
        f"{'stage':<16} {'kind':<6} {'count':>7} {'total_ms':>10} "
        f"{'mean_ms':>9} {'p50_ms':>9} {'p99_ms':>9}",
        "-" * 70,
    ]
    for stage, row in breakdown.items():
        if row["kind"] == "span":
            lines.append(
                f"{stage:<16} {'span':<6} {row['count']:>7} "
                f"{row['total_ms']:>10.3f} {row['mean_ms']:>9.4f} "
                f"{row['p50_ms']:>9.4f} {row['p99_ms']:>9.4f}"
            )
        else:
            lines.append(
                f"{stage:<16} {'event':<6} {row['count']:>7} "
                f"{'-':>10} {'-':>9} {'-':>9} {'-':>9}"
            )
    return "\n".join(lines)


def format_critical_paths(paths: list[dict], top: int) -> str:
    """The slowest ``top`` flows, end-to-end, with per-stage attribution."""
    lines = [
        f"critical paths (top {min(top, len(paths))} of {len(paths)} flows):"
    ]
    for path in paths[:top]:
        stages = ", ".join(
            f"{stage}={ms:.3f}ms" for stage, ms in path["stages_ms"].items()
        )
        events = ",".join(path["events"])
        lines.append(
            f"  {path['flow']!s:<24} gen={path['generation']} "
            f"end_to_end={path['end_to_end_ms']:.3f}ms "
            f"[{stages}] unattributed={path['unattributed_ms']:.3f}ms "
            f"events=({events})"
        )
    return "\n".join(lines)


def render(rows: list[dict], top: int, as_json: bool) -> str:
    breakdown = stage_breakdown(rows)
    paths = critical_paths(rows)
    if as_json:
        return json.dumps(
            {"stages": breakdown, "critical_paths": paths[:top]},
            indent=2, sort_keys=True,
        )
    return "\n\n".join([
        format_stage_table(breakdown),
        format_critical_paths(paths, top),
    ])


def selftest() -> int:
    """Round-trip a synthetic deterministic trace through the full tool path."""
    ticks = iter(range(1000))
    recorder = TraceRecorder(clock=lambda: float(next(ticks)))
    for flow in ("conn-1", "conn-2"):
        recorder.annotate(flow, 0, "first_packet", packet_ts=0.5)
        recorder.annotate(flow, 0, "flow_closed", reason="flush", packet_count=3)
        t0 = recorder.clock()
        recorder.record_span(flow, 0, "encode", t0, recorder.clock(), tokens=12)
        t1 = recorder.clock()
        recorder.record_span(flow, 0, "batched", t1, recorder.clock(), batch=2)
        t2 = recorder.clock()
        recorder.record_span(flow, 0, "inferred", t2, recorder.clock(), batch=2)
        recorder.annotate(flow, 0, "emitted", cached=False, degraded=False)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        written = recorder.export_jsonl(path)
        rows = load_trace(path)
    assert written == len(rows) == 12, (written, len(rows))
    breakdown = stage_breakdown(rows)
    assert list(breakdown) == [
        "first_packet", "flow_closed", "encode", "batched", "inferred",
        "emitted",
    ], list(breakdown)
    for stage in ("encode", "batched", "inferred"):
        assert breakdown[stage]["count"] == 2, breakdown[stage]
        assert breakdown[stage]["total_ms"] == 2000.0, breakdown[stage]
    paths = critical_paths(rows)
    assert len(paths) == 2 and paths[0]["end_to_end_ms"] > 0, paths
    assert all(p["events"] == [
        "first_packet", "flow_closed", "emitted",
    ] for p in paths), paths
    text = render(rows, top=3, as_json=False)
    assert "inferred" in text and "critical paths" in text
    machine = json.loads(render(rows, top=3, as_json=True))
    assert set(machine) == {"stages", "critical_paths"}
    print("trace_report selftest: OK "
          f"({len(rows)} rows, {len(breakdown)} stages, {len(paths)} flows)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="JSONL trace file")
    parser.add_argument(
        "--top", type=int, default=10,
        help="critical-path rows to show (default 10)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the built-in round-trip check and exit",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()
    if not args.trace:
        parser.error("a trace file is required (or --selftest)")
    print(render(load_trace(args.trace), top=args.top, as_json=args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
