#!/usr/bin/env python3
"""Validate a sharded packet-corpus directory against its manifest.

Checks, without unpickling any application objects unless ``--deep``:

* the manifest parses, has the expected format tag and a supported version;
* every shard file listed exists, no stray ``shard-*.npz`` files remain;
* per-shard row counts, start offsets and the total row count line up;
* each shard archive contains every manifest-declared column, the array
  columns all have the shard's row count, and the payload matrix matches
  the recorded width;
* with ``--deep``: shards load fully (object columns included), payload
  lengths fit the payload matrix, and the label vocabulary recorded in the
  manifest equals the vocabulary recomputed from the metadata.

Usage::

    PYTHONPATH=src python tools/check_shards.py CORPUS_DIR [--deep]
    PYTHONPATH=src python tools/check_shards.py --selftest

``--selftest`` builds a small corpus in a temporary directory, saves it,
and validates it deeply — the mode the docs CI job runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_corpus(directory: Path, deep: bool = False) -> list[str]:
    """Return a list of problems (empty when the corpus validates)."""
    import numpy as np

    from repro.corpus.packets import MANIFEST_NAME, SHARD_FORMAT, SHARD_VERSION

    problems: list[str] = []
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        return [f"missing {MANIFEST_NAME}"]
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"unparseable manifest: {error}"]

    if manifest.get("format") != SHARD_FORMAT:
        problems.append(f"format is {manifest.get('format')!r}, expected {SHARD_FORMAT!r}")
    if manifest.get("version") != SHARD_VERSION:
        problems.append(f"unsupported version {manifest.get('version')!r}")
    if problems:
        return problems

    shards = manifest.get("shards", [])
    if len(shards) != manifest.get("num_shards"):
        problems.append(
            f"manifest lists {len(shards)} shards but num_shards is "
            f"{manifest.get('num_shards')}"
        )
    listed = {entry["file"] for entry in shards}
    on_disk = {path.name for path in directory.glob("shard-*.npz")}
    for missing in sorted(listed - on_disk):
        problems.append(f"missing shard file {missing}")
    for stray in sorted(on_disk - listed):
        problems.append(f"stray shard file {stray} not in manifest")

    array_fields = manifest.get("array_fields", [])
    object_fields = manifest.get("object_fields", [])
    expected_start = 0
    total = 0
    for index, entry in enumerate(shards):
        missing_keys = {"file", "rows", "start", "payload_width"} - set(entry)
        if missing_keys:
            problems.append(
                f"shard entry {index} is missing keys {sorted(missing_keys)}"
            )
            continue
        name = entry["file"]
        if entry.get("start") != expected_start:
            problems.append(
                f"{name}: start {entry.get('start')} != expected {expected_start}"
            )
        expected_start = (entry.get("start") or 0) + entry["rows"]
        total += entry["rows"]
        path = directory / name
        if not path.is_file():
            continue
        with np.load(path, allow_pickle=deep) as archive:
            keys = set(archive.files)
            for field in array_fields + object_fields:
                if field not in keys:
                    problems.append(f"{name}: missing column {field!r}")
            for field in array_fields:
                if field not in keys:
                    continue
                column = archive[field]
                if field == "payload":
                    if column.shape != (entry["rows"], entry["payload_width"]):
                        problems.append(
                            f"{name}: payload shape {column.shape} != "
                            f"({entry['rows']}, {entry['payload_width']})"
                        )
                elif len(column) != entry["rows"]:
                    problems.append(
                        f"{name}: column {field!r} has {len(column)} rows, "
                        f"manifest says {entry['rows']}"
                    )
    if total != manifest.get("num_rows"):
        problems.append(
            f"shard rows sum to {total}, manifest num_rows is {manifest.get('num_rows')}"
        )

    if deep and not problems:
        from repro.corpus import PacketTraceCorpus

        corpus = PacketTraceCorpus.open_shards(directory)
        for index, shard in enumerate(corpus):
            if shard.payload_lengths.max(initial=0) > shard.payload.shape[1]:
                problems.append(f"shard {index}: payload lengths exceed the matrix")
        for key, recorded in manifest.get("label_vocab", {}).items():
            recomputed = sorted({
                str(value) for value in corpus.labels(key) if value is not None
            })
            if recomputed != recorded:
                problems.append(
                    f"label vocab for {key!r} is stale: manifest {recorded}, "
                    f"recomputed {recomputed}"
                )
    return problems


def selftest() -> int:
    """Build, save and deeply validate a small corpus end to end."""
    from repro.corpus import PacketTraceCorpus
    from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig

    corpus = PacketTraceCorpus.from_scenarios(
        [EnterpriseScenario(EnterpriseScenarioConfig(seed=0, duration=5.0))]
    )
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "corpus"
        corpus.save_shards(directory, shard_rows=64)
        problems = check_corpus(directory, deep=True)
        restored = PacketTraceCorpus.open_shards(directory)
        if len(restored) != len(corpus):
            problems.append(
                f"round-trip row count {len(restored)} != {len(corpus)}"
            )
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(f"selftest OK ({len(corpus)} rows, shard_rows=64)")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", nargs="?", help="corpus directory to validate")
    parser.add_argument(
        "--deep", action="store_true",
        help="also load object columns and recompute the label vocabulary",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="build a small corpus in a temp dir and validate it deeply",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()
    if not args.directory:
        parser.error("a corpus directory (or --selftest) is required")
    problems = check_corpus(Path(args.directory), deep=args.deep)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(f"{args.directory}: manifest and shards validate")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
