"""Repo-level pytest bootstrap.

Makes ``import repro`` work from a clean checkout (no install, no PYTHONPATH)
for both ``tests/`` and ``benchmarks/``: the src layout directory is put on
``sys.path`` before collection starts.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
