"""repro — network foundation models, from packets to benchmarks.

A from-scratch reproduction of the system envisioned by "Rethinking
Data-driven Networking with Foundation Models: Challenges and Opportunities"
(HotNets 2022).  The package is organised as:

* :mod:`repro.nn` — NumPy autograd, transformer / GRU layers, optimizers.
* :mod:`repro.net` — packet and protocol substrate (headers, DNS/HTTP/TLS/NTP,
  flows, pcap).
* :mod:`repro.traffic` — synthetic, labelled workload generators.
* :mod:`repro.tokenize` / :mod:`repro.context` — tokenization strategies and
  context construction (paper Sections 4.1.2-4.1.3).
* :mod:`repro.core` — the network foundation model, its pre-training
  objectives, fine-tuning, few-shot adaptation (Sections 2, 4.1).
* :mod:`repro.baselines` — Word2Vec, GloVe, GRU and classical baselines.
* :mod:`repro.embeddings` — neighbour / analogy / cluster probes (Section 3).
* :mod:`repro.ood` — rare and unseen event detection (Section 4.3).
* :mod:`repro.interpret` — attention, occlusion, integrated gradients,
  superfields (Section 4.4).
* :mod:`repro.netglue` — the GLUE-style benchmark suite (Section 4.2).
* :mod:`repro.corpus` — networking-text corpus for the NetBERT analogy probe.
* :mod:`repro.serve` — streaming inference: online flow assembly,
  micro-batched model serving, prediction caching.
"""

from . import (
    baselines,
    context,
    core,
    corpus,
    embeddings,
    interpret,
    net,
    netglue,
    nn,
    ood,
    serve,
    tasks,
    tokenize,
    traffic,
)
from .core import NetFMConfig, NetFMPipeline, NetFoundationModel

__version__ = "1.0.0"

__all__ = [
    "nn",
    "net",
    "traffic",
    "tokenize",
    "context",
    "core",
    "baselines",
    "embeddings",
    "ood",
    "interpret",
    "netglue",
    "tasks",
    "corpus",
    "serve",
    "NetFMConfig",
    "NetFMPipeline",
    "NetFoundationModel",
    "__version__",
]
