"""Superfields: the networking analogue of superpixels (paper Section 4.4).

A superfield is a group of adjacent tokens that belong to one semantic unit —
all the tokens of one protocol field, or all the tokens of one packet inside a
multi-packet context.  Explaining at superfield granularity yields meaningful
statements ("the DNS answer section mattered") instead of attributions over
individual bytes.
"""

from __future__ import annotations

from collections import defaultdict

from ..context.builders import Context
from ..tokenize.vocab import SPECIAL_TOKENS

__all__ = ["field_superfields", "packet_superfields", "byte_region_superfields"]


def field_superfields(tokens: list[str]) -> dict[str, list[int]]:
    """Group field-aware tokens by their field prefix.

    ``"dns.qname=netflix.com"`` and ``"dns.qname.label=www"`` both fall into
    the ``dns.qname`` superfield; ``"tcp.flags=SYN"`` into ``tcp.flags``; plain
    tokens (no ``=``) each form their own group.  Special tokens are skipped.
    """
    groups: dict[str, list[int]] = defaultdict(list)
    for position, token in enumerate(tokens):
        if token in SPECIAL_TOKENS:
            continue
        if "=" in token:
            prefix = token.split("=", 1)[0]
            prefix = prefix.replace(".label", "")
        else:
            prefix = token
        groups[prefix].append(position)
    return dict(groups)


def packet_superfields(context: Context) -> dict[str, list[int]]:
    """Group a context's tokens by originating packet (via ``Context.segments``)."""
    groups: dict[str, list[int]] = defaultdict(list)
    for position, (token, segment) in enumerate(zip(context.tokens, context.segments)):
        if token in SPECIAL_TOKENS:
            continue
        groups[f"packet-{segment}"].append(position)
    return dict(groups)


def byte_region_superfields(tokens: list[str]) -> dict[str, list[int]]:
    """Group byte-level tokens into protocol header regions by offset.

    Assumes the byte tokenizer's convention (Ethernet stripped, IPv4 first):
    bytes 0-19 are the IP header, 20-39 the transport header, and the rest the
    application payload.  Special tokens are skipped and do not advance the
    byte offset.
    """
    groups: dict[str, list[int]] = defaultdict(list)
    offset = 0
    for position, token in enumerate(tokens):
        if token in SPECIAL_TOKENS:
            continue
        if offset < 20:
            region = "ip-header"
        elif offset < 40:
            region = "transport-header"
        else:
            region = "payload"
        groups[region].append(position)
        offset += 1
    return dict(groups)
