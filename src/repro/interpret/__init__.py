"""``repro.interpret`` — interpretability for network foundation models (Section 4.4)."""

from .attention import attention_rollout, cls_attention
from .faithfulness import deletion_score, faithfulness_gap, random_deletion_score
from .integrated_gradients import integrated_gradients
from .occlusion import grouped_occlusion_saliency, occlusion_saliency
from .superfield import byte_region_superfields, field_superfields, packet_superfields

__all__ = [
    "cls_attention",
    "attention_rollout",
    "occlusion_saliency",
    "grouped_occlusion_saliency",
    "integrated_gradients",
    "field_superfields",
    "packet_superfields",
    "byte_region_superfields",
    "deletion_score",
    "random_deletion_score",
    "faithfulness_gap",
]
