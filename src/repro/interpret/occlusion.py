"""Occlusion (perturbation) saliency: mask a token or group and measure the drop.

Model-agnostic, works for both the foundation model and the GRU baseline, and
is the basis of the "superfield" explanations — the networking analogue of
superpixels the paper suggests in Section 4.4.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["occlusion_saliency", "grouped_occlusion_saliency"]

PredictFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
"""Signature: (token_ids, attention_mask) -> class probabilities (N, C)."""


def occlusion_saliency(
    predict_proba: PredictFn,
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    target_class: int,
    mask_token_id: int,
    positions: Sequence[int] | None = None,
) -> np.ndarray:
    """Per-position saliency for one example.

    Each position is replaced (one at a time) with ``mask_token_id`` and the
    saliency is the drop in the target class probability.

    Parameters
    ----------
    token_ids, attention_mask:
        Arrays of shape ``(seq,)`` for a single example.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    if token_ids.ndim != 1:
        raise ValueError("occlusion_saliency expects a single (seq,) example")
    if positions is None:
        positions = [i for i in range(len(token_ids)) if attention_mask[i]]

    base = predict_proba(token_ids[None, :], attention_mask[None, :])[0, target_class]
    variants = np.tile(token_ids, (len(positions), 1))
    for row, position in enumerate(positions):
        variants[row, position] = mask_token_id
    masks = np.tile(attention_mask, (len(positions), 1))
    probabilities = predict_proba(variants, masks)[:, target_class]

    saliency = np.zeros(len(token_ids))
    for row, position in enumerate(positions):
        saliency[position] = base - probabilities[row]
    return saliency


def grouped_occlusion_saliency(
    predict_proba: PredictFn,
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    target_class: int,
    mask_token_id: int,
    groups: dict[str, list[int]],
) -> dict[str, float]:
    """Saliency of *groups* of positions, occluded together.

    ``groups`` maps a group name (e.g. a protocol field, or a packet index)
    to the token positions it covers.  Occluding a whole group at once is the
    superfield analogue of superpixels: explanations are produced at the level
    of semantically meaningful units rather than individual tokens.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    base = predict_proba(token_ids[None, :], attention_mask[None, :])[0, target_class]

    names = list(groups)
    variants = np.tile(token_ids, (len(names), 1))
    for row, name in enumerate(names):
        for position in groups[name]:
            if 0 <= position < variants.shape[1]:
                variants[row, position] = mask_token_id
    masks = np.tile(attention_mask, (len(names), 1))
    probabilities = predict_proba(variants, masks)[:, target_class]
    return {name: float(base - probabilities[row]) for row, name in enumerate(names)}
