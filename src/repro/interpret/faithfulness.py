"""Faithfulness metrics for explanations: deletion / insertion curves.

An explanation is faithful if removing the tokens it marks as important
actually changes the model's prediction.  The deletion metric removes the
top-k most important positions (by the explanation) and records the drop in
the predicted class probability; comparing that drop against deleting random
positions quantifies how much better than chance the explanation is.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .occlusion import PredictFn

__all__ = ["deletion_score", "random_deletion_score", "faithfulness_gap"]


def _apply_deletion(
    token_ids: np.ndarray, positions: Sequence[int], mask_token_id: int
) -> np.ndarray:
    modified = np.asarray(token_ids, dtype=np.int64).copy()
    for position in positions:
        modified[position] = mask_token_id
    return modified


def deletion_score(
    predict_proba: PredictFn,
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    target_class: int,
    saliency: np.ndarray,
    mask_token_id: int,
    fraction: float = 0.2,
) -> float:
    """Probability drop after deleting the top-``fraction`` most salient tokens."""
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    saliency = np.asarray(saliency, dtype=float)
    valid = np.nonzero(attention_mask)[0]
    k = max(int(round(fraction * len(valid))), 1)
    ranked = valid[np.argsort(-saliency[valid])][:k]
    base = predict_proba(token_ids[None, :], attention_mask[None, :])[0, target_class]
    deleted = _apply_deletion(token_ids, ranked, mask_token_id)
    after = predict_proba(deleted[None, :], attention_mask[None, :])[0, target_class]
    return float(base - after)


def random_deletion_score(
    predict_proba: PredictFn,
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    target_class: int,
    mask_token_id: int,
    fraction: float = 0.2,
    rng: np.random.Generator | None = None,
    repeats: int = 5,
) -> float:
    """Average probability drop after deleting the same number of random tokens."""
    rng = rng or np.random.default_rng(0)
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    valid = np.nonzero(attention_mask)[0]
    k = max(int(round(fraction * len(valid))), 1)
    base = predict_proba(token_ids[None, :], attention_mask[None, :])[0, target_class]
    drops = []
    for _ in range(repeats):
        chosen = rng.choice(valid, size=min(k, len(valid)), replace=False)
        deleted = _apply_deletion(token_ids, chosen, mask_token_id)
        after = predict_proba(deleted[None, :], attention_mask[None, :])[0, target_class]
        drops.append(base - after)
    return float(np.mean(drops))


def faithfulness_gap(
    predict_proba: PredictFn,
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    target_class: int,
    saliency: np.ndarray,
    mask_token_id: int,
    fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Deletion drop of the explanation minus that of a random explanation."""
    explained = deletion_score(
        predict_proba, token_ids, attention_mask, target_class, saliency, mask_token_id, fraction
    )
    random_drop = random_deletion_score(
        predict_proba, token_ids, attention_mask, target_class, mask_token_id, fraction, rng
    )
    return {"explained": explained, "random": random_drop, "gap": explained - random_drop}
