"""Integrated gradients on the foundation model's input embeddings.

Axiomatic attribution (Sundararajan et al.), one of the interpretation methods
the paper cites.  Gradients are taken with respect to the token embeddings
while interpolating between a zero baseline and the actual embeddings.
"""

from __future__ import annotations

import numpy as np

from ..core.finetuning import SequenceClassifier
from ..nn.autograd import Tensor

__all__ = ["integrated_gradients"]


def integrated_gradients(
    classifier: SequenceClassifier,
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    target_class: int,
    steps: int = 16,
) -> np.ndarray:
    """Per-token attribution for a single example.

    Returns an array of shape ``(seq,)`` with the integrated-gradient
    attribution of each input position toward ``target_class`` (the dot
    product of the accumulated embedding gradients with the embedding itself,
    i.e. the usual token-level reduction).
    """
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    if token_ids.ndim != 1:
        raise ValueError("integrated_gradients expects a single (seq,) example")
    if steps < 1:
        raise ValueError("steps must be at least 1")

    model = classifier.model
    classifier.eval()
    full_embedding = model.embed_tokens(token_ids[None, :]).data
    accumulated = np.zeros_like(full_embedding)

    for step in range(1, steps + 1):
        alpha = step / steps
        scaled = Tensor(full_embedding * alpha, requires_grad=True)
        hidden = model(
            attention_mask=attention_mask[None, :],
            inputs_embeds=scaled,
        )
        cls = hidden[:, 0, :]
        logits = classifier.head(cls)
        log_probs = logits.log_softmax(axis=-1)
        objective = log_probs[:, int(target_class)].sum()
        objective.backward()
        if scaled.grad is not None:
            accumulated += scaled.grad
    classifier.train()

    average_gradient = accumulated / steps
    attributions = (average_gradient * full_embedding).sum(axis=-1)[0]
    attributions[~attention_mask] = 0.0
    return attributions
