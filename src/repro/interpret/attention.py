"""Attention-based explanations: per-token attention and attention rollout."""

from __future__ import annotations

import numpy as np

__all__ = ["cls_attention", "attention_rollout"]


def cls_attention(attention_maps: list[np.ndarray], layer: int = -1) -> np.ndarray:
    """Attention paid by the ``[CLS]`` position, averaged over heads.

    Parameters
    ----------
    attention_maps:
        Per-layer arrays of shape ``(batch, heads, seq, seq)`` as returned by
        :meth:`repro.core.model.NetFoundationModel.attention_maps`.
    layer:
        Which layer to read (default: last).

    Returns
    -------
    Array of shape ``(batch, seq)``: how much CLS attends to each position.
    """
    if not attention_maps:
        raise ValueError("no attention maps recorded; run a forward pass first")
    chosen = attention_maps[layer]
    return chosen.mean(axis=1)[:, 0, :]


def attention_rollout(attention_maps: list[np.ndarray], add_residual: bool = True) -> np.ndarray:
    """Attention rollout (Abnar & Zuidema): multiply per-layer attention.

    Accounts for residual connections by averaging each layer's attention with
    the identity before multiplying layers together.  Returns the rolled-out
    attention of the CLS position over input tokens, shape ``(batch, seq)``.
    """
    if not attention_maps:
        raise ValueError("no attention maps recorded; run a forward pass first")
    rollout = None
    for layer_map in attention_maps:
        averaged = layer_map.mean(axis=1)  # (batch, seq, seq)
        if add_residual:
            identity = np.eye(averaged.shape[-1])[None, :, :]
            averaged = 0.5 * averaged + 0.5 * identity
        averaged = averaged / averaged.sum(axis=-1, keepdims=True)
        rollout = averaged if rollout is None else np.matmul(rollout, averaged)
    return rollout[:, 0, :]
