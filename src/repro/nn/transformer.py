"""Transformer encoder blocks (the BERT-style backbone of the foundation model)."""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention
from .autograd import Tensor, as_tensor
from .layers import Dropout, Linear, LayerNorm
from .module import Module, ModuleList

__all__ = ["TransformerEncoderLayer", "TransformerEncoder", "PositionalEmbedding"]


class PositionalEmbedding(Module):
    """Learned absolute positional embeddings (as in BERT)."""

    def __init__(self, max_len: int, d_model: int, rng: np.random.Generator | None = None):
        super().__init__()
        from .layers import Embedding

        self.max_len = max_len
        self.table = Embedding(max_len, d_model, rng=rng)

    def forward(self, seq_len: int, batch: int) -> Tensor:
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds maximum {self.max_len}")
        positions = np.tile(np.arange(seq_len), (batch, 1))
        return self.table(positions)


class TransformerEncoderLayer(Module):
    """Pre-LayerNorm transformer encoder layer.

    Pre-norm is used (rather than BERT's original post-norm) because it is
    markedly more stable to train without learning-rate warmup at the small
    scales this library targets.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
        fused: bool = True,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadAttention(
            d_model, num_heads, dropout=dropout, rng=rng, fused=fused
        )
        self.norm1 = LayerNorm(d_model, fused=fused)
        self.norm2 = LayerNorm(d_model, fused=fused)
        self.ff_in = Linear(d_model, d_ff, rng=rng)
        self.ff_out = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x, attention_mask: np.ndarray | None = None) -> Tensor:
        x = as_tensor(x)
        attended = self.attention(self.norm1(x), attention_mask=attention_mask)
        x = x + attended
        hidden = self.ff_out(self.ff_in(self.norm2(x)).gelu())
        return x + self.dropout(hidden)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` with a final LayerNorm."""

    def __init__(
        self,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
        fused: bool = True,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    d_model, num_heads, d_ff, dropout=dropout, rng=rng, fused=fused
                )
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(d_model, fused=fused)

    def forward(self, x, attention_mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_mask=attention_mask)
        return self.final_norm(x)

    def attention_maps(self) -> list[np.ndarray]:
        """Attention weights from the most recent forward pass, one per layer."""
        maps = []
        for layer in self.layers:
            if layer.attention.last_attention is not None:
                maps.append(layer.attention.last_attention)
        return maps
