"""Learning-rate schedules (constant, linear warmup/decay, cosine)."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRSchedule", "ConstantSchedule", "WarmupLinearSchedule", "CosineSchedule"]


class LRSchedule:
    """Base class: multiplies the optimizer's base learning rate each step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def multiplier(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and return the learning rate now in effect."""
        self.step_count += 1
        lr = self.base_lr * self.multiplier(self.step_count)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule(LRSchedule):
    def multiplier(self, step: int) -> float:
        return 1.0


class WarmupLinearSchedule(LRSchedule):
    """Linear warmup to the base LR then linear decay to zero (BERT's schedule)."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(warmup_steps, 1)
        self.total_steps = total_steps

    def multiplier(self, step: int) -> float:
        if step < self.warmup_steps:
            return step / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        span = max(self.total_steps - self.warmup_steps, 1)
        return remaining / span


class CosineSchedule(LRSchedule):
    """Cosine decay from the base LR to ``min_factor * base LR``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_factor: float = 0.1):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps
        self.min_factor = min_factor

    def multiplier(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_factor + (1.0 - self.min_factor) * cosine
