"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The paper assumes the PyTorch / HuggingFace ecosystem; this subpackage
replaces it with a self-contained implementation: reverse-mode autograd,
layers (Linear, Embedding, LayerNorm, attention, transformer encoder, GRU),
losses, optimizers, LR schedules, metrics, a generic trainer and
checkpointing.
"""

from .autograd import Tensor, as_tensor, no_grad, tensor_allocations
from .kernels import (
    ScratchPool,
    fused_attention,
    fused_cross_entropy,
    fused_layer_norm,
    fused_masked_cross_entropy,
    scratch_allocations,
)
from .module import Module, ModuleList, Parameter, Sequential
from .layers import Dropout, Embedding, GELU, LayerNorm, Linear, ReLU, Sigmoid, Tanh
from .attention import MultiHeadAttention, scaled_dot_product_attention
from .transformer import PositionalEmbedding, TransformerEncoder, TransformerEncoderLayer
from .recurrent import GRU, GRUCell
from .losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    mae_loss,
    masked_cross_entropy,
    mse_loss,
)
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .schedules import ConstantSchedule, CosineSchedule, LRSchedule, WarmupLinearSchedule
from .metrics import (
    accuracy,
    auroc,
    average_precision,
    classification_report,
    confusion_matrix,
    fpr_at_tpr,
    macro_f1,
    micro_f1,
    precision_recall_f1,
    weighted_f1,
)
from .data import PackedBatch, batch_indices, iterate_minibatches, pack_batches, train_test_split
from .serialization import load_checkpoint, load_state, save_checkpoint, save_state
from .trainer import Trainer, TrainingHistory

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "tensor_allocations",
    "ScratchPool",
    "scratch_allocations",
    "fused_attention",
    "fused_layer_norm",
    "fused_cross_entropy",
    "fused_masked_cross_entropy",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "PositionalEmbedding",
    "GRU",
    "GRUCell",
    "cross_entropy",
    "masked_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "mae_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "LRSchedule",
    "ConstantSchedule",
    "WarmupLinearSchedule",
    "CosineSchedule",
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
    "micro_f1",
    "weighted_f1",
    "auroc",
    "fpr_at_tpr",
    "average_precision",
    "classification_report",
    "PackedBatch",
    "batch_indices",
    "iterate_minibatches",
    "pack_batches",
    "train_test_split",
    "save_checkpoint",
    "load_checkpoint",
    "save_state",
    "load_state",
    "Trainer",
    "TrainingHistory",
]
