"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate.  The paper's
envisioned system ("a BERT for packets") assumes a deep-learning framework;
none is available offline, so we implement a small but complete reverse-mode
autograd engine from scratch.  The design mirrors the familiar
define-by-run model:

* :class:`Tensor` wraps a ``numpy.ndarray`` together with an optional
  gradient and a closure that propagates gradients to its parents.
* Every differentiable operation builds a node in an implicit DAG.
* :meth:`Tensor.backward` performs a topological sort of the DAG and runs
  each node's backward closure exactly once, accumulating gradients into
  every tensor that has ``requires_grad`` set.

Only the operations needed by the library (transformers, GRUs, embedding
models, classifiers) are implemented, but each handles NumPy broadcasting
correctly so that the layers above can be written naturally.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]


# Grad mode is per-thread (like torch): concurrent no_grad() windows in
# different threads — e.g. the serving fabric's inference workers — must not
# race on one flag, where interleaved save/restores can strand the process
# with gradients disabled.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used for evaluation and for in-place parameter updates inside
    optimizers, exactly like ``torch.no_grad()``.  The flag is thread-local,
    so a window opened in one thread never affects another.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations in this thread record gradients."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting can expand operands along new leading axes or along
    axes of size one; the gradient of a broadcast operand is the sum over
    the broadcast axes.
    """
    grad = np.asarray(grad)
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Integer inputs are promoted to
        ``float64`` so that gradients are always well defined.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional human-readable label, useful when debugging parameter
        collections.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype == object:
            raise TypeError("Tensor data must be numeric, got object dtype")
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float64)
        self.data: np.ndarray = array
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _result(cls, data: np.ndarray, parents: tuple["Tensor", ...]) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = parents
        return out

    def _add_grad(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` (unbroadcast to this tensor's shape)."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(grad, self.data.shape).astype(self.data.dtype, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate through the graph rooted at this tensor.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ones, which is only valid for scalar tensors
            (matching the usual ``loss.backward()`` idiom).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        self._add_grad(np.asarray(grad, dtype=self.data.dtype))

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor._result(self.data + other.data, (self, other))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad)
                other._add_grad(out.grad)
            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor._result(-self.data, (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(-out.grad)
            out._backward = backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor._result(self.data * other.data, (self, other))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * other.data)
                other._add_grad(out.grad * self.data)
            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor._result(self.data / other.data, (self, other))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad / other.data)
                other._add_grad(-out.grad * self.data / (other.data ** 2))
            out._backward = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = Tensor._result(self.data ** exponent, (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * exponent * self.data ** (exponent - 1))
            out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor._result(self.data @ other.data, (self, other))
        if out.requires_grad:
            def backward() -> None:
                grad = out.grad
                a, b = self.data, other.data
                if a.ndim == 1 and b.ndim == 1:
                    self._add_grad(grad * b)
                    other._add_grad(grad * a)
                    return
                if a.ndim == 1:
                    a2 = a.reshape(1, -1)
                    grad2 = np.expand_dims(grad, -2)
                    self._add_grad((grad2 @ np.swapaxes(b, -1, -2)).reshape(a.shape))
                    other._add_grad(np.swapaxes(a2, -1, -2) @ grad2)
                    return
                if b.ndim == 1:
                    b2 = b.reshape(-1, 1)
                    grad2 = np.expand_dims(grad, -1)
                    self._add_grad(grad2 @ b2.T)
                    other._add_grad((np.swapaxes(a, -1, -2) @ grad2).reshape(b.shape))
                    return
                self._add_grad(grad @ np.swapaxes(b, -1, -2))
                other._add_grad(np.swapaxes(a, -1, -2) @ grad)
            out._backward = backward
        return out

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor._result(out_data, (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * out_data)
            out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._result(np.log(self.data), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad / self.data)
            out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = Tensor._result(out_data, (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * (1.0 - out_data ** 2))
            out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor._result(out_data, (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * out_data * (1.0 - out_data))
            out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor._result(self.data * mask, (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * mask)
            out._backward = backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as used by BERT)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        out = Tensor._result(0.5 * x * (1.0 + tanh_inner), (self,))
        if out.requires_grad:
            def backward() -> None:
                sech2 = 1.0 - tanh_inner ** 2
                d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
                local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._add_grad(out.grad * local)
            out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out = Tensor._result(np.clip(self.data, low, high), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * mask)
            out._backward = backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = Tensor._result(np.abs(self.data), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(out.grad * sign)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def backward() -> None:
                g = np.asarray(out.grad)
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.data.ndim for a in axes):
                        g = np.expand_dims(g, ax)
                self._add_grad(np.broadcast_to(g, self.data.shape))
            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / max(count, 1))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.max(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def backward() -> None:
                g = np.asarray(out.grad)
                expanded = self.data.max(axis=axis, keepdims=True)
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.data.ndim for a in axes):
                        g = np.expand_dims(g, ax)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                self._add_grad(mask * g)
            out._backward = backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._result(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(np.asarray(out.grad).reshape(self.data.shape))
            out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        out = Tensor._result(self.data.transpose(axes), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(np.asarray(out.grad).transpose(inverse))
            out._backward = backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out = Tensor._result(self.data[index], (self,))
        if out.requires_grad:
            def backward() -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, index, np.asarray(out.grad))
                self._add_grad(full)
            out._backward = backward
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        out = Tensor._result(np.expand_dims(self.data, axis), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(np.asarray(out.grad).reshape(self.data.shape))
            out._backward = backward
        return out

    def squeeze(self, axis: int | None = None) -> "Tensor":
        out = Tensor._result(np.squeeze(self.data, axis=axis), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(np.asarray(out.grad).reshape(self.data.shape))
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Composite ops used by layers
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor where positions with ``mask`` True are set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        keep = (~mask).astype(self.data.dtype)
        out = Tensor._result(np.where(mask, value, self.data), (self,))
        if out.requires_grad:
            def backward() -> None:
                self._add_grad(np.asarray(out.grad) * keep)
            out._backward = backward
        return out

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        out = Tensor._result(out_data, tuple(tensors))
        if out.requires_grad:
            def backward() -> None:
                grad = np.asarray(out.grad)
                for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(int(start), int(stop))
                    tensor._add_grad(grad[tuple(slicer)])
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)

    @staticmethod
    def take_rows(table: "Tensor", indices: np.ndarray) -> "Tensor":
        """Differentiable row lookup ``table[indices]`` used by embeddings."""
        indices = np.asarray(indices, dtype=np.int64)
        out = Tensor._result(table.data[indices], (table,))
        if out.requires_grad:
            def backward() -> None:
                full = np.zeros_like(table.data)
                np.add.at(
                    full,
                    indices.reshape(-1),
                    np.asarray(out.grad).reshape(-1, table.data.shape[-1]),
                )
                table._add_grad(full)
            out._backward = backward
        return out
