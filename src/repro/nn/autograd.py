"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate.  The paper's
envisioned system ("a BERT for packets") assumes a deep-learning framework;
none is available offline, so we implement a small but complete reverse-mode
autograd engine from scratch.  The design mirrors the familiar
define-by-run model:

* :class:`Tensor` wraps a ``numpy.ndarray`` together with an optional
  gradient and a tape node that knows how to propagate gradients to its
  parents.
* Every differentiable operation builds a node in an implicit DAG.
* :meth:`Tensor.backward` performs a topological sort of the DAG and runs
  each node's VJP exactly once, accumulating gradients into every tensor
  that has ``requires_grad`` set.

Tape nodes are slot-based records pointing at module-level VJP functions
(rather than per-op closures), which keeps graph construction cheap: no
closure cells are allocated on the hot path, and the per-op Python overhead
is one small object plus a tuple.  Gradient accumulation is in-place after
the first contribution (``np.add(..., out=...)``), and parameters can keep a
preallocated gradient buffer alive across steps via
``zero_grad(set_to_none=False)`` so that steady-state training performs no
gradient allocations at all (see :data:`Tensor.has_grad`).

Only the operations needed by the library (transformers, GRUs, embedding
models, classifiers) are implemented, but each handles NumPy broadcasting
correctly so that the layers above can be written naturally.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor", "tensor_allocations"]


# Grad mode is per-thread (like torch): concurrent no_grad() windows in
# different threads — e.g. the serving fabric's inference workers — must not
# race on one flag, where interleaved save/restores can strand the process
# with gradients disabled.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used for evaluation and for in-place parameter updates inside
    optimizers, exactly like ``torch.no_grad()``.  The flag is thread-local,
    so a window opened in one thread never affects another.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations in this thread record gradients."""
    return getattr(_GRAD_STATE, "enabled", True)


# Count of Tensor objects created since process start.  The trainer samples
# this around each step so the E14 ``train_step`` gate can assert that the
# per-step graph size is stable (no accidental graph growth / leaks).
_TENSOR_ALLOCS = 0


def tensor_allocations() -> int:
    """Total number of :class:`Tensor` objects constructed so far."""
    return _TENSOR_ALLOCS


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting can expand operands along new leading axes or along
    axes of size one; the gradient of a broadcast operand is the sum over
    the broadcast axes.
    """
    grad = np.asarray(grad)
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class _Node:
    """One tape entry: a VJP function plus everything it needs.

    ``fn(grad, parents, saved)`` returns a tuple of gradients aligned with
    ``parents`` (entries may be ``None`` for parents that do not require
    grad).  ``saved`` is an opaque tuple of forward-pass residuals.
    """

    __slots__ = ("fn", "parents", "saved")

    def __init__(self, fn, parents, saved):
        self.fn = fn
        self.parents = parents
        self.saved = saved


# ----------------------------------------------------------------------
# Module-level VJP functions (no closures: one shared function per op)
# ----------------------------------------------------------------------

def _vjp_add(grad, parents, saved):
    return grad, grad


def _vjp_sub(grad, parents, saved):
    return grad, -grad


def _vjp_first(grad, parents, saved):
    # tensor (+|-) python-scalar: the scalar is a constant, grad passes through.
    return (grad,)


def _vjp_scalar_mul(grad, parents, saved):
    (scalar,) = saved
    return (grad * scalar,)


def _vjp_scalar_div(grad, parents, saved):
    (scalar,) = saved
    return (grad / scalar,)


def _vjp_scalar_rdiv(grad, parents, saved):
    (scalar,) = saved
    (a,) = parents
    return (-grad * scalar / (a.data ** 2),)


def _vjp_neg(grad, parents, saved):
    return (-grad,)


def _vjp_mul(grad, parents, saved):
    a, b = parents
    ga = grad * b.data if a.requires_grad else None
    gb = grad * a.data if b.requires_grad else None
    return ga, gb


def _vjp_div(grad, parents, saved):
    a, b = parents
    ga = grad / b.data if a.requires_grad else None
    gb = -grad * a.data / (b.data ** 2) if b.requires_grad else None
    return ga, gb


def _vjp_pow(grad, parents, saved):
    (a,) = parents
    (exponent,) = saved
    return (grad * exponent * a.data ** (exponent - 1),)


def _vjp_matmul(grad, parents, saved):
    at, bt = parents
    a, b = at.data, bt.data
    if a.ndim == 1 and b.ndim == 1:
        return grad * b, grad * a
    if a.ndim == 1:
        a2 = a.reshape(1, -1)
        grad2 = np.expand_dims(grad, -2)
        ga = (grad2 @ np.swapaxes(b, -1, -2)).reshape(a.shape) if at.requires_grad else None
        gb = np.swapaxes(a2, -1, -2) @ grad2 if bt.requires_grad else None
        return ga, gb
    if b.ndim == 1:
        b2 = b.reshape(-1, 1)
        grad2 = np.expand_dims(grad, -1)
        ga = grad2 @ b2.T if at.requires_grad else None
        gb = (np.swapaxes(a, -1, -2) @ grad2).reshape(b.shape) if bt.requires_grad else None
        return ga, gb
    ga = grad @ np.swapaxes(b, -1, -2) if at.requires_grad else None
    gb = np.swapaxes(a, -1, -2) @ grad if bt.requires_grad else None
    return ga, gb


def _vjp_exp(grad, parents, saved):
    (out_data,) = saved
    return (grad * out_data,)


def _vjp_log(grad, parents, saved):
    (a,) = parents
    return (grad / a.data,)


def _vjp_tanh(grad, parents, saved):
    (out_data,) = saved
    return (grad * (1.0 - out_data ** 2),)


def _vjp_sigmoid(grad, parents, saved):
    (out_data,) = saved
    return (grad * out_data * (1.0 - out_data),)


def _vjp_mask(grad, parents, saved):
    # Shared by relu / clip / abs / masked_fill: local gradient is a saved
    # elementwise factor.
    (factor,) = saved
    return (grad * factor,)


_GELU_C = float(np.sqrt(2.0 / np.pi))


def _vjp_gelu(grad, parents, saved):
    # In-place chaining of the closed-form derivative
    #   0.5 (1 + tanh) + 0.5 x sech^2 * C (1 + 3 * 0.044715 x^2)
    # with the original evaluation order preserved (commutative ufuncs
    # only), so values are bitwise unchanged while temporaries drop from
    # eight arrays to four.
    (a,) = parents
    (tanh_inner,) = saved
    x = a.data
    d_inner = x ** 2
    d_inner *= 3 * 0.044715
    d_inner += 1.0
    d_inner *= _GELU_C
    sech2 = tanh_inner ** 2
    np.subtract(1.0, sech2, out=sech2)
    local = x * 0.5
    local *= sech2
    local *= d_inner
    out = tanh_inner + 1.0
    out *= 0.5
    out += local
    np.multiply(grad, out, out=out)
    return (out,)


def _expand_reduced(grad, axis, ndim):
    """Re-insert reduced axes so ``grad`` broadcasts against the input."""
    g = np.asarray(grad)
    axes = axis if isinstance(axis, tuple) else (axis,)
    for ax in sorted(a % ndim for a in axes):
        g = np.expand_dims(g, ax)
    return g


def _vjp_sum(grad, parents, saved):
    (a,) = parents
    axis, keepdims = saved
    g = np.asarray(grad)
    if axis is not None and not keepdims:
        g = _expand_reduced(g, axis, a.data.ndim)
    return (np.broadcast_to(g, a.data.shape),)


def _vjp_max(grad, parents, saved):
    (a,) = parents
    axis, keepdims = saved
    g = np.asarray(grad)
    expanded = a.data.max(axis=axis, keepdims=True)
    if axis is not None and not keepdims:
        g = _expand_reduced(g, axis, a.data.ndim)
    mask = (a.data == expanded).astype(a.data.dtype)
    mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
    return (mask * g,)


def _vjp_reshape(grad, parents, saved):
    (a,) = parents
    return (np.asarray(grad).reshape(a.data.shape),)


def _vjp_transpose(grad, parents, saved):
    (inverse,) = saved
    return (np.asarray(grad).transpose(inverse),)


def _vjp_getitem(grad, parents, saved):
    (a,) = parents
    (index,) = saved
    full = np.zeros_like(a.data)
    np.add.at(full, index, np.asarray(grad))
    return (full,)


def _vjp_concatenate(grad, parents, saved):
    axis, offsets = saved
    grad = np.asarray(grad)
    grads = []
    slicer = [slice(None)] * grad.ndim
    for tensor, start, stop in zip(parents, offsets[:-1], offsets[1:]):
        if tensor.requires_grad:
            slicer[axis] = slice(int(start), int(stop))
            grads.append(grad[tuple(slicer)])
        else:
            grads.append(None)
    return tuple(grads)


def _vjp_take_rows(grad, parents, saved):
    (table,) = parents
    (indices,) = saved
    full = np.zeros_like(table.data)
    np.add.at(
        full,
        indices.reshape(-1),
        np.asarray(grad).reshape(-1, table.data.shape[-1]),
    )
    return (full,)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Integer inputs are promoted to
        ``float64`` so that gradients are always well defined.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional human-readable label, useful when debugging parameter
        collections.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_node", "_grad_stale")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        global _TENSOR_ALLOCS
        _TENSOR_ALLOCS += 1
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype == object:
            raise TypeError("Tensor data must be numeric, got object dtype")
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float64)
        self.data: np.ndarray = array
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self.name = name
        self._node: _Node | None = None
        self._grad_stale = False

    @classmethod
    def _make(cls, data: np.ndarray, requires_grad: bool) -> "Tensor":
        """Fast construction for op results: ``data`` is already a float array."""
        global _TENSOR_ALLOCS
        _TENSOR_ALLOCS += 1
        out = cls.__new__(cls)
        out.data = data
        out.requires_grad = requires_grad
        out.grad = None
        out.name = ""
        out._node = None
        out._grad_stale = False
        return out

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    @property
    def has_grad(self) -> bool:
        """Whether a gradient has actually been accumulated.

        With preallocated gradient buffers (``zero_grad(set_to_none=False)``)
        ``grad`` stays a zero-filled array between steps; ``has_grad``
        distinguishes "zero buffer, untouched this step" from "a backward
        pass contributed here", so optimizers can skip parameters that did
        not participate in the loss exactly as they do when ``grad is None``.
        """
        return self.grad is not None and not self._grad_stale

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear the accumulated gradient.

        With ``set_to_none=False`` the gradient buffer is kept and filled
        with zeros in place, so steady-state training reuses one buffer per
        parameter instead of reallocating each step.
        """
        if set_to_none:
            self.grad = None
            self._grad_stale = False
        elif self.grad is not None:
            self.grad.fill(0.0)
            self._grad_stale = True

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _result(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        fn: Callable | None = None,
        saved: tuple = (),
    ) -> "Tensor":
        requires = False
        if is_grad_enabled():
            for p in parents:
                if p.requires_grad:
                    requires = True
                    break
        out = cls._make(np.asarray(data), requires)
        if requires and fn is not None:
            out._node = _Node(fn, parents, saved)
        return out

    def _add_grad(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` (unbroadcast to this tensor's shape)."""
        if not self.requires_grad:
            return
        data = self.data
        grad = _unbroadcast(grad, data.shape).astype(data.dtype, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        elif self._grad_stale and self.grad.shape == grad.shape:
            # Preallocated buffer, first contribution this step: overwrite.
            np.copyto(self.grad, grad)
        else:
            np.add(self.grad, grad, out=self.grad)
        self._grad_stale = False

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate through the graph rooted at this tensor.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ones, which is only valid for scalar tensors
            (matching the usual ``loss.backward()`` idiom).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        self._add_grad(np.asarray(grad, dtype=self.data.dtype))

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            tape = node._node
            if tape is not None:
                for parent in tape.parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        for tensor in reversed(order):
            tape = tensor._node
            if tape is None or tensor.grad is None:
                continue
            grads = tape.fn(tensor.grad, tape.parents, tape.saved)
            for parent, g in zip(tape.parents, grads):
                if g is not None:
                    parent._add_grad(g)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    # Python scalars in arithmetic stay *Python* scalars (NEP 50 weak
    # promotion) instead of being wrapped as 0-d float64 tensors: a float64
    # wrapper would silently upcast every float32 activation it touches,
    # and the wrapper Tensor is pure overhead on the composed hot path.
    # float64 results are bit-identical either way (same ufunc, same
    # double value); float32 results now *stay* float32, matching the
    # fused kernels' dtype discipline.
    def __add__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return Tensor._result(self.data + other, (self,), _vjp_first)
        other = as_tensor(other)
        return Tensor._result(self.data + other.data, (self, other), _vjp_add)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._result(-self.data, (self,), _vjp_neg)

    def __sub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return Tensor._result(self.data - other, (self,), _vjp_first)
        other = as_tensor(other)
        return Tensor._result(self.data - other.data, (self, other), _vjp_sub)

    def __rsub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return Tensor._result(other - self.data, (self,), _vjp_neg)
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return Tensor._result(
                self.data * other, (self,), _vjp_scalar_mul, (other,)
            )
        other = as_tensor(other)
        return Tensor._result(self.data * other.data, (self, other), _vjp_mul)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return Tensor._result(
                self.data / other, (self,), _vjp_scalar_div, (other,)
            )
        other = as_tensor(other)
        return Tensor._result(self.data / other.data, (self, other), _vjp_div)

    def __rtruediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return Tensor._result(
                other / self.data, (self,), _vjp_scalar_rdiv, (other,)
            )
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return Tensor._result(self.data ** exponent, (self,), _vjp_pow, (exponent,))

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor._result(self.data @ other.data, (self, other), _vjp_matmul)

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._result(out_data, (self,), _vjp_exp, (out_data,))

    def log(self) -> "Tensor":
        return Tensor._result(np.log(self.data), (self,), _vjp_log)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._result(out_data, (self,), _vjp_tanh, (out_data,))

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._result(out_data, (self,), _vjp_sigmoid, (out_data,))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._result(self.data * mask, (self,), _vjp_mask, (mask,))

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as used by BERT)."""
        x = self.data
        # x * x * x, not x ** 3: NumPy's general power loop is ~80x slower
        # than two multiplies and this runs on every feed-forward hidden
        # activation — the single hottest elementwise op in the model.
        inner = _GELU_C * (x + 0.044715 * (x * x * x))
        tanh_inner = np.tanh(inner)
        return Tensor._result(
            0.5 * x * (1.0 + tanh_inner), (self,), _vjp_gelu, (tanh_inner,)
        )

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._result(np.clip(self.data, low, high), (self,), _vjp_mask, (mask,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._result(np.abs(self.data), (self,), _vjp_mask, (sign,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Tensor._result(
            self.data.sum(axis=axis, keepdims=keepdims),
            (self,),
            _vjp_sum,
            (axis, keepdims),
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / max(count, 1))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Tensor._result(
            self.data.max(axis=axis, keepdims=keepdims),
            (self,),
            _vjp_max,
            (axis, keepdims),
        )

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor._result(self.data.reshape(shape), (self,), _vjp_reshape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        return Tensor._result(
            self.data.transpose(axes), (self,), _vjp_transpose, (inverse,)
        )

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        return Tensor._result(self.data[index], (self,), _vjp_getitem, (index,))

    def expand_dims(self, axis: int) -> "Tensor":
        return Tensor._result(np.expand_dims(self.data, axis), (self,), _vjp_reshape)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        return Tensor._result(np.squeeze(self.data, axis=axis), (self,), _vjp_reshape)

    # ------------------------------------------------------------------
    # Composite ops used by layers
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor where positions with ``mask`` True are set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        keep = (~mask).astype(self.data.dtype)
        return Tensor._result(
            np.where(mask, value, self.data), (self,), _vjp_mask, (keep,)
        )

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = tuple(as_tensor(t) for t in tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        return Tensor._result(out_data, tensors, _vjp_concatenate, (axis, offsets))

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)

    @staticmethod
    def take_rows(table: "Tensor", indices: np.ndarray) -> "Tensor":
        """Differentiable row lookup ``table[indices]`` used by embeddings."""
        indices = np.asarray(indices, dtype=np.int64)
        return Tensor._result(table.data[indices], (table,), _vjp_take_rows, (indices,))
