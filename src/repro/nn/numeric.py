"""The eval numeric policy, as an executable contract.

Two numeric regimes coexist in this codebase:

* **Bit-exact (float64).**  The fused kernels and the serving fast path
  replay the composed op sequence exactly; logits are bit-identical to the
  reference and the differential harness asserts ``np.array_equal``.
* **Relaxed-ulp (float32 serving builds).**  The accelerated serving path
  repacks the hot gemms (one packed QKV gemm, head-packed 3D score/context
  gemms, gemv-against-ones reductions) so BLAS sees a few large matrices
  instead of many tiny ones.  Repacking reassociates floating-point
  accumulation, so bitwise equality is off the table — instead the contract
  is a **documented per-layer budget** against the float64 reference, plus
  *identical* class predictions and cache-hit patterns on the serving
  corpus.  This module is the harness that makes that contract falsifiable.

Distances are measured in **units in the last place** of the comparison
dtype: both arrays are viewed as IEEE-754 bit patterns, mapped to a
monotone integer ordering (negative floats reflect below zero, so the
distance across zero counts every representable value in between), and
differenced.  ``max_ulp_diff(a, b) == 0`` iff the arrays are bit-identical
up to the sign of zero; ``1`` means adjacent representable values.

Each layer's budget is a :class:`Budget` — an ulp bound paired with an
absolute floor.  The floor exists because elementwise ulps lose meaning
under cancellation: when a centered activation lands near zero, a harmless
``~1e-7`` absolute float32 rounding error spans astronomically many ulps of
the tiny value.  The contract is therefore two-sided: elements whose
absolute deviation is at or below the floor are within policy outright;
every element above it must meet the ulp bound.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = [
    "POLICY_BIT_EXACT_F64",
    "POLICY_RELAXED_ULP_F32",
    "Budget",
    "ULP_BUDGETS",
    "numeric_policy",
    "ulp_budget",
    "ulp_diff",
    "max_ulp_diff",
    "assert_within_ulp",
]

#: Policy identifier for float64 builds: fused forwards replay the composed
#: op order and outputs are bit-identical to the reference (budget 0 ulp).
POLICY_BIT_EXACT_F64 = "bit-exact-f64"

#: Policy identifier for float32 serving builds: accelerated packed-gemm
#: forwards stay within the per-layer :data:`ULP_BUDGETS` of the float64
#: reference (compared in float32 ulps after casting the reference down).
POLICY_RELAXED_ULP_F32 = "relaxed-ulp-f32"


class Budget(NamedTuple):
    """One layer's tolerance: an ulp bound plus an absolute floor.

    ``atol`` exempts cancellation-dominated elements (see module
    docstring); ``ulp`` binds everything above it.  The float64 policy is
    ``Budget(0, 0.0)`` — bit-exact.
    """

    ulp: int
    atol: float = 0.0


#: Per-layer float32 budgets for the relaxed policy, measured against the
#: float64 reference cast to float32.  Set from seeded sweeps at serving
#: shapes (see ``tests/test_nn_numeric.py``) with generous headroom over
#: the observed maxima; they bound *reassociation* error (packed gemms,
#: gemv reductions) on top of the irreducible f64->f32 rounding of weights
#: and activations.  Keys follow the kernel names; ``logits`` is the
#: end-to-end budget the serving gate enforces.
ULP_BUDGETS: dict[str, Budget] = {
    "layer_norm": Budget(ulp=256, atol=5e-7),
    "softmax": Budget(ulp=64, atol=5e-7),
    "attention": Budget(ulp=256, atol=1e-6),
    "cross_entropy": Budget(ulp=16, atol=0.0),
    "logits": Budget(ulp=4096, atol=1e-6),
}


def numeric_policy(dtype) -> str:
    """The policy identifier governing a model built in ``dtype``."""
    dt = np.dtype(dtype)
    if dt == np.float64:
        return POLICY_BIT_EXACT_F64
    if dt == np.float32:
        return POLICY_RELAXED_ULP_F32
    raise ValueError(f"no numeric policy for dtype {dt.name!r}")


def ulp_budget(layer: str, dtype="float32") -> Budget:
    """The documented :class:`Budget` for ``layer`` under ``dtype``'s policy.

    Float64 is governed by the bit-exact policy, so every layer's budget is
    ``Budget(0, 0.0)``; float32 looks the layer up in :data:`ULP_BUDGETS`.
    """
    if numeric_policy(dtype) == POLICY_BIT_EXACT_F64:
        return Budget(0, 0.0)
    try:
        return ULP_BUDGETS[layer]
    except KeyError:
        raise KeyError(
            f"no ulp budget documented for layer {layer!r} "
            f"(known: {sorted(ULP_BUDGETS)})"
        ) from None


def _ordered_ints(values: np.ndarray) -> np.ndarray:
    """Map float bit patterns to a monotone int64 ordering.

    IEEE-754 floats of one sign are ordered like their bit patterns;
    reflecting the negative half below zero makes the whole line monotone,
    so ulp distance is plain integer subtraction.  Both zeros map to 0.
    """
    if values.dtype == np.float32:
        bits = values.view(np.int32).astype(np.int64)
        return np.where(bits >= 0, bits, np.int64(-(2**31)) - bits)
    if values.dtype == np.float64:
        bits = values.view(np.int64)
        return np.where(bits >= 0, bits, np.int64(-(2**63)) - bits)
    raise TypeError(f"ulp distance is defined for float32/float64, got {values.dtype}")


def ulp_diff(actual, reference) -> np.ndarray:
    """Elementwise ulp distance between two same-shape float arrays.

    The comparison dtype is the *narrower* of the two: a float64 reference
    is cast down once, so the distance is measured in the serving dtype's
    ulps (casting f64->f32 rounds correctly, costing at most half an ulp).
    Returns float64 so special cases fit: NaN-vs-NaN compares equal (0),
    NaN against anything else and infinities of unequal value are ``inf``.
    """
    a = np.asarray(actual)
    b = np.asarray(reference)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    dtype = np.promote_types(a.dtype, b.dtype)
    if dtype == np.float64 and (a.dtype == np.float32 or b.dtype == np.float32):
        dtype = np.dtype(np.float32)
    a = a.astype(dtype, copy=False)
    b = b.astype(dtype, copy=False)

    oa = _ordered_ints(a)
    ob = _ordered_ints(b)
    # Same-sign orderings differ by < 2**63, so int64 subtraction is exact;
    # opposite-sign pairs can overflow and are rewritten from the absolute
    # orderings in float64 (only their magnitude matters at that distance).
    with np.errstate(over="ignore"):
        diff = np.abs(oa - ob).astype(np.float64)
    opposite = (oa < 0) != (ob < 0)
    if np.any(opposite):
        diff = np.where(
            opposite,
            np.abs(oa.astype(np.float64)) + np.abs(ob.astype(np.float64)),
            diff,
        )

    a_nan, b_nan = np.isnan(a), np.isnan(b)
    special = a_nan | b_nan | np.isinf(a) | np.isinf(b)
    if np.any(special):
        equal = (a == b) | (a_nan & b_nan)
        diff = np.where(special, np.where(equal, 0.0, np.inf), diff)
    return diff


def max_ulp_diff(actual, reference) -> float:
    """The largest elementwise ulp distance (0.0 for empty arrays)."""
    diff = ulp_diff(actual, reference)
    return float(diff.max()) if diff.size else 0.0


def assert_within_ulp(actual, reference, budget, what: str = "values") -> float:
    """Assert ``actual`` stays within ``budget`` of ``reference``.

    ``budget`` is a :class:`Budget` (or bare ulp count): elements whose
    absolute deviation is at or below ``budget.atol`` are within policy
    outright; every other element must be within ``budget.ulp`` ulps.
    Returns the measured maximum ulp distance over the binding elements
    (so callers can log headroom).  On failure the error names the worst
    element, its values in both arrays, and measured vs budgeted distance.
    """
    if isinstance(budget, tuple):
        ulp_max, atol = budget
    else:
        ulp_max, atol = budget, 0.0
    diff = ulp_diff(actual, reference)
    if atol > 0.0 and diff.size:
        a64 = np.asarray(actual, dtype=np.float64)
        b64 = np.asarray(reference, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            diff = np.where(np.abs(a64 - b64) <= atol, 0.0, diff)
    worst = float(diff.max()) if diff.size else 0.0
    if worst > ulp_max:
        index = np.unravel_index(int(np.argmax(diff)), diff.shape)
        a = np.asarray(actual)[index]
        b = np.asarray(reference)[index]
        raise AssertionError(
            f"{what}: max ulp distance {worst:g} exceeds budget {ulp_max:g} "
            f"(atol floor {atol:g}) at index {tuple(int(i) for i in index)}: "
            f"actual={a!r} reference={b!r}"
        )
    return worst
