"""Loss functions used across pre-training, fine-tuning and baselines."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, as_tensor
from .kernels import fused_cross_entropy, fused_masked_cross_entropy

__all__ = [
    "cross_entropy",
    "masked_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "mae_loss",
]


def cross_entropy(
    logits, targets: np.ndarray, label_smoothing: float = 0.0, fused: bool = True
) -> Tensor:
    """Mean cross-entropy between ``logits`` ``(N, C)`` and integer ``targets`` ``(N,)``.

    Parameters
    ----------
    label_smoothing:
        If non-zero, targets are smoothed toward the uniform distribution.
    fused:
        Compute as one tape node (bit-identical loss value, analytic
        backward).  ``False`` runs the composed reference ops below.
    """
    if fused:
        return fused_cross_entropy(logits, targets, label_smoothing)
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected logits of shape (N, C), got {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("logits and targets disagree on batch size")
    n, c = logits.shape
    log_probs = logits.log_softmax(axis=-1)
    one_hot = np.zeros((n, c))
    one_hot[np.arange(n), targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / c
    return -(log_probs * Tensor(one_hot)).sum(axis=-1).mean()


def masked_cross_entropy(
    logits, targets: np.ndarray, mask: np.ndarray, fused: bool = True
) -> Tensor:
    """Cross-entropy averaged over positions where ``mask`` is True.

    Used by masked token modeling: ``logits`` is ``(batch, seq, vocab)``,
    ``targets`` is ``(batch, seq)`` and ``mask`` marks the masked positions
    whose original tokens must be predicted.  ``fused=False`` selects the
    composed reference path (gather + :func:`cross_entropy`).
    """
    if fused:
        return fused_masked_cross_entropy(logits, targets, mask)
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    mask = np.asarray(mask, dtype=bool)
    if mask.sum() == 0:
        return Tensor(np.zeros(()), requires_grad=False)
    batch, seq, vocab = logits.shape
    flat_logits = logits.reshape(batch * seq, vocab)
    flat_targets = targets.reshape(-1)
    flat_mask = mask.reshape(-1)
    indices = np.nonzero(flat_mask)[0]
    selected = flat_logits[indices]
    return cross_entropy(selected, flat_targets[indices], fused=False)


def binary_cross_entropy_with_logits(logits, targets: np.ndarray) -> Tensor:
    """Numerically-stable binary cross-entropy on raw logits."""
    logits = as_tensor(logits)
    targets = Tensor(np.asarray(targets, dtype=float))
    # log(1 + exp(-|x|)) + max(x, 0) - x * t   (stable formulation)
    abs_logits = logits.abs()
    losses = logits.clip(0.0, np.inf) - logits * targets + ((-abs_logits).exp() + 1.0).log()
    return losses.mean()


def mse_loss(predictions, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    predictions = as_tensor(predictions)
    targets = Tensor(np.asarray(targets, dtype=float))
    diff = predictions - targets
    return (diff * diff).mean()


def mae_loss(predictions, targets: np.ndarray) -> Tensor:
    """Mean absolute error."""
    predictions = as_tensor(predictions)
    targets = Tensor(np.asarray(targets, dtype=float))
    return (predictions - targets).abs().mean()
