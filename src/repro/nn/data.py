"""Mini-batch iteration helpers shared by training loops.

Besides the classic index/array iterators, this module provides the
packed-batch fast path: :class:`PackedBatch` carries a batch whose sequence
dimension is trimmed to the longest *real* sequence it contains, and
:func:`pack_batches` forms length-bucketed batches so that sequences of
similar length travel together and almost no padding is computed on.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "PackedBatch",
    "batch_indices",
    "iterate_minibatches",
    "pack_batches",
    "train_test_split",
]


@dataclasses.dataclass
class PackedBatch:
    """One training batch with the padding tail trimmed off.

    Attributes
    ----------
    token_ids, attention_mask:
        ``(batch, width)`` arrays where ``width`` is the longest real length
        in the batch (not the corpus-wide padded width).
    indices:
        Rows of the source matrices this batch was drawn from.
    """

    token_ids: np.ndarray
    attention_mask: np.ndarray
    indices: np.ndarray

    def __len__(self) -> int:
        return len(self.token_ids)

    @property
    def width(self) -> int:
        return self.token_ids.shape[1] if self.token_ids.ndim == 2 else 0

    @property
    def num_tokens(self) -> int:
        """Number of real (non-padding) tokens in the batch."""
        return int(self.attention_mask.sum())

    @classmethod
    def from_rows(
        cls,
        token_ids: np.ndarray,
        attention_mask: np.ndarray,
        indices: np.ndarray,
        out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "PackedBatch":
        """Gather ``indices`` rows and trim to the longest real length.

        ``out`` optionally supplies reusable ``(ids, mask)`` buffers of shape
        at least ``(len(indices), source_width)``; the rows are gathered
        straight into them (``np.take(..., out=...)``, no temporaries) and
        the returned batch holds views into them — only safe when each batch
        is consumed before the next is formed.
        """
        indices = np.asarray(indices)
        n = len(indices)
        if out is not None:
            ids_buf, mask_buf = out
            np.take(token_ids, indices, axis=0, out=ids_buf[:n])
            np.take(attention_mask, indices, axis=0, out=mask_buf[:n])
            lengths = mask_buf[:n].sum(axis=1)
            width = max(int(lengths.max()) if n else 0, 1)
            ids = ids_buf[:n, :width]
            mask = mask_buf[:n, :width]
        else:
            mask_rows = attention_mask[indices]
            lengths = mask_rows.sum(axis=1)
            width = max(int(lengths.max()) if n else 0, 1)
            ids = np.ascontiguousarray(token_ids[indices, :width])
            mask = np.ascontiguousarray(mask_rows[:, :width])
        return cls(token_ids=ids, attention_mask=mask, indices=indices)


def pack_batches(
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    bucket_by_length: bool = True,
    pool_batches: int = 8,
) -> list[PackedBatch]:
    """Split encoded sequences into length-bucketed, trimmed batches.

    With ``bucket_by_length`` the (shuffled) rows are length-sorted *within
    pools* of ``pool_batches`` batches before being cut, so each batch's
    trimmed width is close to its shortest member.  Sorting inside shuffled
    pools — rather than globally — keeps batch composition close to i.i.d.:
    sequence length often correlates with the label (e.g. flow length with
    application), and globally length-homogeneous batches measurably hurt
    optimization.  Sequences longer than the bucket width are never
    truncated — trimming only removes columns that are padding for every
    row of the batch.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(token_ids)
    if n == 0:
        return []
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(n) if shuffle else np.arange(n)
    if bucket_by_length:
        lengths = np.asarray(attention_mask).sum(axis=1)
        pool = max(batch_size * max(pool_batches, 1), 1)
        order = np.concatenate([
            chunk[np.argsort(lengths[chunk], kind="stable")]
            for chunk in (order[start : start + pool] for start in range(0, n, pool))
        ])
    batches = [
        PackedBatch.from_rows(token_ids, attention_mask, order[start : start + batch_size])
        for start in range(0, n, batch_size)
    ]
    if shuffle and len(batches) > 1:
        rng.shuffle(batches)
    return batches


def batch_indices(
    n: int, batch_size: int, rng: np.random.Generator | None = None, shuffle: bool = True
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        rng = rng or np.random.default_rng(0)
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def iterate_minibatches(
    arrays: Sequence[np.ndarray],
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, ...]]:
    """Yield aligned batches from several arrays of equal first dimension."""
    if not arrays:
        raise ValueError("need at least one array")
    n = len(arrays[0])
    for array in arrays:
        if len(array) != n:
            raise ValueError("all arrays must have the same length")
    for idx in batch_indices(n, batch_size, rng=rng, shuffle=shuffle):
        yield tuple(np.asarray(array)[idx] for array in arrays)


def train_test_split(
    arrays: Sequence[np.ndarray],
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Random split of aligned arrays into train and test portions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n = len(arrays[0])
    order = rng.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    train = [np.asarray(a)[train_idx] for a in arrays]
    test = [np.asarray(a)[test_idx] for a in arrays]
    return train, test
