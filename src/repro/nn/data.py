"""Mini-batch iteration helpers shared by training loops."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["batch_indices", "iterate_minibatches", "train_test_split"]


def batch_indices(
    n: int, batch_size: int, rng: np.random.Generator | None = None, shuffle: bool = True
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        rng = rng or np.random.default_rng(0)
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def iterate_minibatches(
    arrays: Sequence[np.ndarray],
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, ...]]:
    """Yield aligned batches from several arrays of equal first dimension."""
    if not arrays:
        raise ValueError("need at least one array")
    n = len(arrays[0])
    for array in arrays:
        if len(array) != n:
            raise ValueError("all arrays must have the same length")
    for idx in batch_indices(n, batch_size, rng=rng, shuffle=shuffle):
        yield tuple(np.asarray(array)[idx] for array in arrays)


def train_test_split(
    arrays: Sequence[np.ndarray],
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Random split of aligned arrays into train and test portions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n = len(arrays[0])
    order = rng.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    train = [np.asarray(a)[train_idx] for a in arrays]
    test = [np.asarray(a)[test_idx] for a in arrays]
    return train, test
