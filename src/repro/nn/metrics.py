"""Evaluation metrics: accuracy, precision/recall/F1, confusion matrix, AUROC.

These are implemented directly (rather than via scikit-learn, which is not
available offline) and are used by every downstream task, the NetGLUE
benchmark, and the OOD evaluation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
    "micro_f1",
    "weighted_f1",
    "auroc",
    "fpr_at_tpr",
    "average_precision",
    "classification_report",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Return matrix ``C`` where ``C[i, j]`` counts true class ``i`` predicted as ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> dict[str, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    tp = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    precision = np.divide(tp, predicted, out=np.zeros_like(tp), where=predicted > 0)
    recall = np.divide(tp, actual, out=np.zeros_like(tp), where=actual > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0)
    return {"precision": precision, "recall": recall, "f1": f1, "support": actual}


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> float:
    """Unweighted mean of per-class F1 over classes present in ``y_true``."""
    stats = precision_recall_f1(y_true, y_pred, num_classes)
    present = stats["support"] > 0
    if not present.any():
        return 0.0
    return float(stats["f1"][present].mean())


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Micro-averaged F1 (equals accuracy for single-label classification)."""
    return accuracy(y_true, y_pred)


def weighted_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> float:
    """Support-weighted mean of per-class F1."""
    stats = precision_recall_f1(y_true, y_pred, num_classes)
    support = stats["support"]
    total = support.sum()
    if total == 0:
        return 0.0
    return float((stats["f1"] * support).sum() / total)


def auroc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    ``labels`` are binary (1 = positive); ``scores`` are real-valued with
    higher meaning "more positive".
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=float)
    positives = scores[labels]
    negatives = scores[~labels]
    if positives.size == 0 or negatives.size == 0:
        raise ValueError("AUROC requires at least one positive and one negative sample")
    order = np.argsort(np.concatenate([negatives, positives]), kind="mergesort")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, order.size + 1)
    # Average ranks for ties.
    combined = np.concatenate([negatives, positives])
    sorted_scores = combined[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    positive_ranks = ranks[negatives.size :]
    u_stat = positive_ranks.sum() - positives.size * (positives.size + 1) / 2.0
    return float(u_stat / (positives.size * negatives.size))


def fpr_at_tpr(labels: np.ndarray, scores: np.ndarray, tpr_target: float = 0.95) -> float:
    """False-positive rate at the threshold achieving ``tpr_target`` recall."""
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=float)
    positives = np.sort(scores[labels])[::-1]
    if positives.size == 0:
        raise ValueError("need at least one positive sample")
    index = min(int(np.ceil(tpr_target * positives.size)) - 1, positives.size - 1)
    threshold = positives[max(index, 0)]
    negatives = scores[~labels]
    if negatives.size == 0:
        return 0.0
    return float((negatives >= threshold).mean())


def average_precision(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    tp_cum = np.cumsum(sorted_labels)
    total_pos = sorted_labels.sum()
    if total_pos == 0:
        raise ValueError("need at least one positive sample")
    precision = tp_cum / np.arange(1, sorted_labels.size + 1)
    return float((precision * sorted_labels).sum() / total_pos)


def classification_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    class_names: list[str] | None = None,
) -> str:
    """Human-readable per-class precision/recall/F1 table."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    num_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    stats = precision_recall_f1(y_true, y_pred, num_classes)
    if class_names is None:
        class_names = [f"class_{i}" for i in range(num_classes)]
    width = max(len(name) for name in class_names) + 2
    lines = [f"{'':{width}}  prec   recall  f1      support"]
    for i, name in enumerate(class_names):
        lines.append(
            f"{name:{width}}  {stats['precision'][i]:.3f}  {stats['recall'][i]:.3f}   "
            f"{stats['f1'][i]:.3f}   {int(stats['support'][i])}"
        )
    lines.append(
        f"{'macro':{width}}  {stats['precision'].mean():.3f}  {stats['recall'].mean():.3f}   "
        f"{macro_f1(y_true, y_pred, num_classes):.3f}   {int(stats['support'].sum())}"
    )
    return "\n".join(lines)
