"""Multi-head scaled dot-product attention.

The attention layer optionally records its attention weights so that the
interpretability tools in :mod:`repro.interpret` (attention rollout,
Section 4.4 of the paper) can inspect them after a forward pass.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, as_tensor
from .kernels import ScratchPool, fused_attention
from .layers import Dropout, Linear
from .module import Module

__all__ = ["MultiHeadAttention", "scaled_dot_product_attention"]


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Compute ``softmax(Q K^T / sqrt(d)) V``.

    Parameters
    ----------
    query, key, value:
        Tensors of shape ``(..., seq, d_head)``.
    mask:
        Boolean array broadcastable to ``(..., seq_q, seq_k)`` where True
        marks positions that must *not* be attended to (padding).

    Returns
    -------
    (output, attention_weights)
    """
    d_head = query.shape[-1]
    # Python-float scale: same double value as the np.float64 scalar, but
    # weak-typed so float32 inputs are not silently upcast.
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / float(np.sqrt(d_head)))
    if mask is not None:
        scores = scores.masked_fill(mask, -1e9)
    weights = scores.softmax(axis=-1)
    return weights @ value, weights


class MultiHeadAttention(Module):
    """Standard multi-head attention with learned projections.

    Attributes
    ----------
    last_attention:
        NumPy array of shape ``(batch, heads, seq, seq)`` holding the
        attention weights of the most recent forward pass (detached).
    fused:
        When True (default), the forward runs as one fused tape node
        (:func:`repro.nn.kernels.fused_attention`) — bit-identical outputs,
        analytic backward — instead of the composed reference ops.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
        fused: bool = True,
    ):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.fused = bool(fused)
        self._pool = ScratchPool()
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)

    def forward(self, x, attention_mask: np.ndarray | None = None) -> Tensor:
        """Self-attention over ``x`` of shape ``(batch, seq, d_model)``.

        ``attention_mask`` is a boolean array of shape ``(batch, seq)`` with
        True for *valid* (non-padding) tokens, matching the convention used
        throughout the library.
        """
        x = as_tensor(x)
        batch, seq, _ = x.shape
        mask = None
        if attention_mask is not None:
            valid = np.asarray(attention_mask, dtype=bool)
            # Convert "valid token" mask into "blocked key position" mask.
            mask = ~valid[:, None, None, :]

        if self.fused:
            context, weight_data = fused_attention(
                x,
                self.q_proj.weight,
                self.q_proj.bias,
                self.k_proj.weight,
                self.k_proj.bias,
                self.v_proj.weight,
                self.v_proj.bias,
                self.num_heads,
                mask,
                self._pool,
            )
            self.last_attention = weight_data.copy()
            return self.dropout(self.out_proj(context))

        query = self._split_heads(self.q_proj(x), batch, seq)
        key = self._split_heads(self.k_proj(x), batch, seq)
        value = self._split_heads(self.v_proj(x), batch, seq)
        context, weights = scaled_dot_product_attention(query, key, value, mask=mask)
        self.last_attention = weights.data.copy()
        context = self._merge_heads(context, batch, seq)
        return self.dropout(self.out_proj(context))
