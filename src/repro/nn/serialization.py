"""Model checkpointing: save / load parameter state dicts to ``.npz`` files."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_state", "load_state"]

_META_KEY = "__checkpoint_meta__"


def save_state(state: dict[str, np.ndarray], path: str | Path, metadata: dict | None = None) -> Path:
    """Write a flat parameter mapping to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a parameter mapping and metadata written by :func:`save_state`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = {}
        state: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(bytes(archive[key]).decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, metadata


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialize a module's parameters plus optional metadata.

    The parameter arrays keep their build dtype in the ``.npz`` (a float32
    serving build round-trips as float32), and the dominant dtype is also
    recorded as ``model_dtype`` metadata so tooling can tell a serving
    checkpoint from a reference one without opening the arrays.
    """
    state = model.state_dict()
    metadata = dict(metadata or {})
    if "model_dtype" not in metadata and state:
        dtypes = sorted({str(value.dtype) for value in state.values()})
        metadata["model_dtype"] = dtypes[0] if len(dtypes) == 1 else "mixed"
    return save_state(state, path, metadata)


def load_checkpoint(
    model: Module, path: str | Path, strict: bool = True, dtype: str = "param"
) -> dict:
    """Restore a module's parameters; returns the stored metadata.

    ``dtype="param"`` (default) casts stored values to the module's build
    dtype; ``dtype="state"`` adopts the checkpoint's dtype, so a float32
    serving checkpoint restores as a float32 build even into a module that
    was constructed in float64 (see :meth:`Module.load_state_dict
    <repro.nn.module.Module.load_state_dict>`).
    """
    state, metadata = load_state(path)
    model.load_state_dict(state, strict=strict, dtype=dtype)
    return metadata
