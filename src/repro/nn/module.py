"""Module base class and parameter containers for ``repro.nn``.

A :class:`Module` owns named :class:`~repro.nn.autograd.Tensor` parameters
and possibly child modules.  It provides the usual conveniences:
``parameters()``, ``named_parameters()``, ``zero_grad()``, ``train()`` /
``eval()`` mode switching, and a flat ``state_dict`` for serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .autograd import Tensor

__all__ = ["Module", "Parameter", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes in ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter and module discovery
    # ------------------------------------------------------------------
    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{index}", item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------
    # Gradient and mode management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, child in self.named_children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to array copies."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(
        self, state: dict[str, np.ndarray], strict: bool = True, dtype: str = "param"
    ) -> None:
        """Load parameter values from a flat mapping produced by :meth:`state_dict`.

        ``dtype`` selects which side's dtype wins: ``"param"`` (default)
        casts incoming values to each parameter's dtype — the one-time cast
        that loads trained float64 state into a float32 serving build —
        while ``"state"`` adopts the stored dtype, so restoring a float32
        checkpoint into a float64-built module converts the module in
        place (the serialization round-trip).
        """
        if dtype not in ("param", "state"):
            raise ValueError(f"dtype must be 'param' or 'state', got {dtype!r}")
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            if dtype == "param":
                value = np.asarray(state[name], dtype=param.data.dtype)
            else:
                value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()


class ModuleList(Module):
    """A list of sub-modules that is properly registered for discovery."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self.items: list[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise RuntimeError("ModuleList is a container and cannot be called")


class Sequential(Module):
    """Compose modules by calling them in order on a single input."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
