"""Core neural network layers: Linear, Embedding, LayerNorm, Dropout, activations.

Every layer accepts a ``numpy.random.Generator`` for initialization so models
are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from . import init
from .autograd import Tensor, as_tensor
from .kernels import ScratchPool, fused_layer_norm
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
]


class Linear(Module):
    """Affine transform ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality of the last axis.
    bias:
        Whether to add a learned bias vector.
    rng:
        Generator used for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        std: float = 0.02,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), rng, std=std), name="weight"
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={token_ids.min()}, max={token_ids.max()}"
            )
        return Tensor.take_rows(self.weight, token_ids)

    def load_pretrained(self, matrix: np.ndarray, freeze: bool = False) -> None:
        """Replace the embedding table with a pretrained matrix."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (self.num_embeddings, self.embedding_dim):
            raise ValueError(
                f"expected shape {(self.num_embeddings, self.embedding_dim)}, got {matrix.shape}"
            )
        self.weight.data = matrix.copy()
        if freeze:
            self.weight.requires_grad = False


class LayerNorm(Module):
    """Layer normalization over the last axis.

    With ``fused=True`` (default) the forward runs as one tape node with a
    saved inverse-std (:func:`repro.nn.kernels.fused_layer_norm`);
    outputs are bit-identical to the composed reference path below.
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5, fused: bool = True):
        super().__init__()
        self.eps = eps
        self.fused = bool(fused)
        self._pool = ScratchPool()
        self.gamma = Parameter(init.ones((normalized_shape,)), name="gamma")
        self.beta = Parameter(init.zeros((normalized_shape,)), name="beta")

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if self.fused:
            return fused_layer_norm(x, self.gamma, self.beta, self.eps, self._pool)
        mean = x.mean(axis=-1, keepdims=True)
        variance = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / ((variance + self.eps) ** 0.5)
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).relu()


class GELU(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).gelu()


class Tanh(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).tanh()


class Sigmoid(Module):
    def forward(self, x) -> Tensor:
        return as_tensor(x).sigmoid()
