"""Optimizers: SGD (with momentum), Adam, AdamW, plus gradient clipping.

All optimizers default to in-place updates (``in_place=True``): parameter
arrays, moment buffers, and a couple of preallocated per-parameter scratch
buffers are mutated with ``out=`` ufuncs, so a steady-state training step
performs no optimizer allocations.  The update arithmetic replays the exact
evaluation order of the composed reference expressions (kept under
``in_place=False`` for the differential harness), so both paths produce
bit-identical parameters.

Parameters that did not take part in the current loss are skipped: with
``zero_grad(set_to_none=False)`` a parameter's gradient stays a zero-filled
buffer between steps, and :attr:`repro.nn.Tensor.has_grad` distinguishes
that from a real contribution (matching the ``grad is None`` semantics of
the reference path).
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def _active_grad(param: Tensor) -> np.ndarray | None:
    """The parameter's gradient, or None if it did not receive one."""
    grad = param.grad
    if grad is None:
        return None
    if isinstance(param, Tensor) and not param.has_grad:
        return None
    return grad


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    grads = [g for g in (_active_grad(p) for p in parameters) if g is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            np.multiply(g, scale, out=g)
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: list[Tensor], lr: float, in_place: bool = True):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.in_place = bool(in_place)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients; ``set_to_none=False`` keeps zero-filled buffers."""
        for param in self.parameters:
            param.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        in_place: bool = True,
    ):
        super().__init__(parameters, lr, in_place=in_place)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._tmp = [np.empty_like(p.data) for p in self.parameters] if in_place else []

    def step(self) -> None:
        if self.in_place:
            self._step_in_place()
            return
        for param, velocity in zip(self.parameters, self._velocity):
            grad = _active_grad(param)
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update

    def _step_in_place(self) -> None:
        for param, velocity, tmp in zip(self.parameters, self._velocity, self._tmp):
            grad = _active_grad(param)
            if grad is None:
                continue
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=tmp)
                np.add(grad, tmp, out=tmp)
                grad = tmp
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            np.multiply(grad, self.lr, out=tmp)
            np.subtract(param.data, tmp, out=param.data)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        in_place: bool = True,
    ):
        super().__init__(parameters, lr, in_place=in_place)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        if in_place:
            self._tmp = [np.empty_like(p.data) for p in self.parameters]
            self._tmp2 = [np.empty_like(p.data) for p in self.parameters]
        else:
            self._tmp = self._tmp2 = []

    def step(self) -> None:
        self._step += 1
        if self.in_place:
            self._step_in_place()
            return
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = _active_grad(param)
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_in_place(self) -> None:
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v, tmp, tmp2 in zip(
            self.parameters, self._m, self._v, self._tmp, self._tmp2
        ):
            grad = _active_grad(param)
            if grad is None:
                continue
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=tmp)
                np.add(grad, tmp, out=tmp)
                grad = tmp
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=tmp2)
            m += tmp2
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=tmp2)
            np.multiply(tmp2, grad, out=tmp2)
            v += tmp2
            # param -= (lr * m_hat) / (sqrt(v_hat) + eps), same evaluation
            # order as the reference expression above.
            np.divide(m, bias1, out=tmp2)
            tmp2 *= self.lr
            np.divide(v, bias2, out=tmp)
            np.sqrt(tmp, out=tmp)
            tmp += self.eps
            np.divide(tmp2, tmp, out=tmp2)
            np.subtract(param.data, tmp2, out=param.data)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            if self.in_place:
                for param, tmp in zip(self.parameters, self._tmp):
                    if _active_grad(param) is not None:
                        np.multiply(param.data, self.lr * self.weight_decay, out=tmp)
                        np.subtract(param.data, tmp, out=param.data)
            else:
                for param in self.parameters:
                    if _active_grad(param) is not None:
                        param.data = param.data - self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
