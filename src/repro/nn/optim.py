"""Optimizers: SGD (with momentum), Adam, AdamW, plus gradient clipping."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data = param.data - self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
