"""Recurrent layers: GRU cell and multi-step GRU.

The GRU is the baseline architecture NorBERT was compared against in the
paper's Section 3.4 (GRU with random initialization and GRU with GloVe
embeddings), so it is a first-class citizen of the substrate.
"""

from __future__ import annotations

import numpy as np

from . import init
from .autograd import Tensor, as_tensor
from .layers import Linear
from .module import Module, Parameter

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single gated recurrent unit cell.

    Follows the standard formulation:

    .. math::
        z_t = \\sigma(x_t W_{xz} + h_{t-1} W_{hz} + b_z) \\\\
        r_t = \\sigma(x_t W_{xr} + h_{t-1} W_{hr} + b_r) \\\\
        \\tilde{h}_t = \\tanh(x_t W_{xh} + (r_t \\odot h_{t-1}) W_{hh} + b_h) \\\\
        h_t = (1 - z_t) \\odot h_{t-1} + z_t \\odot \\tilde{h}_t
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_xz = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hz = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.b_z = Parameter(init.zeros((hidden_size,)))
        self.w_xr = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hr = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.b_r = Parameter(init.zeros((hidden_size,)))
        self.w_xh = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hh = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.b_h = Parameter(init.zeros((hidden_size,)))

    def forward(self, x, h) -> Tensor:
        """One step: ``x`` is ``(batch, input_size)``, ``h`` is ``(batch, hidden_size)``."""
        x = as_tensor(x)
        h = as_tensor(h)
        z = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        r = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        h_tilde = (x @ self.w_xh + (r * h) @ self.w_hh + self.b_h).tanh()
        return (1.0 - z) * h + z * h_tilde


class GRU(Module):
    """Multi-step (optionally bidirectional) GRU over ``(batch, seq, input)`` inputs."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        bidirectional: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.bidirectional = bidirectional
        self.forward_cell = GRUCell(input_size, hidden_size, rng=rng)
        self.backward_cell = GRUCell(input_size, hidden_size, rng=rng) if bidirectional else None

    @property
    def output_size(self) -> int:
        return self.hidden_size * (2 if self.bidirectional else 1)

    def _run(self, cell: GRUCell, x: Tensor, reverse: bool) -> tuple[Tensor, Tensor]:
        batch, seq, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        outputs: list[Tensor] = []
        steps = range(seq - 1, -1, -1) if reverse else range(seq)
        for t in steps:
            h = cell(x[:, t, :], h)
            outputs.append(h)
        if reverse:
            outputs = outputs[::-1]
        stacked = Tensor.stack(outputs, axis=1)
        return stacked, h

    def forward(self, x) -> tuple[Tensor, Tensor]:
        """Return ``(outputs, final_hidden)``.

        ``outputs`` has shape ``(batch, seq, output_size)``; ``final_hidden``
        has shape ``(batch, output_size)``.
        """
        x = as_tensor(x)
        fwd_out, fwd_h = self._run(self.forward_cell, x, reverse=False)
        if not self.bidirectional:
            return fwd_out, fwd_h
        bwd_out, bwd_h = self._run(self.backward_cell, x, reverse=True)
        outputs = Tensor.concatenate([fwd_out, bwd_out], axis=-1)
        final = Tensor.concatenate([fwd_h, bwd_h], axis=-1)
        return outputs, final
