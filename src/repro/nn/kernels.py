"""Fused, allocation-disciplined kernels for the `repro.nn` hot loops.

The composed reference paths (``MultiHeadAttention`` as six Tensor ops plus
softmax, ``LayerNorm`` as nine, ``cross_entropy`` as seven) are correct but
dominated by Python/autograd overhead: every intermediate allocates a fresh
array and a tape node.  The kernels here compute the same mathematics as one
tape node each, with three properties the differential harness
(`tests/test_nn_fused_equivalence.py`) enforces:

* **Bit-identical forwards.**  Each fused forward replays the exact NumPy
  op sequence of the composed path (same functions, same evaluation order,
  in-place only where IEEE semantics make it equivalent), so outputs —
  including eval logits — are bit-identical to the reference, not merely
  close.
* **Analytic single-pass backwards.**  The backward is the closed-form VJP
  of the whole block.  It is mathematically exact (numeric gradcheck in
  `tests/test_gradcheck.py`) but may differ from the composed backward in
  the last ulp because additions associate differently; training curves
  remain loss-for-loss identical at ``assert_allclose`` default tolerance.
* **Scratch reuse.**  Temporaries that the backward never needs come from a
  :class:`ScratchPool` keyed by ``(slot, shape, dtype)``: after warmup the
  pool stops allocating (``scratch_allocations()`` is sampled by the
  trainer per step and gated in E14).  Arrays that outlive the call —
  graph outputs and saved residuals — are always freshly allocated, so
  models that run forward more than once per step (e.g. MLM + NSP) can
  never clobber a pending backward.

Dtype discipline: every kernel computes in the dtype of its input (scalars
enter as Python floats, which NumPy treats as weak — no silent float64
upcast), so the same code path serves float64 and float32 models.

Float32 is special-cased further: bit-identical replay pins the accumulation
order, which also pins the BLAS call shapes — batched attention dispatches
``batch * heads`` tiny gemms and last-axis ufunc reductions run far slower
than an equivalent gemv.  Under the relaxed-ulp policy
(:mod:`repro.nn.numeric`) a float32 *eval* forward is allowed to
reassociate, so the no-tape float32 paths here dispatch to the packed
kernels (:func:`eval_attention_packed`, :func:`eval_layer_norm_packed`):
one ``(b*s, d) @ (d, 3d)`` gemm for all three QKV projections, head-packed
contiguous ``(b*h, s, ·)`` 3D gemms for scores and context, and
gemv-against-ones for the softmax/layernorm reductions.  Float64 keeps the
bit-exact replay unchanged.
"""

from __future__ import annotations

import functools
import time

import numpy as np

from .autograd import Tensor, is_grad_enabled

__all__ = [
    "ScratchPool",
    "scratch_allocations",
    "KernelProfiler",
    "enable_kernel_profiling",
    "disable_kernel_profiling",
    "kernel_profiler",
    "fused_layer_norm",
    "fused_attention",
    "fused_cross_entropy",
    "fused_masked_cross_entropy",
    "eval_layer_norm_packed",
    "eval_attention_packed",
]


# ----------------------------------------------------------------------
# Kernel profiling hooks (process-global, off by default)
# ----------------------------------------------------------------------

# The active profiler, or None (the default).  Every hook site is one
# global load plus an `is not None` check, so the disabled state costs
# nothing measurable against the gemms the kernels dispatch — the
# zero-overhead-off invariant docs/OBSERVABILITY.md documents and the E14
# `train_step`/`forward_latency` gates enforce.
_PROFILER = None


class KernelProfiler:
    """Per-kernel call counts and wall time, plus scratch-pool accounting.

    Surfaces through a :class:`repro.obs.metrics.MetricsRegistry` (its own
    by default, or one passed in so serving/training metrics and kernel
    profiles share a single mergeable registry):

    * ``kernel.<name>.calls`` / ``kernel.<name>.wall_s`` — one counter pair
      per fused or packed kernel entry point; backward passes profile
      separately as ``<name>.backward``.  Nested kernels (the float32 eval
      dispatch runs ``eval_attention_packed`` inside ``fused_attention``)
      each record their own wall time.
    * ``kernel.pool.hits`` / ``misses`` / ``bytes_served`` /
      ``bytes_allocated`` — :class:`ScratchPool` behavior; a warmed-up
      steady state shows hits accumulating while misses stay flat.

    Profiling observes values only — it never changes what a kernel
    computes, so enabling it cannot perturb any bit-identity contract.
    """

    def __init__(self, registry=None, clock=time.perf_counter):
        if registry is None:
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self.clock = clock
        self._pool_hits = registry.counter("kernel.pool.hits")
        self._pool_misses = registry.counter("kernel.pool.misses")
        self._pool_served = registry.counter("kernel.pool.bytes_served")
        self._pool_allocated = registry.counter("kernel.pool.bytes_allocated")

    def record(self, name: str, seconds: float) -> None:
        self.registry.counter(f"kernel.{name}.calls").inc()
        self.registry.counter(f"kernel.{name}.wall_s").inc(seconds)

    def pool_hit(self, nbytes: int) -> None:
        self._pool_hits.inc()
        self._pool_served.inc(nbytes)

    def pool_miss(self, nbytes: int) -> None:
        self._pool_misses.inc()
        self._pool_allocated.inc(nbytes)

    def snapshot(self) -> dict:
        """``{"pool": {...}, "kernels": {name: {calls, wall_ms}}}``."""
        kernels: dict[str, dict] = {}
        for name, metric in self.registry.select("kernel.").items():
            if name.startswith("kernel.pool."):
                continue
            base, field = name[len("kernel."):].rsplit(".", 1)
            entry = kernels.setdefault(base, {"calls": 0, "wall_ms": 0.0})
            if field == "calls":
                entry["calls"] = int(metric.value)
            elif field == "wall_s":
                entry["wall_ms"] = float(metric.value) * 1000.0
        return {
            "pool": {
                "hits": int(self._pool_hits.value),
                "misses": int(self._pool_misses.value),
                "bytes_served": int(self._pool_served.value),
                "bytes_allocated": int(self._pool_allocated.value),
            },
            "kernels": dict(sorted(kernels.items())),
        }


def enable_kernel_profiling(registry=None, clock=time.perf_counter) -> KernelProfiler:
    """Install (and return) a process-global :class:`KernelProfiler`."""
    global _PROFILER
    _PROFILER = KernelProfiler(registry=registry, clock=clock)
    return _PROFILER


def disable_kernel_profiling() -> "KernelProfiler | None":
    """Remove the active profiler; returns it (for a final snapshot)."""
    global _PROFILER
    profiler, _PROFILER = _PROFILER, None
    return profiler


def kernel_profiler() -> "KernelProfiler | None":
    """The active process-global profiler, or ``None`` (the default)."""
    return _PROFILER


def _profiled(name: str):
    """Wrap a kernel entry point with the (default-off) profiling hook."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            profiler = _PROFILER
            if profiler is None:
                return fn(*args, **kwargs)
            t0 = profiler.clock()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.record(name, profiler.clock() - t0)

        return wrapper

    return decorate


# Count of scratch buffers allocated (pool misses) since process start.
# Steady-state training/serving should stop incrementing this after the
# first step per distinct batch shape.
_POOL_ALLOCS = 0


def scratch_allocations() -> int:
    """Total number of scratch-pool buffer allocations so far."""
    return _POOL_ALLOCS


class ScratchPool:
    """Reusable scratch buffers keyed by ``(slot, shape, dtype)``.

    Each call site names its buffer with a ``slot`` string; distinct shapes
    (length buckets) coexist under the same slot so alternating batch
    widths do not thrash.  Buffers handed out here must never escape the
    kernel call that requested them.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict = {}

    def take(self, slot: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        global _POOL_ALLOCS
        key = (slot, shape, np.dtype(dtype).char)
        buf = self._buffers.get(key)
        profiler = _PROFILER
        if buf is None:
            _POOL_ALLOCS += 1
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            if profiler is not None:
                profiler.pool_miss(buf.nbytes)
        elif profiler is not None:
            profiler.pool_hit(buf.nbytes)
        return buf

    def __deepcopy__(self, memo):
        # Scratch contents are never reused across calls; clones (serving
        # fabric workers deep-copy their engines) start with an empty pool.
        return ScratchPool()


# ----------------------------------------------------------------------
# Fused LayerNorm
# ----------------------------------------------------------------------

@_profiled("layer_norm.backward")
def _vjp_layer_norm(grad, parents, saved):
    # Backward temporaries come from the module's scratch pool (slots are
    # disjoint from the forward's, and ``_add_grad`` copies every returned
    # gradient before the next tape node runs, so pooled outputs are safe).
    # The op order matches the textbook expression exactly; in-place chaining
    # only, so values are bitwise unchanged.
    x, gamma, beta = parents
    xhat, rstd, pool = saved
    grad = np.asarray(grad)
    d = xhat.shape[-1]
    stat_shape = xhat.shape[:-1] + (1,)
    work = pool.take("lnb_work", xhat.shape, xhat.dtype)
    gx = None
    if x.requires_grad:
        gxhat = pool.take("lnb_gxhat", xhat.shape, xhat.dtype)
        np.multiply(grad, gamma.data, out=gxhat)
        m1 = pool.take("lnb_m1", stat_shape, xhat.dtype)
        np.mean(gxhat, axis=-1, keepdims=True, out=m1)
        np.multiply(gxhat, xhat, out=work)
        m2 = pool.take("lnb_m2", stat_shape, xhat.dtype)
        np.mean(work, axis=-1, keepdims=True, out=m2)
        np.subtract(gxhat, m1, out=gxhat)
        np.multiply(xhat, m2, out=work)
        np.subtract(gxhat, work, out=gxhat)
        np.multiply(rstd, gxhat, out=gxhat)
        gx = gxhat
    ggamma = None
    if gamma.requires_grad:
        np.multiply(grad, xhat, out=work)
        ggamma = work.reshape(-1, d).sum(axis=0)
    gbeta = None
    if beta.requires_grad:
        gbeta = grad.reshape(-1, d).sum(axis=0)
    return gx, ggamma, gbeta


@_profiled("layer_norm")
def fused_layer_norm(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float, pool: ScratchPool
) -> Tensor:
    """LayerNorm over the last axis as a single tape node.

    Forward replays the composed op order exactly — mean as
    ``sum * (1/d)``, variance of the centered values, normalization by
    *division* with ``(var + eps) ** 0.5`` — so outputs are bit-identical
    to the reference ``LayerNorm``.  The inverse std is saved for the
    analytic backward.
    """
    data = x.data
    d = data.shape[-1]
    inv_d = 1.0 / max(d, 1)
    stat_shape = data.shape[:-1] + (1,)
    taping = is_grad_enabled() and (
        x.requires_grad or gamma.requires_grad or beta.requires_grad
    )

    if not taping and data.dtype == np.float32:
        # Float32 eval is governed by the relaxed-ulp policy
        # (repro.nn.numeric): gemv-reduction layer norm.  Float64 keeps
        # the bit-exact replay below.
        out = eval_layer_norm_packed(data, gamma.data, beta.data, eps, pool)
        return Tensor._make(out, False)

    mean = pool.take("ln_mean", stat_shape, data.dtype)
    np.sum(data, axis=-1, keepdims=True, out=mean)
    mean *= inv_d
    centered = pool.take("ln_centered", data.shape, data.dtype)
    np.subtract(data, mean, out=centered)
    sq = pool.take("ln_sq", data.shape, data.dtype)
    np.multiply(centered, centered, out=sq)
    var = pool.take("ln_var", stat_shape, data.dtype)
    np.sum(sq, axis=-1, keepdims=True, out=var)
    var *= inv_d
    var += eps
    # ndarray ** 0.5, not np.power-with-out: the operator is what the
    # composed path runs, and NumPy's scalar-exponent fast paths may
    # round differently from the general power loop.
    denom = var ** 0.5

    xhat = (
        np.divide(centered, denom, out=pool.take("ln_xhat", data.shape, data.dtype))
        if not taping
        else centered / denom
    )
    out = xhat * gamma.data
    out += beta.data

    if not taping:
        return Tensor._make(out, False)
    rstd = 1.0 / denom
    return Tensor._result(out, (x, gamma, beta), _vjp_layer_norm, (xhat, rstd, pool))


# ----------------------------------------------------------------------
# Fused multi-head attention (QKV projection + SDPA + softmax)
# ----------------------------------------------------------------------

@_profiled("attention.backward")
def _vjp_attention(grad, parents, saved):
    # The backward is the hottest kernel in a train step and its
    # temporaries are (batch, heads, seq, seq)-sized, so they come from the
    # module's scratch pool ("attb_*" slots, disjoint from the forward's).
    # Pooled outputs are safe: ``_add_grad`` copies every returned gradient
    # before the next tape node can reuse the slot.  The op order matches
    # the original out-of-place expressions exactly, so values are bitwise
    # unchanged.
    x, wq, bq, wk, bk, wv, bv = parents
    q4, k4, v4, weights, scale, pool = saved
    b, h, s, dh = q4.shape
    d = h * dh
    dt = q4.dtype
    grad = np.asarray(grad)

    g4 = grad.reshape(b, s, h, dh).transpose(0, 2, 1, 3)
    gweights = pool.take("attb_gweights", (b, h, s, s), dt)
    np.matmul(g4, np.swapaxes(v4, -1, -2), out=gweights)
    gv4 = pool.take("attb_gv4", (b, h, s, dh), dt)
    np.matmul(np.swapaxes(weights, -1, -2), g4, out=gv4)
    # Softmax backward; rows fully masked out have weights == 0, so their
    # score gradient vanishes without consulting the mask.
    gscores = pool.take("attb_gscores", (b, h, s, s), dt)
    np.multiply(gweights, weights, out=gscores)
    gsum = pool.take("attb_gsum", (b, h, s, 1), dt)
    np.sum(gscores, axis=-1, keepdims=True, out=gsum)
    np.subtract(gweights, gsum, out=gweights)
    np.multiply(weights, gweights, out=gscores)
    gscores *= scale
    gq4 = pool.take("attb_gq4", (b, h, s, dh), dt)
    np.matmul(gscores, k4, out=gq4)
    gk4 = pool.take("attb_gk4", (b, h, s, dh), dt)
    np.matmul(np.swapaxes(gscores, -1, -2), q4, out=gk4)

    def merge(slot: str, batched: np.ndarray) -> np.ndarray:
        out = pool.take(slot, (b, s, d), dt)
        np.copyto(out.reshape(b, s, h, dh), batched.transpose(0, 2, 1, 3))
        return out

    gq = merge("attb_gq", gq4)
    gk = merge("attb_gk", gk4)
    gv = merge("attb_gv", gv4)

    gx = None
    if x.requires_grad:
        gx = pool.take("attb_gx", (b, s, d), dt)
        np.matmul(gq, wq.data.T, out=gx)
        addend = pool.take("attb_gx_addend", (b, s, d), dt)
        np.matmul(gk, wk.data.T, out=addend)
        gx += addend
        np.matmul(gv, wv.data.T, out=addend)
        gx += addend
    x2 = x.data.reshape(b * s, d)
    gwq = x2.T @ gq.reshape(b * s, d) if wq.requires_grad else None
    gwk = x2.T @ gk.reshape(b * s, d) if wk.requires_grad else None
    gwv = x2.T @ gv.reshape(b * s, d) if wv.requires_grad else None
    gbq = gq.sum(axis=(0, 1)) if bq.requires_grad else None
    gbk = gk.sum(axis=(0, 1)) if bk.requires_grad else None
    gbv = gv.sum(axis=(0, 1)) if bv.requires_grad else None
    return gx, gwq, gbq, gwk, gbk, gwv, gbv


@_profiled("attention")
def fused_attention(
    x: Tensor,
    wq: Tensor,
    bq: Tensor,
    wk: Tensor,
    bk: Tensor,
    wv: Tensor,
    bv: Tensor,
    num_heads: int,
    mask: np.ndarray | None,
    pool: ScratchPool,
) -> tuple[Tensor, np.ndarray]:
    """QKV projection + scaled dot-product attention as one tape node.

    Returns the merged ``(batch, seq, d_model)`` context (before the output
    projection, which stays a composed ``Linear``) and the attention
    weights array for recording.  The forward mirrors the composed path op
    for op; when taping, the Q/K/V activations and softmax weights are
    freshly allocated (they are saved for the backward), otherwise every
    intermediate lives in the scratch pool.
    """
    data = x.data
    b, s, d = data.shape
    h = num_heads
    dh = d // h
    scale = 1.0 / float(np.sqrt(dh))
    taping = is_grad_enabled() and any(
        t.requires_grad for t in (x, wq, bq, wk, bk, wv, bv)
    )

    if not taping and data.dtype == np.float32:
        # Float32 eval is governed by the relaxed-ulp policy
        # (repro.nn.numeric): head-packed gemms.  Float64 keeps the
        # bit-exact replay below.
        merged, weights = eval_attention_packed(
            data, wq.data, bq.data, wk.data, bk.data, wv.data, bv.data,
            num_heads, mask, pool,
        )
        return Tensor._make(merged, False), weights

    def _project(slot: str, w: Tensor, bias: Tensor) -> np.ndarray:
        out = np.empty((b, s, d), data.dtype) if taping else pool.take(slot, (b, s, d), data.dtype)
        np.matmul(data, w.data, out=out)
        out += bias.data
        return out

    q4 = _project("att_q", wq, bq).reshape(b, s, h, dh).transpose(0, 2, 1, 3)
    k4 = _project("att_k", wk, bk).reshape(b, s, h, dh).transpose(0, 2, 1, 3)
    v4 = _project("att_v", wv, bv).reshape(b, s, h, dh).transpose(0, 2, 1, 3)

    scores_shape = (b, h, s, s)
    scores = (
        np.empty(scores_shape, data.dtype)
        if taping
        else pool.take("att_scores", scores_shape, data.dtype)
    )
    np.matmul(q4, np.swapaxes(k4, -1, -2), out=scores)
    scores *= scale
    if mask is not None:
        np.copyto(scores, -1e9, where=mask)

    stat_shape = (b, h, s, 1)
    mx = pool.take("att_max", stat_shape, data.dtype)
    np.max(scores, axis=-1, keepdims=True, out=mx)
    np.subtract(scores, mx, out=scores)
    np.exp(scores, out=scores)
    denom = pool.take("att_denom", stat_shape, data.dtype)
    np.sum(scores, axis=-1, keepdims=True, out=denom)
    np.divide(scores, denom, out=scores)
    weights = scores

    ctx = pool.take("att_ctx", (b, h, s, dh), data.dtype)
    np.matmul(weights, v4, out=ctx)
    merged = np.empty((b, s, d), data.dtype)
    np.copyto(merged.reshape(b, s, h, dh), ctx.transpose(0, 2, 1, 3))

    if not taping:
        return Tensor._make(merged, False), weights
    out = Tensor._result(
        merged,
        (x, wq, bq, wk, bk, wv, bv),
        _vjp_attention,
        (q4, k4, v4, weights, scale, pool),
    )
    return out, weights


# ----------------------------------------------------------------------
# Packed eval kernels (the relaxed-ulp float32 serving path)
# ----------------------------------------------------------------------

def _ones(pool: ScratchPool, n: int, dtype) -> np.ndarray:
    """A pooled all-ones vector (the gemv reduction operand)."""
    ones = pool.take("ones", (n,), dtype)
    ones.fill(1.0)
    return ones


@_profiled("layer_norm_packed")
def eval_layer_norm_packed(
    data: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float,
    pool: ScratchPool, out: np.ndarray | None = None,
) -> np.ndarray:
    """LayerNorm with gemv-against-ones reductions (relaxed-ulp policy).

    Same mathematics as the composed path, but the mean and sum-of-squares
    reductions run as one ``(rows, d) @ (d,)`` gemv each — far faster than
    NumPy's last-axis pairwise sum, and associating differently, which is
    why this path is only reachable from float32 eval forwards where the
    documented-ulp contract (:mod:`repro.nn.numeric`) allows reassociation.
    """
    d = data.shape[-1]
    rows = data.size // max(d, 1)
    inv_d = 1.0 / max(d, 1)
    dt = data.dtype
    flat = data.reshape(rows, d)
    ones = _ones(pool, d, dt)
    stats = pool.take("lnp_stats", (2, rows), dt)
    mean, var = stats[0], stats[1]
    np.matmul(flat, ones, out=mean)
    mean *= inv_d
    centered = pool.take("lnp_centered", (rows, d), dt)
    np.subtract(flat, mean[:, None], out=centered)
    sq = pool.take("lnp_sq", (rows, d), dt)
    np.multiply(centered, centered, out=sq)
    np.matmul(sq, ones, out=var)
    var *= inv_d
    var += eps
    np.sqrt(var, out=var)
    if out is None:
        out = np.empty(data.shape, dt)
    flat_out = out.reshape(rows, d)
    np.divide(centered, var[:, None], out=centered)
    np.multiply(centered, gamma, out=flat_out)
    flat_out += beta
    return out


@_profiled("attention_packed")
def eval_attention_packed(
    data: np.ndarray,
    wq: np.ndarray, bq: np.ndarray,
    wk: np.ndarray, bk: np.ndarray,
    wv: np.ndarray, bv: np.ndarray,
    num_heads: int,
    mask: np.ndarray | None,
    pool: ScratchPool,
    out: np.ndarray | None = None,
    need_weights: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """QKV + SDPA with head-packed gemms (relaxed-ulp policy).

    BLAS sees a few large matrices instead of ``3 + 2 * b * h`` tiny ones:
    the three projections run as one ``(b*s, d) @ (d, 3d)`` gemm, Q/K/V are
    repacked head-major so the score and context matmuls are contiguous
    ``(b*h, s, ·)`` batched gemms, and the softmax denominator is a single
    ``(b*h*s, s) @ (s,)`` gemv.  Three more reassociations keep the
    elementwise passes off the big ``(b*h, s, s)`` score matrix: the
    ``1/sqrt(dh)`` scale is folded into Q before the score gemm, the
    softmax stabilizer is a single flat max (NumPy's all-axes reduction is
    SIMD-vectorized while the per-row one is not) guarded by a spread
    check that falls back to exact per-row maxima, and with
    ``need_weights=False`` the softmax division moves to the 8x-smaller
    context matrix (``ctx / denom == (exp / denom) @ v`` in real
    arithmetic).  Returns ``(merged context, attention weights)``; the
    weights are a pooled ``(b, h, s, s)`` view, valid until the next call
    on the same pool — or ``None`` with ``need_weights=False``, where the
    normalized weights are never materialized.
    """
    b, s, d = data.shape
    h = num_heads
    dh = d // h
    scale = 1.0 / float(np.sqrt(dh))
    dt = data.dtype

    # Packed projection: the per-call weight copy is O(d^2) against the
    # O(b*s*d^2) gemm it enables, and re-reading the live weight arrays
    # keeps the fast path's no-invalidation contract.
    wqkv = pool.take("attp_wqkv", (d, 3 * d), dt)
    np.copyto(wqkv[:, :d], wq)
    np.copyto(wqkv[:, d:2 * d], wk)
    np.copyto(wqkv[:, 2 * d:], wv)
    bqkv = pool.take("attp_bqkv", (3 * d,), dt)
    np.copyto(bqkv[:d], bq)
    np.copyto(bqkv[d:2 * d], bk)
    np.copyto(bqkv[2 * d:], bv)
    qkv = pool.take("attp_qkv", (b * s, 3 * d), dt)
    np.matmul(data.reshape(b * s, d), wqkv, out=qkv)
    qkv += bqkv

    # Head-major repack: (b, s, 3, h, dh) -> (3, b*h, s, dh) in one copy,
    # so the batched gemms below run over contiguous 2D slices instead of
    # the strided transpose views the bit-exact path hands to matmul.
    packed = pool.take("attp_packed", (3, b * h, s, dh), dt)
    np.copyto(
        packed.reshape(3, b, h, s, dh),
        qkv.reshape(b, s, 3, h, dh).transpose(2, 0, 3, 1, 4),
    )
    q3, k3, v3 = packed[0], packed[1], packed[2]
    q3 *= scale  # fold the score scale into Q: s*dh elements, not s*s

    scores = pool.take("attp_scores", (b * h, s, s), dt)
    np.matmul(q3, k3.transpose(0, 2, 1), out=scores)
    raw = scores.reshape(b, h, s, s)
    if mask is not None:
        np.copyto(raw, -1e9, where=mask)
    # Softmax stabilizer.  Softmax is shift-invariant, so any per-row-or-
    # larger shift near the maximum works; the flat all-axes max is ~17x
    # faster than NumPy's per-row reduction at serving shapes.  It is only
    # safe while every row's own maximum stays within exp's float range of
    # the global one — guarded by the spread check (rows further than 60
    # below the shift would push exp toward the subnormal floor), which
    # falls back to exact per-row maxima (always, under a mask: the -1e9
    # fill floors the global minimum).
    stable = False
    if mask is None:
        gmax = float(scores.max())
        gmin = float(scores.min())
        stable = gmax - gmin < 60.0  # False for NaN/inf spreads too
    if stable:
        scores -= dt.type(gmax)
    else:
        mx = pool.take("attp_max", (b * h, s, 1), dt)
        np.max(scores, axis=-1, keepdims=True, out=mx)
        np.subtract(scores, mx, out=scores)
    np.exp(scores, out=scores)
    denom = pool.take("attp_denom", (b * h * s,), dt)
    np.matmul(scores.reshape(b * h * s, s), _ones(pool, s, dt), out=denom)
    weights = None
    if need_weights:
        scores /= denom.reshape(b * h, s, 1)
        weights = scores.reshape(b, h, s, s)

    ctx = pool.take("attp_ctx", (b * h, s, dh), dt)
    np.matmul(scores, v3, out=ctx)
    if not need_weights:
        # Normalize the context instead of the score matrix: same real
        # arithmetic, dh columns instead of s.
        ctx /= denom.reshape(b * h, s, 1)
    if out is None:
        out = np.empty((b, s, d), dt)
    np.copyto(out.reshape(b, s, h, dh), ctx.reshape(b, h, s, dh).transpose(0, 2, 1, 3))
    return out, weights


# ----------------------------------------------------------------------
# Fused cross-entropy (log-softmax + NLL in one node)
# ----------------------------------------------------------------------

def _softmax_from_saved(exp_shifted: np.ndarray, sum_exp: np.ndarray) -> np.ndarray:
    return exp_shifted / sum_exp


@_profiled("cross_entropy.backward")
def _vjp_cross_entropy(grad, parents, saved):
    (logits,) = parents
    exp_shifted, sum_exp, targets, label_smoothing = saved
    n, c = exp_shifted.shape
    scale = float(np.asarray(grad)) * (1.0 / max(n, 1))
    glogits = _softmax_from_saved(exp_shifted, sum_exp)
    glogits *= scale
    if label_smoothing > 0.0:
        glogits -= scale * (label_smoothing / c)
        glogits[np.arange(n), targets] -= scale * (1.0 - label_smoothing)
    else:
        glogits[np.arange(n), targets] -= scale
    return (glogits,)


def _cross_entropy_forward(
    logits_data: np.ndarray, targets: np.ndarray, label_smoothing: float
):
    """Shared forward: returns (loss value, exp_shifted, sum_exp)."""
    n, c = logits_data.shape
    mx = logits_data.max(axis=-1, keepdims=True)
    shifted = logits_data - mx
    exp_shifted = np.exp(shifted)
    sum_exp = exp_shifted.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(sum_exp)
    if label_smoothing > 0.0:
        one_hot = np.zeros((n, c), dtype=logits_data.dtype)
        one_hot[np.arange(n), targets] = 1.0
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / c
        per_example = (log_probs * one_hot).sum(axis=-1)
    else:
        per_example = log_probs[np.arange(n), targets]
    loss = -(per_example.sum() * (1.0 / max(n, 1)))
    return loss, exp_shifted, sum_exp


@_profiled("cross_entropy")
def fused_cross_entropy(
    logits, targets: np.ndarray, label_smoothing: float = 0.0
) -> Tensor:
    """Drop-in fused variant of :func:`repro.nn.losses.cross_entropy`.

    The loss value is bit-identical to the composed path (the mostly-zero
    one-hot reduction collapses to an exact gather); the backward writes
    ``(softmax - target)/n`` directly instead of walking seven nodes.
    """
    from .autograd import as_tensor

    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected logits of shape (N, C), got {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("logits and targets disagree on batch size")
    loss, exp_shifted, sum_exp = _cross_entropy_forward(
        logits.data, targets, label_smoothing
    )
    return Tensor._result(
        np.asarray(loss),
        (logits,),
        _vjp_cross_entropy,
        (exp_shifted, sum_exp, targets, label_smoothing),
    )


@_profiled("masked_cross_entropy.backward")
def _vjp_masked_cross_entropy(grad, parents, saved):
    (logits,) = parents
    exp_shifted, sum_exp, targets, indices, shape = saved
    n = exp_shifted.shape[0]
    scale = float(np.asarray(grad)) * (1.0 / max(n, 1))
    gsel = _softmax_from_saved(exp_shifted, sum_exp)
    gsel *= scale
    gsel[np.arange(n), targets] -= scale
    full = np.zeros(shape, dtype=exp_shifted.dtype)
    # Masked positions are unique, so a direct scatter replaces the
    # composed path's np.add.at over the full (batch*seq, vocab) buffer.
    full.reshape(-1, shape[-1])[indices] = gsel
    return (full,)


@_profiled("masked_cross_entropy")
def fused_masked_cross_entropy(logits, targets: np.ndarray, mask: np.ndarray) -> Tensor:
    """Drop-in fused variant of :func:`repro.nn.losses.masked_cross_entropy`."""
    from .autograd import as_tensor

    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    mask = np.asarray(mask, dtype=bool)
    if mask.sum() == 0:
        return Tensor(np.zeros(()), requires_grad=False)
    batch, seq, vocab = logits.shape
    flat_mask = mask.reshape(-1)
    indices = np.nonzero(flat_mask)[0]
    selected = logits.data.reshape(batch * seq, vocab)[indices]
    selected_targets = targets.reshape(-1)[indices]
    loss, exp_shifted, sum_exp = _cross_entropy_forward(selected, selected_targets, 0.0)
    return Tensor._result(
        np.asarray(loss),
        (logits,),
        _vjp_masked_cross_entropy,
        (exp_shifted, sum_exp, selected_targets, indices, logits.shape),
    )
