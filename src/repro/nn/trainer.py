"""A small generic training loop with history tracking and early stopping."""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from .autograd import Tensor, tensor_allocations
from .kernels import scratch_allocations
from .module import Module
from .optim import Optimizer, clip_grad_norm
from .schedules import LRSchedule

__all__ = ["TrainingHistory", "Trainer"]


@dataclasses.dataclass
class TrainingHistory:
    """Losses and metrics recorded during training."""

    losses: list[float] = dataclasses.field(default_factory=list)
    eval_metrics: list[dict[str, float]] = dataclasses.field(default_factory=list)
    learning_rates: list[float] = dataclasses.field(default_factory=list)
    wall_time: float = 0.0
    #: Real (non-padding) tokens consumed by the recorded train steps, when
    #: the batch closures advertise a ``num_tokens`` attribute.
    tokens_processed: int = 0
    #: Per-step wall time in seconds, parallel to ``losses``.
    step_wall_times: list[float] = dataclasses.field(default_factory=list)
    #: Scratch-pool buffer allocations per step (fused-kernel pool misses).
    #: Should reach 0 once every batch shape has warmed up; the E14
    #: ``train_step`` gate asserts this no-allocation steady state.
    step_scratch_allocations: list[int] = dataclasses.field(default_factory=list)
    #: Tensor objects constructed per step (graph size; stable per shape).
    step_tensor_allocations: list[int] = dataclasses.field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def tokens_per_second(self) -> float:
        """Training throughput over the whole fit, in real tokens per second."""
        if self.wall_time <= 0.0 or self.tokens_processed <= 0:
            return 0.0
        return self.tokens_processed / self.wall_time

    def best_metric(self, key: str, maximize: bool = True) -> float:
        values = [m[key] for m in self.eval_metrics if key in m]
        if not values:
            return float("nan")
        return max(values) if maximize else min(values)

    def to_registry(self, registry=None):
        """Express this history over a :class:`repro.obs.metrics.MetricsRegistry`.

        Scalar totals become ``train.*`` counters and the per-step series
        become bounded log-scale histograms — the same mergeable, JSON-
        exportable shapes the serving report uses, so training and serving
        telemetry fold into one registry.  Pass a registry to accumulate
        into (e.g. across fits); a fresh one is created otherwise.
        """
        from ..obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        registry.counter("train.steps").inc(len(self.losses))
        registry.counter("train.tokens").inc(self.tokens_processed)
        registry.counter("train.wall_s").inc(self.wall_time)
        registry.counter("train.scratch_allocations").inc(
            sum(self.step_scratch_allocations)
        )
        registry.counter("train.tensor_allocations").inc(
            sum(self.step_tensor_allocations)
        )
        if self.losses:
            registry.histogram("train.loss", 1e-6, 1e6).observe_many(self.losses)
        if self.step_wall_times:
            registry.histogram("train.step_wall_s", 1e-6, 1e3).observe_many(
                self.step_wall_times
            )
        return registry


class Trainer:
    """Drives epochs of (batch -> loss) closures over a model.

    The trainer is deliberately generic: the caller supplies a
    ``loss_fn(batch) -> Tensor`` closure, so the same loop serves MLM
    pre-training, classification fine-tuning, Word2Vec and the GRU baselines.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        schedule: LRSchedule | None = None,
        max_grad_norm: float | None = 1.0,
        preallocate_grads: bool = True,
        metrics=None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule
        self.max_grad_norm = max_grad_norm
        #: Keep zero-filled gradient buffers alive between steps
        #: (``zero_grad(set_to_none=False)``) so steady-state training does
        #: not reallocate parameter gradients.
        self.preallocate_grads = bool(preallocate_grads)
        self.history = TrainingHistory()
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` receiving the
        #: same per-step observations live (``train.*`` names, see
        #: :meth:`TrainingHistory.to_registry`).  ``None`` (default) skips
        #: all registry work in the step loop.
        self.metrics = metrics

    def train_step(self, loss_fn: Callable[[], Tensor]) -> float:
        """One optimization step; returns the scalar loss value."""
        step_start = time.perf_counter()
        scratch_before = scratch_allocations()
        tensors_before = tensor_allocations()
        self.model.train()
        self.optimizer.zero_grad(set_to_none=not self.preallocate_grads)
        loss = loss_fn()
        if not isinstance(loss, Tensor):
            raise TypeError("loss_fn must return a Tensor")
        loss.backward()
        if self.max_grad_norm is not None:
            clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        if self.schedule is not None:
            lr = self.schedule.step()
        else:
            lr = self.optimizer.lr
        value = loss.item()
        step_wall = time.perf_counter() - step_start
        step_scratch = scratch_allocations() - scratch_before
        step_tensors = tensor_allocations() - tensors_before
        self.history.losses.append(value)
        self.history.learning_rates.append(lr)
        self.history.step_wall_times.append(step_wall)
        self.history.step_scratch_allocations.append(step_scratch)
        self.history.step_tensor_allocations.append(step_tensors)
        if self.metrics is not None:
            self.metrics.counter("train.steps").inc()
            self.metrics.counter("train.scratch_allocations").inc(step_scratch)
            self.metrics.counter("train.tensor_allocations").inc(step_tensors)
            self.metrics.histogram("train.loss", 1e-6, 1e6).observe(value)
            self.metrics.histogram("train.step_wall_s", 1e-6, 1e3).observe(step_wall)
        return value

    def fit(
        self,
        batches: Callable[[], list[Callable[[], Tensor]]],
        epochs: int = 1,
        eval_fn: Callable[[], dict[str, float]] | None = None,
        patience: int | None = None,
        monitor: str = "f1",
        verbose: bool = False,
    ) -> TrainingHistory:
        """Run ``epochs`` passes over ``batches()`` (a factory of loss closures).

        Parameters
        ----------
        batches:
            Called at the start of every epoch; must return a list of zero-arg
            closures, each computing the loss of one mini-batch.
        eval_fn:
            Optional; called after each epoch to compute validation metrics.
        patience:
            If set, stop early when ``monitor`` has not improved for this many
            consecutive epochs.
        """
        start = time.perf_counter()
        tokens_before = self.history.tokens_processed
        best = -np.inf
        stale = 0
        for epoch in range(epochs):
            epoch_losses = []
            for loss_fn in batches():
                epoch_losses.append(self.train_step(loss_fn))
                self.history.tokens_processed += int(getattr(loss_fn, "num_tokens", 0))
            if eval_fn is not None:
                metrics = eval_fn()
                self.history.eval_metrics.append(metrics)
                if verbose:
                    mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
                    print(f"epoch {epoch + 1}/{epochs} loss={mean_loss:.4f} {metrics}")
                if patience is not None:
                    current = metrics.get(monitor, -np.inf)
                    if current > best + 1e-9:
                        best = current
                        stale = 0
                    else:
                        stale += 1
                        if stale >= patience:
                            break
            elif verbose:
                mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
                print(f"epoch {epoch + 1}/{epochs} loss={mean_loss:.4f}")
        self.history.wall_time = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.counter("train.wall_s").inc(self.history.wall_time)
            self.metrics.counter("train.tokens").inc(
                self.history.tokens_processed - tokens_before
            )
        return self.history
