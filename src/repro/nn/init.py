"""Weight initialization utilities.

Deterministic given a :class:`numpy.random.Generator`, so that every model in
the library can be reproduced from a seed — essential for regenerating the
paper's experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal",
    "zeros",
    "ones",
    "truncated_normal",
]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for weight matrices."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization, appropriate before ReLU."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Plain normal initialization (BERT uses std=0.02)."""
    return rng.normal(0.0, std, size=shape)


def truncated_normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02, bound: float = 2.0
) -> np.ndarray:
    """Normal initialization truncated to ``bound`` standard deviations."""
    values = rng.normal(0.0, std, size=shape)
    return np.clip(values, -bound * std, bound * std)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
