"""``repro.corpus`` — pre-training corpora.

Two kinds: the synthetic networking-text corpus (NetBERT substitute) for the
word-embedding baselines, and the columnar packet corpus that feeds the
foundation model's batched pre-training path.
"""

from .generator import (
    CorpusConfig,
    NetworkingCorpusGenerator,
    PROTOCOL_DEVICE,
    PROTOCOL_LAYER,
)
from .packets import SHARD_FORMAT, SHARD_VERSION, PacketTraceCorpus, ShardedCorpus

__all__ = [
    "CorpusConfig",
    "NetworkingCorpusGenerator",
    "PacketTraceCorpus",
    "ShardedCorpus",
    "SHARD_FORMAT",
    "SHARD_VERSION",
    "PROTOCOL_DEVICE",
    "PROTOCOL_LAYER",
]
