"""``repro.corpus`` — synthetic networking-text corpus (NetBERT substitute)."""

from .generator import (
    CorpusConfig,
    NetworkingCorpusGenerator,
    PROTOCOL_DEVICE,
    PROTOCOL_LAYER,
)

__all__ = [
    "CorpusConfig",
    "NetworkingCorpusGenerator",
    "PROTOCOL_DEVICE",
    "PROTOCOL_LAYER",
]
