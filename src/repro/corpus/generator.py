"""Synthetic networking-text corpus with controlled relational structure.

NetBERT [47] trained BERT on ~23 GB of computer-networking text and found that
embedding arithmetic recovers analogies such as "BGP is to router as STP is to
switch".  No such corpus can be shipped offline, so this module generates one
whose co-occurrence statistics *encode the same relations*: protocols are
mentioned together with the device that runs them, the layer they operate at,
and the addressing scheme they use, through a battery of sentence templates.
Embeddings trained on the generated text (Word2Vec/GloVe) can then be probed
with the exact analogies the paper quotes (experiment E3).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["CorpusConfig", "NetworkingCorpusGenerator", "PROTOCOL_DEVICE", "PROTOCOL_LAYER"]


#: Which device "speaks" each control-plane protocol.
PROTOCOL_DEVICE: dict[str, str] = {
    "bgp": "router",
    "ospf": "router",
    "eigrp": "router",
    "rip": "router",
    "stp": "switch",
    "vlan": "switch",
    "lacp": "switch",
    "arp": "switch",
    "mac": "switch",
    "ip": "router",
}

#: Which layer each protocol operates at.
PROTOCOL_LAYER: dict[str, str] = {
    "ethernet": "link",
    "ppp": "link",
    "ip": "network",
    "icmp": "network",
    "ipv6": "network",
    "tcp": "transport",
    "udp": "transport",
    "sctp": "transport",
    "http": "application",
    "dns": "application",
    "smtp": "application",
    "ntp": "application",
}

_DEVICE_TEMPLATES = [
    "the {device} runs {protocol} to exchange reachability information",
    "{protocol} is configured on every {device} in the topology",
    "a {device} uses {protocol} to build its forwarding state",
    "enable {protocol} on the {device} before connecting the uplink",
    "the {device} advertises routes learned via {protocol}",
    "{protocol} convergence determines how quickly the {device} recovers",
    "troubleshooting {protocol} starts with the {device} control plane",
]

_LAYER_TEMPLATES = [
    "{protocol} operates at the {layer} layer of the stack",
    "the {layer} layer is where {protocol} provides its service",
    "{protocol} is a {layer} layer protocol in the reference model",
    "encapsulation places the {protocol} header at the {layer} layer",
    "congestion handling in {protocol} happens at the {layer} layer",
]

_ADDRESS_TEMPLATES = [
    "the {device} forwards frames based on the {protocol} address table",
    "each interface of the {device} is assigned an {protocol} address",
    "the {device} rewrites the {protocol} header on every hop",
]

_FILLER_SENTENCES = [
    "packet loss increases latency for interactive applications",
    "the data center fabric uses equal cost multipath forwarding",
    "operators monitor link utilization to plan capacity upgrades",
    "encryption protects payloads from inspection on shared links",
    "buffers absorb short bursts without dropping traffic",
    "network telemetry exports flow records for offline analysis",
    "access control lists filter traffic at the edge",
    "quality of service policies prioritize voice over bulk transfers",
]


@dataclasses.dataclass
class CorpusConfig:
    """Size and mix of the generated corpus."""

    seed: int = 0
    num_sentences: int = 4000
    filler_fraction: float = 0.2


class NetworkingCorpusGenerator:
    """Generate tokenized networking sentences encoding device/layer relations."""

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()

    def generate(self) -> list[list[str]]:
        """Return a list of tokenized sentences (lowercase word lists)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        sentences: list[list[str]] = []
        device_items = list(PROTOCOL_DEVICE.items())
        layer_items = list(PROTOCOL_LAYER.items())
        for _ in range(cfg.num_sentences):
            roll = rng.random()
            if roll < cfg.filler_fraction:
                text = str(rng.choice(_FILLER_SENTENCES))
            elif roll < cfg.filler_fraction + 0.45:
                protocol, device = device_items[int(rng.integers(0, len(device_items)))]
                if protocol in ("mac", "ip") and rng.random() < 0.5:
                    template = str(rng.choice(_ADDRESS_TEMPLATES))
                else:
                    template = str(rng.choice(_DEVICE_TEMPLATES))
                text = template.format(protocol=protocol, device=device)
            else:
                protocol, layer = layer_items[int(rng.integers(0, len(layer_items)))]
                template = str(rng.choice(_LAYER_TEMPLATES))
                text = template.format(protocol=protocol, layer=layer)
            sentences.append(self.tokenize(text))
        return sentences

    @staticmethod
    def tokenize(text: str) -> list[str]:
        """Lowercase whitespace tokenization with punctuation stripped."""
        tokens = []
        for raw in text.lower().split():
            token = raw.strip(".,;:!?()\"'")
            if token:
                tokens.append(token)
        return tokens
