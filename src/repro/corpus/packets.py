"""Columnar packet corpora: traffic scenarios collected into one column batch.

The text corpus in :mod:`repro.corpus.generator` feeds the word-embedding
baselines; this module is its packet-side counterpart for the foundation
model.  A :class:`PacketTraceCorpus` runs one or more traffic scenarios,
converts each generated trace into :class:`~repro.net.columns.PacketColumns`
once, and concatenates the columns — so everything downstream (tokenizer
``encode_batch``, :meth:`~repro.context.builders.PacketContextBuilder.encode_columns`,
:meth:`~repro.core.pretraining.Pretrainer.pretrain_encoded`) can stay columnar
and never re-materializes per-packet Python objects.

Corpora also persist to disk as a sharded columnar format
(:meth:`PacketTraceCorpus.save_shards` / :meth:`PacketTraceCorpus.open_shards`):
one ``.npz`` per shard plus a JSON manifest, loaded lazily shard by shard so
pre-training can stream a corpus far larger than memory.  The shard format is
specified in ``docs/PIPELINE.md`` and validated by ``tools/check_shards.py``.

Examples
--------
>>> from repro.corpus import PacketTraceCorpus
>>> from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig
>>> corpus = PacketTraceCorpus.from_scenarios(
...     [EnterpriseScenario(EnterpriseScenarioConfig(seed=s, duration=5.0))
...      for s in (0, 1)]
... )
>>> len(corpus) == len(corpus.columns)
True
>>> corpus.labels()[0] is not None
True
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..net.columns import PacketColumns
from ..net.packet import Packet

__all__ = ["PacketTraceCorpus", "ShardedCorpus", "SHARD_FORMAT", "SHARD_VERSION"]

#: Manifest ``format`` tag and schema version of the on-disk shard layout.
SHARD_FORMAT = "repro-packet-trace-corpus"
SHARD_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: PacketColumns fields stored as plain arrays in each shard ``.npz``.
_ARRAY_FIELDS = tuple(
    field.name
    for field in dataclasses.fields(PacketColumns)
    if field.name not in (
        "applications", "metadata", "ip_names", "mac_names", "spelling_overrides"
    )
)
#: PacketColumns fields stored as pickled object arrays (decoded application
#: objects, metadata dicts) or pickled dicts (address spellings).
_OBJECT_FIELDS = ("applications", "metadata")
_DICT_FIELDS = ("ip_names", "mac_names", "spelling_overrides")


def _object_array(values: list) -> np.ndarray:
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array


class PacketTraceCorpus:
    """A pre-training corpus of traffic held in columnar form.

    Parameters
    ----------
    columns:
        The packet batch, one row per packet, in capture order.
    """

    def __init__(self, columns: PacketColumns):
        self.columns = columns

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketTraceCorpus":
        """Columnarize an already generated (or parsed) trace."""
        return cls(PacketColumns.from_packets(packets))

    @classmethod
    def from_scenarios(cls, scenarios: Iterable) -> "PacketTraceCorpus":
        """Generate every scenario and concatenate the columnar traces.

        ``scenarios`` is any iterable of objects with a ``generate() ->
        list[Packet]`` method (all of :mod:`repro.traffic`'s scenario and
        workload generators qualify).  Generators that synthesize columns
        natively (``generate_columns``) never materialize packet objects at
        all; others are generated and converted once.
        """
        parts = [
            scenario.generate_columns()
            if hasattr(scenario, "generate_columns")
            else PacketColumns.from_packets(scenario.generate())
            for scenario in scenarios
        ]
        return cls(PacketColumns.concat(parts))

    def __len__(self) -> int:
        return len(self.columns)

    def packets(self) -> list[Packet]:
        """Materialize per-packet objects (compatibility escape hatch)."""
        return self.columns.to_packets()

    def labels(self, key: str = "application") -> list:
        """Per-row metadata labels (``None`` where absent)."""
        return [row.get(key) for row in self.columns.metadata]

    # ------------------------------------------------------------------
    # On-disk sharded format
    # ------------------------------------------------------------------
    def save_shards(
        self,
        directory: str | Path,
        shard_rows: int = 4096,
        label_keys: Sequence[str] = ("application",),
        workers: int | None = None,
    ) -> Path:
        """Write the corpus as ``shard-%05d.npz`` files plus a manifest.

        Each shard holds ``shard_rows`` consecutive packets (the last one the
        remainder) with every :class:`PacketColumns` field: numeric columns
        as plain arrays, the payload matrix trimmed to the shard's own
        maximum length, application objects and metadata dicts as pickled
        object arrays, and the address-spelling dicts (with shard-relative
        override rows) pickled whole.  The manifest records the schema
        version, per-shard row counts and a label vocabulary summary so
        tooling can validate a corpus without unpickling it.

        ``workers`` > 1 writes shards through a thread pool (shard slicing
        and serialization are independent; NumPy column gathers and file
        writes release the GIL).  The manifest is written last in every
        case, only after all shard files are on disk — a reader that finds a
        manifest can rely on every shard it names existing — and its
        contents are identical to a serial write.
        """
        if shard_rows <= 0:
            raise ValueError("shard_rows must be positive")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        columns = self.columns
        n = len(columns)

        def write_shard(task: tuple[int, int]) -> dict:
            index, start = task
            stop = min(start + shard_rows, n)
            part = columns[start:stop]
            payload = {name: getattr(part, name) for name in _ARRAY_FIELDS}
            for name in _OBJECT_FIELDS:
                payload[name] = _object_array(getattr(part, name))
            for name in _DICT_FIELDS:
                value = getattr(part, name)
                if name == "spelling_overrides":
                    value = {f"{field}:{row}": spelling
                             for (field, row), spelling in value.items()}
                payload[name] = np.array(value, dtype=object)
            filename = f"shard-{index:05d}.npz"
            np.savez(directory / filename, **payload)
            return {
                "file": filename,
                "rows": stop - start,
                "start": start,
                "payload_width": int(part.payload.shape[1]),
            }

        tasks = list(enumerate(range(0, n, shard_rows)))
        if workers is not None and workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                shards = list(pool.map(write_shard, tasks))
        else:
            shards = [write_shard(task) for task in tasks]
        vocabulary = {
            key: sorted({str(v) for v in self.labels(key) if v is not None})
            for key in label_keys
        }
        manifest = {
            "format": SHARD_FORMAT,
            "version": SHARD_VERSION,
            "num_rows": n,
            "shard_rows": shard_rows,
            "num_shards": len(shards),
            "shards": shards,
            "array_fields": list(_ARRAY_FIELDS),
            "object_fields": list(_OBJECT_FIELDS + _DICT_FIELDS),
            "label_vocab": vocabulary,
        }
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return directory

    @classmethod
    def open_shards(cls, directory: str | Path) -> "ShardedCorpus":
        """Open a sharded corpus for lazy, shard-at-a-time access."""
        return ShardedCorpus(directory)


class ShardedCorpus:
    """Lazy view over a corpus saved with :meth:`PacketTraceCorpus.save_shards`.

    Shards are loaded on demand and released as iteration advances, so a
    corpus larger than memory streams through encoding and pre-training one
    shard at a time — the memory high-water mark is a single shard plus the
    encoded matrices.  (NumPy cannot memory-map members of an ``.npz``
    archive, so per-shard laziness, not ``mmap``, is the bounding
    mechanism.)
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no {MANIFEST_NAME} in {self.directory}")
        self.manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if self.manifest.get("format") != SHARD_FORMAT:
            raise ValueError(f"{manifest_path} is not a {SHARD_FORMAT} manifest")
        if self.manifest.get("version") != SHARD_VERSION:
            raise ValueError(
                f"unsupported shard format version {self.manifest.get('version')!r}"
            )

    def __len__(self) -> int:
        return int(self.manifest["num_rows"])

    @property
    def num_shards(self) -> int:
        return int(self.manifest["num_shards"])

    def shard(self, index: int) -> PacketColumns:
        """Load shard ``index`` into a :class:`PacketColumns` batch."""
        entry = self.manifest["shards"][index]
        with np.load(self.directory / entry["file"], allow_pickle=True) as archive:
            kwargs = {name: np.asarray(archive[name]) for name in _ARRAY_FIELDS}
            for name in _OBJECT_FIELDS:
                kwargs[name] = list(archive[name])
            for name in _DICT_FIELDS:
                value = archive[name].item()
                if name == "spelling_overrides":
                    restored = {}
                    for key, spelling in value.items():
                        field, _, row = key.rpartition(":")
                        restored[(field, int(row))] = spelling
                    value = restored
                kwargs[name] = value
        return PacketColumns(**kwargs)

    def __iter__(self) -> Iterator[PacketColumns]:
        for index in range(self.num_shards):
            yield self.shard(index)

    def columns(self) -> PacketColumns:
        """Concatenate every shard (the in-memory escape hatch)."""
        parts = list(self)
        if not parts:
            return PacketColumns.from_packets([])
        return PacketColumns.concat(parts)

    def to_corpus(self) -> PacketTraceCorpus:
        """Materialize the whole corpus in memory."""
        return PacketTraceCorpus(self.columns())

    def labels(self, key: str = "application") -> list:
        """Per-row metadata labels, streamed shard by shard.

        Reads only each shard's ``metadata`` member — the npz archive loads
        members on demand, so the (far larger) pickled application objects
        are never touched.
        """
        values: list = []
        for entry in self.manifest["shards"]:
            with np.load(
                self.directory / entry["file"], allow_pickle=True
            ) as archive:
                values.extend(row.get(key) for row in archive["metadata"])
        return values

    def encode_columns(self, builder, tokenizer, vocabulary):
        """Encode the corpus through ``builder.encode_columns`` per shard.

        Returns the stacked ``(ids, mask)`` matrices — identical, for
        row-local builders such as
        :class:`~repro.context.builders.PacketContextBuilder`, to encoding
        the fully concatenated corpus, but without ever holding more than
        one shard of raw packet columns in memory.  The encoded matrices
        (``max_tokens`` ints per packet) are what
        :meth:`~repro.core.pretraining.Pretrainer.pretrain_encoded` consumes
        to stream length-bucketed :class:`~repro.nn.data.PackedBatch`es.
        """
        ids_parts, mask_parts = [], []
        for shard in self:
            ids, mask = builder.encode_columns(shard, tokenizer, vocabulary)
            ids_parts.append(ids)
            mask_parts.append(mask)
        if not ids_parts:
            width = getattr(builder, "max_tokens", 0)
            return (
                np.zeros((0, width), dtype=np.int64),
                np.zeros((0, width), dtype=bool),
            )
        return np.concatenate(ids_parts), np.concatenate(mask_parts)
