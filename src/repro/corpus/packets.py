"""Columnar packet corpora: traffic scenarios collected into one column batch.

The text corpus in :mod:`repro.corpus.generator` feeds the word-embedding
baselines; this module is its packet-side counterpart for the foundation
model.  A :class:`PacketTraceCorpus` runs one or more traffic scenarios,
converts each generated trace into :class:`~repro.net.columns.PacketColumns`
once, and concatenates the columns — so everything downstream (tokenizer
``encode_batch``, :meth:`~repro.context.builders.PacketContextBuilder.encode_columns`,
:meth:`~repro.core.pretraining.Pretrainer.pretrain_encoded`) can stay columnar
and never re-materializes per-packet Python objects.

Examples
--------
>>> from repro.corpus import PacketTraceCorpus
>>> from repro.traffic import EnterpriseScenario, EnterpriseScenarioConfig
>>> corpus = PacketTraceCorpus.from_scenarios(
...     [EnterpriseScenario(EnterpriseScenarioConfig(seed=s, duration=5.0))
...      for s in (0, 1)]
... )
>>> len(corpus) == len(corpus.columns)
True
>>> corpus.labels()[0] is not None
True
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..net.columns import PacketColumns
from ..net.packet import Packet

__all__ = ["PacketTraceCorpus"]


class PacketTraceCorpus:
    """A pre-training corpus of traffic held in columnar form.

    Parameters
    ----------
    columns:
        The packet batch, one row per packet, in capture order.
    """

    def __init__(self, columns: PacketColumns):
        self.columns = columns

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketTraceCorpus":
        """Columnarize an already generated (or parsed) trace."""
        return cls(PacketColumns.from_packets(packets))

    @classmethod
    def from_scenarios(cls, scenarios: Iterable) -> "PacketTraceCorpus":
        """Generate every scenario and concatenate the columnar traces.

        ``scenarios`` is any iterable of objects with a ``generate() ->
        list[Packet]`` method (all of :mod:`repro.traffic`'s scenario and
        workload generators qualify).  Generators that synthesize columns
        natively (``generate_columns``) never materialize packet objects at
        all; others are generated and converted once.
        """
        parts = [
            scenario.generate_columns()
            if hasattr(scenario, "generate_columns")
            else PacketColumns.from_packets(scenario.generate())
            for scenario in scenarios
        ]
        return cls(PacketColumns.concat(parts))

    def __len__(self) -> int:
        return len(self.columns)

    def packets(self) -> list[Packet]:
        """Materialize per-packet objects (compatibility escape hatch)."""
        return self.columns.to_packets()

    def labels(self, key: str = "application") -> list:
        """Per-row metadata labels (``None`` where absent)."""
        return [row.get(key) for row in self.columns.metadata]
