"""Per-flow trace spans: where did this flow's 40 ms go?

A *trace* is the sequence of spans and events one flow passes through on
its way from first packet to emitted prediction:

====================  ======  ==============================================
stage                 kind    recorded by
====================  ======  ==============================================
``first_packet``      event   :class:`~repro.serve.assembler.StreamingFlowAssembler`
                              when a flow opens (``packet_ts`` attr carries
                              the capture timestamp)
``flow_closed``       event   the assembler when the flow closes
                              (``reason``/``packet_count`` attrs)
``encode``            span    the assembler, around the offline-identical
                              ``encode_columns`` of the closed flow
``batched``           span    :class:`~repro.serve.engine.InferenceEngine`,
                              submit until the flow's micro-batch ran
                              (queue-wait)
``inferred``          span    the engine, around the model forward (shared
                              start/end for every row of the batch)
``emitted``           event   the engine when the prediction is handed to
                              the caller (``cached``/``degraded`` attrs)
``cache_hit``         event   the engine on a prediction-cache hit
``dead_letter``       event   :class:`~repro.serve.resilience.DeadLetterQueue`
                              with full drop provenance
``retry`` /           event   :class:`~repro.serve.resilience.WorkerSupervisor`
``worker_restart``            during crash recovery
====================  ======  ==============================================

Two invariants make tracing safe to leave wired into the serving stack:

* **Zero overhead off.**  Every hook site is guarded by a single
  ``if tracer is not None`` attribute check; with no recorder installed the
  serving code path is byte-for-byte the pre-tracing behavior.
* **Observation only.**  The recorder never reorders, drops or copies the
  data it observes — tracing on serves the bit-identical multiset of
  records and logits as tracing off (gated differentially in
  ``tests/test_obs_serving.py``).

Time comes from an **injectable clock** (default
:func:`time.perf_counter`).  Stream-domain facts (capture timestamps, close
reasons) ride in span attrs, so the clock only orders pipeline work; tests
inject a counting clock to make whole traces deterministic.

Export is JSONL, one span or event per line::

    {"flow": "conn-3", "generation": 0, "stage": "inferred",
     "kind": "span", "start": 1.25, "end": 1.31, "attrs": {"batch": 8}}

``tools/trace_report.py`` renders the per-stage latency breakdown and
critical-path summary from such a file; the analysis helpers it uses
(:func:`stage_breakdown`, :func:`critical_paths`) live here so benchmarks
and tests share one implementation.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time

import numpy as np

__all__ = [
    "Span",
    "TraceRecorder",
    "load_trace",
    "stage_breakdown",
    "critical_paths",
]

#: Pipeline stage order, for rendering (unknown stages sort after these).
STAGE_ORDER = (
    "first_packet",
    "flow_closed",
    "encode",
    "batched",
    "inferred",
    "emitted",
    "cache_hit",
    "dead_letter",
    "retry",
    "worker_restart",
)


@dataclasses.dataclass
class Span:
    """One traced span (``start < end``) or point event (``start == end``)."""

    flow: str
    generation: int
    stage: str
    kind: str  # "span" | "event"
    start: float
    end: float
    attrs: dict

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_row(self) -> dict:
        return {
            "flow": self.flow,
            "generation": self.generation,
            "stage": self.stage,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


class TraceRecorder:
    """Collect :class:`Span` rows from the serving stages; thread-safe.

    Parameters
    ----------
    clock:
        Zero-arg callable returning the current time as a float.  Defaults
        to :func:`time.perf_counter` (wall latency).  Tests inject a
        deterministic counter so traces are reproducible run to run.
    max_spans:
        Optional bound on retained spans.  When reached, further spans are
        dropped (counted in :attr:`dropped`) — the recorder never grows
        without limit on an unbounded stream.
    """

    def __init__(self, clock=time.perf_counter, max_spans: "int | None" = None):
        if max_spans is not None and max_spans <= 0:
            raise ValueError("max_spans must be positive (or None)")
        self.clock = clock
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, span: Span) -> None:
        with self._lock:
            if self.max_spans is not None and len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            self.spans.append(span)

    def record_span(
        self, flow_key, generation: int, stage: str,
        start: float, end: float, **attrs
    ) -> None:
        """Record one completed span of ``stage`` for a flow."""
        self._append(Span(
            flow=str(flow_key), generation=int(generation), stage=stage,
            kind="span", start=float(start), end=float(end), attrs=attrs,
        ))

    def annotate(
        self, flow_key, generation: int, stage: str,
        t: "float | None" = None, **attrs
    ) -> None:
        """Record a point event (``t`` defaults to the recorder clock)."""
        t = float(self.clock() if t is None else t)
        self._append(Span(
            flow=str(flow_key), generation=int(generation), stage=stage,
            kind="event", start=t, end=t, attrs=attrs,
        ))

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def spans_for(self, flow_key, generation: "int | None" = None) -> list[Span]:
        """Every span/event of one flow (optionally one generation)."""
        flow = str(flow_key)
        return [
            span for span in self.spans
            if span.flow == flow
            and (generation is None or span.generation == generation)
        ]

    def to_rows(self) -> list[dict]:
        return [span.to_row() for span in self.spans]

    def export_jsonl(self, path) -> int:
        """Write one JSON object per span to ``path``; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_row(), sort_keys=True) + "\n")
        return len(self.spans)

    def stage_breakdown(self) -> dict:
        """Per-stage latency aggregates over the recorded spans."""
        return stage_breakdown(self.to_rows())

    def critical_paths(self) -> list[dict]:
        """Per-flow end-to-end paths over the recorded spans."""
        return critical_paths(self.to_rows())


# ----------------------------------------------------------------------
# Trace analysis (shared by tools/trace_report.py, benchmarks and tests)
# ----------------------------------------------------------------------
def load_trace(path) -> list[dict]:
    """Read a JSONL trace file back into span rows."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _stage_rank(stage: str) -> tuple[int, str]:
    try:
        return (STAGE_ORDER.index(stage), stage)
    except ValueError:
        return (len(STAGE_ORDER), stage)


def stage_breakdown(rows: list[dict]) -> dict:
    """Aggregate span durations per stage.

    Returns ``{stage: {count, total_ms, mean_ms, p50_ms, p99_ms}}`` over the
    ``kind == "span"`` rows, in pipeline order.  Events (zero-duration) are
    reported with their count only.
    """
    durations: dict[str, list[float]] = {}
    events: dict[str, int] = {}
    for row in rows:
        if row["kind"] == "span":
            durations.setdefault(row["stage"], []).append(
                row["end"] - row["start"]
            )
        else:
            events[row["stage"]] = events.get(row["stage"], 0) + 1
    breakdown: dict[str, dict] = {}
    for stage in sorted(set(durations) | set(events), key=_stage_rank):
        if stage in durations:
            values = np.asarray(durations[stage], dtype=float) * 1000.0
            breakdown[stage] = {
                "kind": "span",
                "count": int(values.size),
                "total_ms": float(values.sum()),
                "mean_ms": float(values.mean()),
                "p50_ms": float(np.percentile(values, 50)),
                "p99_ms": float(np.percentile(values, 99)),
            }
        else:
            breakdown[stage] = {"kind": "event", "count": events[stage]}
    return breakdown


def critical_paths(rows: list[dict]) -> list[dict]:
    """Per-flow end-to-end latency with per-stage attribution.

    For every ``(flow, generation)`` that was emitted (or dead-lettered),
    the end-to-end duration runs from its earliest recorded time to its
    latest; each span stage contributes its summed duration, and whatever
    the spans do not cover is reported as ``unattributed`` (inter-stage
    hand-off).  Sorted by end-to-end duration, longest first — the flows an
    operator asks about.
    """
    flows: dict[tuple[str, int], list[dict]] = {}
    for row in rows:
        flows.setdefault((row["flow"], row["generation"]), []).append(row)
    paths = []
    for (flow, generation), flow_rows in flows.items():
        start = min(row["start"] for row in flow_rows)
        end = max(row["end"] for row in flow_rows)
        stages: dict[str, float] = {}
        for row in flow_rows:
            if row["kind"] == "span":
                stages[row["stage"]] = (
                    stages.get(row["stage"], 0.0) + row["end"] - row["start"]
                )
        total = end - start
        covered = sum(stages.values())
        events = sorted(
            {row["stage"] for row in flow_rows if row["kind"] == "event"},
            key=_stage_rank,
        )
        paths.append({
            "flow": flow,
            "generation": generation,
            "end_to_end_ms": total * 1000.0,
            "stages_ms": {
                stage: stages[stage] * 1000.0
                for stage in sorted(stages, key=_stage_rank)
            },
            "unattributed_ms": max(total - covered, 0.0) * 1000.0,
            "events": events,
        })
    paths.sort(key=lambda p: (-p["end_to_end_ms"], p["flow"], p["generation"]))
    return paths
