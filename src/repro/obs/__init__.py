"""Unified observability: mergeable metrics, per-flow traces, kernel profiles.

Three surfaces, one substrate:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket log-scale histograms.  Bounded memory (O(buckets), never
  O(observations)), exactly mergeable across fabric workers, exportable as
  JSON.  :class:`repro.serve.report.ServingReport` and
  :class:`repro.nn.trainer.TrainingHistory` are both expressed over it.
* :mod:`repro.obs.trace` — :class:`TraceRecorder` collecting per-flow spans
  (first_packet → flow_closed → encode → batched → inferred → emitted, plus
  resilience events) from the serving stack, with a JSONL exporter and the
  analysis helpers ``tools/trace_report.py`` renders.
* Kernel profiling — :func:`enable_kernel_profiling` (re-exported from
  :mod:`repro.nn.kernels`) surfaces per-fused-kernel call counts/wall time
  and :class:`~repro.nn.kernels.ScratchPool` hit/miss/bytes through the
  same registry, behind a process-global default-off switch.

Two invariants hold everywhere: **off is free** (every hook site is a
single ``is not None`` check; with no recorder or profiler installed the
instrumented code paths are behaviorally identical to uninstrumented), and
**on observes only** (tracing/profiling never reorders, drops or perturbs
the data — served records and logits stay bit-identical).  See
``docs/OBSERVABILITY.md``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    STAGE_ORDER,
    Span,
    TraceRecorder,
    critical_paths,
    load_trace,
    stage_breakdown,
)

# Kernel profiling lives in repro.nn.kernels (next to the kernels it
# instruments; kernels.py never imports obs at module level, so this
# re-export cannot form a cycle).
from ..nn.kernels import (
    KernelProfiler,
    disable_kernel_profiling,
    enable_kernel_profiling,
    kernel_profiler,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAGE_ORDER",
    "Span",
    "TraceRecorder",
    "load_trace",
    "stage_breakdown",
    "critical_paths",
    "KernelProfiler",
    "enable_kernel_profiling",
    "disable_kernel_profiling",
    "kernel_profiler",
]
