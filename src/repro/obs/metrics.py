"""Bounded-memory, exactly mergeable metrics: counters, gauges, histograms.

The O&M-metrics operating model (PAPERS.md: operators localize hotspots
from per-stage operational counters, not packet inspection) needs three
properties from the telemetry substrate that ad-hoc Python lists do not
have:

* **Bounded memory.**  A serving stream observes one latency per flow for
  the life of the process; the accounting must be O(buckets), never
  O(observations).  The :class:`Histogram` here is a fixed-bucket log-scale
  histogram — a few hundred int64 bucket counts plus exact count/sum/min/max
  — so a million observations costs the same memory as ten.
* **Exact mergeability.**  Fabric workers account independently and their
  reports are folded at the end.  Counter merges are sums, histogram merges
  are bucket-wise sums (same fixed bucket layout on every worker), gauge
  merges combine min/max — all commutative and associative, so any merge
  order over any worker count yields the identical registry.
* **JSON export.**  Every metric snapshots to a plain-JSON dict
  (:meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.to_json`), the
  machine surface ``BENCH_e14.json`` and the trace tooling consume.

What is exact and what is approximate: counts, sums, means, minima and
maxima are **exact** (tracked outside the buckets).  Only histogram
*percentiles* are estimates, with relative error bounded by the bucket
width — ``2 ** (1 / bins_per_octave)`` per bucket, under 9% at the default
8 bins per octave, tightened further by geometric interpolation inside the
bucket and clamping to the exact observed min/max.
"""

from __future__ import annotations

import json
import math

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically accumulating value (int or float); merge is ``+``."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level with exact min/max envelope.

    ``set`` records the latest level; the envelope (``min``/``max``) and the
    sample count are exact.  Merging combines the envelopes and takes the
    **max** of the two latest levels — the only commutative choice that
    keeps "worst level seen anywhere" meaningful across fabric workers,
    where "latest" has no global order.
    """

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples = 0

    def set(self, value) -> None:
        value = float(value)
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def merge(self, other: "Gauge") -> None:
        if other.samples == 0:
            return
        if self.samples == 0:
            self.value = other.value
        else:
            self.value = max(self.value, other.value)
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.samples += other.samples

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min if self.samples else None,
            "max": self.max if self.samples else None,
            "samples": self.samples,
        }


class Histogram:
    """Fixed-bucket log-scale histogram: O(buckets) memory, exact merges.

    Buckets are geometric with ``bins_per_octave`` bins per factor of two,
    spanning ``[lo, hi)`` plus an underflow bucket (values below ``lo``,
    including zero and negatives) and an overflow bucket (values at or above
    ``hi``) — the layout is fixed at construction, so two histograms with
    the same ``(lo, hi, bins_per_octave)`` merge exactly by bucket-wise
    addition.  ``count``/``sum``/``min``/``max`` are tracked exactly
    alongside the buckets, so :attr:`mean` is exact; :meth:`percentile`
    interpolates geometrically inside its bucket and clamps to the observed
    ``[min, max]``, bounding the relative error by one bucket width.
    """

    __slots__ = (
        "name", "lo", "hi", "bins_per_octave", "counts",
        "count", "total", "min", "max",
    )

    def __init__(
        self, name: str, lo: float, hi: float, bins_per_octave: int = 8
    ):
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if bins_per_octave <= 0:
            raise ValueError("bins_per_octave must be positive")
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins_per_octave = int(bins_per_octave)
        bins = int(math.ceil(math.log2(self.hi / self.lo) * bins_per_octave))
        # counts[0] is underflow, counts[-1] overflow, bins in between.
        self.counts = np.zeros(bins + 2, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return len(self.counts) - 1
        k = 1 + int(math.log2(value / self.lo) * self.bins_per_octave)
        # Guard float rounding at the top edge.
        return min(k, len(self.counts) - 2)

    def observe(self, value) -> None:
        value = float(value)
        self.counts[self._index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Vectorized :meth:`observe` over an array of values."""
        v = np.asarray(values, dtype=float).ravel()
        if v.size == 0:
            return
        idx = np.zeros(v.size, dtype=np.int64)
        pos = v >= self.lo
        if pos.any():
            with np.errstate(divide="ignore"):
                idx[pos] = 1 + np.floor(
                    np.log2(v[pos] / self.lo) * self.bins_per_octave
                ).astype(np.int64)
        np.clip(idx, 0, len(self.counts) - 2, out=idx)
        idx[v >= self.hi] = len(self.counts) - 1
        self.counts += np.bincount(idx, minlength=len(self.counts))
        self.count += int(v.size)
        self.total += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean (sum and count are tracked outside the buckets)."""
        return self.total / self.count if self.count else 0.0

    def _edges(self, bucket: int) -> tuple[float, float]:
        """The value range bucket ``bucket`` covers (finite for clamping)."""
        if bucket == 0:
            return (max(self.min, 0.0), self.lo)
        if bucket == len(self.counts) - 1:
            last = self.lo * 2.0 ** (
                (len(self.counts) - 2) / self.bins_per_octave
            )
            return (last, max(self.max, last))
        return (
            self.lo * 2.0 ** ((bucket - 1) / self.bins_per_octave),
            self.lo * 2.0 ** (bucket / self.bins_per_octave),
        )

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile from the bucket counts.

        Nearest-rank bucket lookup with geometric interpolation inside the
        bucket, clamped to the exact observed ``[min, max]`` — monotone in
        ``q`` and within one bucket width (relative) of the true value.
        """
        if self.count == 0:
            return 0.0
        target = max(1, int(math.ceil((q / 100.0) * self.count)))
        cum = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cum, target))
        in_bucket = int(self.counts[bucket])
        before = int(cum[bucket]) - in_bucket
        fraction = (target - before) / in_bucket if in_bucket else 0.0
        edge_lo, edge_hi = self._edges(bucket)
        if edge_lo <= 0.0 or edge_hi <= 0.0:
            value = edge_lo + (edge_hi - edge_lo) * fraction
        else:
            value = edge_lo * (edge_hi / edge_lo) ** fraction
        return float(min(max(value, self.min), self.max))

    # ------------------------------------------------------------------
    # Merge / export
    # ------------------------------------------------------------------
    def _layout(self) -> tuple:
        return (self.lo, self.hi, self.bins_per_octave)

    def merge(self, other: "Histogram") -> None:
        if self._layout() != other._layout():
            raise ValueError(
                f"histogram {self.name!r}: bucket layouts differ "
                f"({self._layout()} vs {other._layout()})"
            )
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict:
        nonzero = np.flatnonzero(self.counts)
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p99": self.percentile(99) if self.count else None,
            "layout": {
                "lo": self.lo,
                "hi": self.hi,
                "bins_per_octave": self.bins_per_octave,
            },
            # Sparse bucket export: {bucket index: count}, bounded by the
            # fixed layout regardless of how many values were observed.
            "buckets": {int(i): int(self.counts[i]) for i in nonzero},
        }


class MetricsRegistry:
    """A named collection of metrics with exact whole-registry merging.

    Metric constructors are idempotent: asking for an existing name returns
    the existing metric (configuration must match for histograms), so
    instrumented layers can share one registry without coordination.
    :meth:`merge` folds another registry in — metrics present in both merge
    exactly; metrics only the other side has are copied in — which is what
    the serving fabric does with per-worker registries at shutdown.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Constructors (idempotent)
    # ------------------------------------------------------------------
    def _named(self, name: str, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._named(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._named(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, lo: float, hi: float, bins_per_octave: int = 8
    ) -> Histogram:
        metric = self._named(
            name, lambda: Histogram(name, lo, hi, bins_per_octave), Histogram
        )
        if metric._layout() != (float(lo), float(hi), int(bins_per_octave)):
            raise ValueError(
                f"histogram {name!r} already registered with layout "
                f"{metric._layout()}"
            )
        return metric

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def select(self, prefix: str) -> dict[str, object]:
        """All metrics whose name starts with ``prefix``, by name."""
        return {
            name: metric
            for name, metric in self._metrics.items()
            if name.startswith(prefix)
        }

    # ------------------------------------------------------------------
    # Merge / export
    # ------------------------------------------------------------------
    def _clone_of(self, metric):
        if isinstance(metric, Counter):
            fresh = Counter(metric.name)
        elif isinstance(metric, Gauge):
            fresh = Gauge(metric.name)
        elif isinstance(metric, Histogram):
            fresh = Histogram(
                metric.name, metric.lo, metric.hi, metric.bins_per_octave
            )
        else:  # pragma: no cover - registry only holds the three types
            raise TypeError(f"unknown metric type {type(metric).__name__}")
        fresh.merge(metric)
        return fresh

    def merge(self, other: "MetricsRegistry") -> None:
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = self._clone_of(metric)
                continue
            if type(mine) is not type(metric):
                raise TypeError(
                    f"metric {name!r}: cannot merge "
                    f"{type(metric).__name__} into {type(mine).__name__}"
                )
            mine.merge(metric)

    def to_dict(self) -> dict:
        return {
            name: self._metrics[name].snapshot() for name in self.names()
        }

    def to_json(self, indent: "int | None" = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
