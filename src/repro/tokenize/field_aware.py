"""Field-aware (protocol-format) tokenizer.

The alternative the paper proposes in Section 4.1.2: "recognizing the network
protocol (language) and tokenizing it based on protocol format (e.g., 4 byte
IP address, 2 byte port number, one byte TCP flag, HTTP fields, etc.).  This
would preserve the semantics of the tokens as per the underlying network
protocol specifications."

Tokens are ``field=value`` strings for categorical fields (protocol number,
ports, TCP flags, DNS record types, TLS ciphersuites, HTTP methods/statuses)
and bucketed tokens for numerical fields (lengths, TTLs).  Domain names are
split into registrable-domain + per-label subtokens so that rare hostnames
share structure with their parent domain (the sub-word idea transplanted to
DNS names).

Examples
--------
>>> from repro.net import build_packet
>>> from repro.tokenize import FieldAwareTokenizer
>>> packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP",
...                       src_port=49877, dst_port=443)
>>> FieldAwareTokenizer().tokenize_packet(packet)
['ip.proto=TCP', 'len<=64', 'ip.ttl=<=64', 'tp=tcp', 'tcp.dport=443', \
'tcp.sport=ephemeral', 'tcp.flags=NONE', 'tcp.win=<=65535']

The columnar batch path produces identical rows; see
:meth:`FieldAwareTokenizer.encode_batch`.
"""

from __future__ import annotations

import functools
import itertools
from typing import Sequence

import numpy as np

from ..net.addresses import int_to_ipv4
from ..net.columns import (
    APP_DNS,
    APP_HTTP_REQUEST,
    APP_HTTP_RESPONSE,
    APP_NONE,
    APP_NTP,
    APP_OTHER,
    APP_TLS_CLIENT,
    APP_TLS_SERVER,
    PacketColumns,
    TRANSPORT_ICMP,
    TRANSPORT_TCP,
    TRANSPORT_UDP,
    as_packets,
)
from ..net.dns import DNSMessage, RECORD_TYPES
from ..net.headers import ICMPHeader, TCPHeader, UDPHeader
from ..net.http import HTTPRequest, HTTPResponse
from ..net.ntp import NTPPacket
from ..net.packet import Packet
from ..net.ports import WELL_KNOWN_PORTS, port_service, protocol_name
from ..net.tls import TLSClientHello, TLSServerHello
from .base import LENGTH_BUCKET_BOUNDS, PacketTokenizer, _scatter_ids
from .vocab import Vocabulary

__all__ = ["FieldAwareTokenizer"]

# Single sources for the bucketed fields: the scalar helpers and the
# vectorized batch path both derive their tokens from these bounds.
_LENGTH_BOUNDS = np.array(LENGTH_BUCKET_BOUNDS)
_TTL_BOUNDS = np.array([32, 64, 128, 255])
_WINDOW_BOUNDS = np.array([1024, 8192, 32768, 65535])

#: Tokens emitted for each transport kind (none/TCP/UDP/ICMP), indexed by
#: :data:`repro.net.columns.PacketColumns.transport_kind` values.
_TRANSPORT_TOKEN_COUNT = np.array([0, 5, 3, 3], dtype=np.int64)

# Sorted registries used by the columnar fast path to classify whole port and
# DNS-record-type columns without per-value Python dispatch.
_KNOWN_PORTS = np.array(sorted(WELL_KNOWN_PORTS), dtype=np.int64)
_DOMAIN_RECORD_TYPES = frozenset(
    RECORD_TYPES[name] for name in ("CNAME", "NS", "PTR", "MX")
)


@functools.lru_cache(maxsize=256)
def _proto_token(protocol: int) -> str:
    return f"ip.proto={protocol_name(protocol)}"


@functools.lru_cache(maxsize=256)
def _tcp_flags_token(flags: int) -> str:
    names = "+".join(TCPHeader(flags=flags).flag_names()) or "NONE"
    return f"tcp.flags={names}"


class FieldAwareTokenizer(PacketTokenizer):
    """Tokenize packets along protocol field boundaries.

    Parameters
    ----------
    include_addresses:
        Whether to emit subnet-level tokens for IP addresses.  Raw addresses
        are high-cardinality and rarely transfer across captures, so only the
        /16 prefix is tokenized, and only when this flag is set.
    max_dns_answers:
        Cap on the number of answer-record tokens emitted per DNS response.
    max_ciphersuites:
        Cap on the number of offered-ciphersuite tokens per ClientHello.
    """

    name = "field"

    def __init__(
        self,
        include_addresses: bool = False,
        max_dns_answers: int = 6,
        max_ciphersuites: int = 8,
    ):
        self.include_addresses = include_addresses
        self.max_dns_answers = max_dns_answers
        self.max_ciphersuites = max_ciphersuites

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def tokenize_packet(self, packet: Packet) -> list[str]:
        tokens: list[str] = []
        tokens.extend(self._ip_tokens(packet))
        tokens.extend(self._transport_tokens(packet))
        tokens.extend(self._application_tokens(packet))
        return tokens

    def tokenize_trace(
        self, packets: "Sequence[Packet] | PacketColumns"
    ) -> list[list[str]]:
        """Batch tokenization with the IP-layer buckets computed as array ops."""
        packets = as_packets(packets)
        ip_rows = self._ip_tokens_batch(packets)
        return [
            ip_tokens + self._transport_tokens(p) + self._application_tokens(p)
            for ip_tokens, p in zip(ip_rows, packets)
        ]

    def encode_batch(
        self,
        packets: "Sequence[Packet] | PacketColumns",
        vocabulary: Vocabulary,
        max_len: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar encode: rows grouped by protocol, fields mapped by column.

        Given a :class:`~repro.net.columns.PacketColumns` batch, every
        protocol layer is tokenized with whole-column operations: bucketed
        fields go through one ``searchsorted`` per column, categorical fields
        through one unique-value table per column, and rows are grouped by
        transport and application protocol so each group's token layout is
        assembled with array scatters instead of per-packet dispatch.
        Application payloads of unknown types (``APP_OTHER`` rows) fall back
        to the per-packet tokenizer, keeping the output identical to
        ``vocabulary.encode(self.tokenize_packet(p))`` for every row.

        Packet-list input keeps the pre-columnar batch path (per-packet token
        lists funnelled through ``encode_ids_batch``) — converting to columns
        just to encode once would spend the conversion's one-time cost on a
        single consumer; convert with ``PacketColumns.from_packets`` and pass
        the columns when the trace is used more than once.
        """
        if not isinstance(packets, PacketColumns):
            return super().encode_batch(packets, vocabulary, max_len=max_len)
        columns = packets
        n = len(columns)
        if n == 0:
            return vocabulary.encode_ids_batch([], max_len=max_len)

        token_ids: dict[str, int] = {}
        to_id = vocabulary.token_to_id

        def tid(token: str) -> int:
            value = token_ids.get(token)
            if value is None:
                value = to_id(token)
                token_ids[token] = value
            return value

        def table_ids(values: np.ndarray, render) -> np.ndarray:
            """Map an integer column to token ids via its unique values."""
            uniq, inverse = np.unique(values, return_inverse=True)
            table = np.fromiter((tid(render(int(v))) for v in uniq), np.int32, len(uniq))
            return table[inverse]

        # --- IP layer: one searchsorted per bucketed column ------------
        ip_rows = np.flatnonzero(columns.has_ip)
        tokens_per_ip_row = 3 + (2 if self.include_addresses else 0)
        ip_lens = np.where(columns.has_ip, tokens_per_ip_row, 0)
        ip_parts: list[np.ndarray] = []
        if len(ip_rows):
            ip_parts.append(table_ids(columns.ip_protocol[ip_rows], _proto_token))
            length_table = self._length_bucket_table(tid)
            ip_parts.append(
                length_table[np.searchsorted(_LENGTH_BOUNDS, columns.ip_total_length[ip_rows])]
            )
            ttl_tokens = [f"ip.ttl={self._ttl_bucket(int(b))}" for b in _TTL_BOUNDS] + [
                f"ip.ttl={self._ttl_bucket(int(_TTL_BOUNDS[-1]) + 1)}"
            ]
            ttl_table = np.fromiter((tid(t) for t in ttl_tokens), np.int32, len(ttl_tokens))
            ip_parts.append(ttl_table[np.searchsorted(_TTL_BOUNDS, columns.ip_ttl[ip_rows])])
            if self.include_addresses:
                # Render from the recorded address *spelling*, as the
                # per-packet path does ('.'.join(src_ip.split('.')[:2])), so
                # non-canonical spellings tokenize identically.
                ip_names = columns.ip_names
                overrides = columns.spelling_overrides

                def address_token(label: str, spelling: str) -> str:
                    return f"ip.{label}={'.'.join(spelling.split('.')[:2])}"

                for column, field, label in (
                    (columns.ip_src, "ip_src", "src16"),
                    (columns.ip_dst, "ip_dst", "dst16"),
                ):
                    part = table_ids(
                        column[ip_rows],
                        lambda v, label=label: address_token(
                            label, ip_names.get(v) or int_to_ipv4(v)
                        ),
                    )
                    if overrides:
                        for (over_field, row), spelling in overrides.items():
                            if over_field == field and columns.has_ip[row]:
                                position = int(np.searchsorted(ip_rows, row))
                                part[position] = tid(address_token(label, spelling))
                    ip_parts.append(part)

        # --- Transport layer: one group per transport kind --------------
        kind = columns.transport_kind
        tp_lens = _TRANSPORT_TOKEN_COUNT[kind]
        tcp_rows = np.flatnonzero(kind == TRANSPORT_TCP)
        udp_rows = np.flatnonzero(kind == TRANSPORT_UDP)
        icmp_rows = np.flatnonzero(kind == TRANSPORT_ICMP)
        def port_ids(values: np.ndarray, prefix: str) -> np.ndarray:
            """Port columns mapped to ids with the big ranges short-circuited.

            Ephemeral (>= 49152) and unregistered ports each map to a single
            token, so only well-known ports go through per-value rendering —
            without this, every distinct client port would cost a
            ``_port_token`` call.
            """
            out = np.empty(len(values), dtype=np.int32)
            known_idx = np.searchsorted(_KNOWN_PORTS, values)
            known = (known_idx < len(_KNOWN_PORTS)) & (
                _KNOWN_PORTS[np.minimum(known_idx, len(_KNOWN_PORTS) - 1)] == values
            )
            ephemeral = ~known & (values >= 49152)
            unknown = ~known & ~ephemeral
            if ephemeral.any():
                out[ephemeral] = tid(f"{prefix}=ephemeral")
            if unknown.any():
                out[unknown] = tid(f"{prefix}=unknown")
            if known.any():
                out[known] = table_ids(values[known], lambda p: f"{prefix}={self._port_token(p)}")
            return out

        tcp_parts: list[np.ndarray] = []
        if len(tcp_rows):
            tcp_parts.append(np.full(len(tcp_rows), tid("tp=tcp"), dtype=np.int32))
            tcp_parts.append(port_ids(columns.dst_port[tcp_rows], "tcp.dport"))
            tcp_parts.append(port_ids(columns.src_port[tcp_rows], "tcp.sport"))
            tcp_parts.append(table_ids(columns.tcp_flags[tcp_rows], _tcp_flags_token))
            window_tokens = [f"tcp.win={self._window_bucket(int(b))}" for b in _WINDOW_BOUNDS] + [
                f"tcp.win={self._window_bucket(int(_WINDOW_BOUNDS[-1]) + 1)}"
            ]
            window_table = np.fromiter((tid(t) for t in window_tokens), np.int32, len(window_tokens))
            tcp_parts.append(
                window_table[np.searchsorted(_WINDOW_BOUNDS, columns.tcp_window[tcp_rows])]
            )
        udp_parts: list[np.ndarray] = []
        if len(udp_rows):
            udp_parts.append(np.full(len(udp_rows), tid("tp=udp"), dtype=np.int32))
            udp_parts.append(port_ids(columns.dst_port[udp_rows], "udp.dport"))
            udp_parts.append(port_ids(columns.src_port[udp_rows], "udp.sport"))
        icmp_parts: list[np.ndarray] = []
        if len(icmp_rows):
            icmp_parts.append(np.full(len(icmp_rows), tid("tp=icmp"), dtype=np.int32))
            icmp_parts.append(table_ids(columns.icmp_type[icmp_rows], "icmp.type={}".format))
            icmp_parts.append(table_ids(columns.icmp_code[icmp_rows], "icmp.code={}".format))

        # --- Application layer: one group per application protocol ------
        app_ids, app_lens = self._application_ids(columns, tid)

        # --- Assembly: scatter every group into one flat id stream ------
        row_lens = ip_lens + tp_lens + app_lens
        starts = np.cumsum(row_lens) - row_lens
        flat = np.empty(int(row_lens.sum()), dtype=np.int32)
        for offset, part in enumerate(ip_parts):
            flat[starts[ip_rows] + offset] = part
        for rows, parts in ((tcp_rows, tcp_parts), (udp_rows, udp_parts), (icmp_rows, icmp_parts)):
            base = starts[rows] + ip_lens[rows]
            for offset, part in enumerate(parts):
                flat[base + offset] = part
        app_rows = np.flatnonzero(app_lens)
        if len(app_rows):
            counts = app_lens[app_rows]
            app_flat = np.array(
                list(itertools.chain.from_iterable(app_ids)), dtype=np.int32
            )
            app_base = starts[app_rows] + ip_lens[app_rows] + tp_lens[app_rows]
            within = np.arange(len(app_flat)) - np.repeat(np.cumsum(counts) - counts, counts)
            flat[np.repeat(app_base, counts) + within] = app_flat

        if max_len is not None and row_lens.max(initial=0) > max_len:
            within_row = np.arange(len(flat)) - np.repeat(starts, row_lens)
            flat = flat[within_row < max_len]
            row_lens = np.minimum(row_lens, max_len)
        return _scatter_ids(flat, row_lens, vocabulary.pad_id, max_len)

    def _length_bucket_table(self, tid) -> np.ndarray:
        """Token ids of every length bucket (bounds + overflow), in searchsorted order."""
        tokens = [self.length_bucket(int(b)) for b in _LENGTH_BOUNDS] + [
            self.length_bucket(int(_LENGTH_BOUNDS[-1]) + 1)
        ]
        return np.fromiter((tid(t) for t in tokens), np.int32, len(tokens))

    def _application_ids(self, columns: PacketColumns, tid) -> tuple[list, np.ndarray]:
        """Per-row application token ids, tokenized group-by-group.

        Each known application protocol is handled in its own pass with
        per-value caches, so repeated field values (hosts, record types,
        ciphersuites, user agents) cost one token construction and one
        vocabulary lookup for the whole batch.  Rows tagged ``APP_OTHER``
        (application objects the columnar schema does not know) fall back to
        the per-packet path.
        """
        n = len(columns)
        kinds = columns.app_kind
        apps = columns.applications
        app_ids: list = [()] * n
        app_lens = [0] * n

        domain_tokens = self._domain_tokens

        def make_domain_ids(prefix: str):
            cache: dict[str, tuple[int, ...]] = {}

            def domain_ids(domain: str) -> tuple[int, ...]:
                value = cache.get(domain)
                if value is None:
                    value = tuple(tid(t) for t in domain_tokens(prefix, domain))
                    cache[domain] = value
                return value

            return domain_ids

        rows = np.flatnonzero(kinds == APP_DNS)
        if len(rows):
            dns_id = tid("app=dns")
            qr = (tid("dns.qr=query"), tid("dns.qr=response"))
            qname_ids = make_domain_ids("dns.qname")
            adata_ids = make_domain_ids("dns.adata")
            rcode_cache: dict = {}
            question_cache: dict = {}
            atype_cache: dict = {}
            count_cache: dict = {}
            # Answer-free messages (plain queries) repeat the same handful of
            # (flags, question) shapes, so their whole token run is cached.
            message_cache: dict = {}
            cap = self.max_dns_answers

            def question_ids(question) -> tuple[int, ...]:
                key = (question.qtype, question.name)
                value = question_cache.get(key)
                if value is None:
                    value = question_cache[key] = (
                        tid(f"dns.qtype={question.type_name}"),
                        *qname_ids(question.name),
                    )
                return value

            for i in rows.tolist():
                message = apps[i]
                questions = message.questions
                answers = message.answers
                if not answers and len(questions) == 1:
                    question = questions[0]
                    key = (message.is_response, message.rcode, question.qtype, question.name)
                    ids = message_cache.get(key)
                    if ids is None:
                        ids = [dns_id, qr[message.is_response]]
                        if message.rcode:
                            ids.append(tid(f"dns.rcode={message.rcode}"))
                        ids.extend(question_ids(question))
                        message_cache[key] = ids
                    app_ids[i] = ids
                    app_lens[i] = len(ids)
                    continue
                ids = [dns_id, qr[message.is_response]]
                rcode = message.rcode
                if rcode:
                    value = rcode_cache.get(rcode)
                    if value is None:
                        value = rcode_cache[rcode] = tid(f"dns.rcode={rcode}")
                    ids.append(value)
                for question in questions[:2]:
                    ids.extend(question_ids(question))
                if answers:
                    count_key = min(len(answers), cap)
                    count_id = count_cache.get(count_key)
                    if count_id is None:
                        count_id = count_cache[count_key] = tid(f"dns.answers={count_key}")
                    for answer in answers[:cap]:
                        rtype = answer.rtype
                        value = atype_cache.get(rtype)
                        if value is None:
                            value = atype_cache[rtype] = tid(f"dns.atype={answer.type_name}")
                        ids.append(value)
                        if rtype in _DOMAIN_RECORD_TYPES:
                            ids.extend(adata_ids(answer.rdata.split(" ")[-1]))
                        else:
                            ids.append(count_id)
                app_ids[i] = ids
                app_lens[i] = len(ids)

        rows = np.flatnonzero(kinds == APP_HTTP_REQUEST)
        if len(rows):
            http_id = tid("app=http")
            host_ids = make_domain_ids("http.host")
            method_cache: dict = {}
            path_cache: dict = {}
            ua_cache: dict = {}
            for i in rows.tolist():
                request = apps[i]
                method = request.method
                method_id = method_cache.get(method)
                if method_id is None:
                    method_id = method_cache[method] = tid(f"http.method={method}")
                path = request.path
                path_id = path_cache.get(path)
                if path_id is None:
                    path_id = path_cache[path] = tid(f"http.path={self._path_token(path)}")
                user_agent = request.user_agent
                ua_id = ua_cache.get(user_agent)
                if ua_id is None:
                    ua_id = ua_cache[user_agent] = tid(
                        f"http.ua={self._user_agent_family(user_agent)}"
                    )
                ids = [http_id, method_id, path_id, *host_ids(request.host), ua_id]
                app_ids[i] = ids
                app_lens[i] = len(ids)

        rows = np.flatnonzero(kinds == APP_HTTP_RESPONSE)
        if len(rows):
            http_id = tid("app=http")
            status_cache: dict = {}
            ctype_cache: dict = {}
            clen_cache: dict = {}
            for i in rows.tolist():
                response = apps[i]
                status = response.status
                status_id = status_cache.get(status)
                if status_id is None:
                    status_id = status_cache[status] = tid(f"http.status={status}")
                ctype = response.content_type
                ctype_id = ctype_cache.get(ctype)
                if ctype_id is None:
                    ctype_id = ctype_cache[ctype] = tid(f"http.ctype={ctype.split('/')[0]}")
                clen = response.content_length
                clen_id = clen_cache.get(clen)
                if clen_id is None:
                    clen_id = clen_cache[clen] = tid(f"http.clen={self.length_bucket(clen)}")
                app_ids[i] = (http_id, status_id, ctype_id, clen_id)
                app_lens[i] = 4

        rows = np.flatnonzero(kinds == APP_TLS_CLIENT)
        if len(rows):
            header = (tid("app=tls"), tid("tls.msg=client-hello"))
            sni_ids = make_domain_ids("tls.sni")
            suites_cache: dict = {}
            cap = self.max_ciphersuites
            for i in rows.tolist():
                hello = apps[i]
                # Hellos offer one of a few fixed suite lists; the whole
                # suite token run is cached per distinct offer.
                suites_key = tuple(hello.ciphersuites[:cap])
                suite_run = suites_cache.get(suites_key)
                if suite_run is None:
                    suite_run = suites_cache[suites_key] = tuple(
                        tid(f"tls.cs={suite}") for suite in suites_key
                    )
                ids = [*header, *sni_ids(hello.server_name), *suite_run]
                app_ids[i] = ids
                app_lens[i] = len(ids)

        rows = np.flatnonzero(kinds == APP_TLS_SERVER)
        if len(rows):
            header = (tid("app=tls"), tid("tls.msg=server-hello"))
            suite_cache = {}
            for i in rows.tolist():
                suite = apps[i].ciphersuite
                value = suite_cache.get(suite)
                if value is None:
                    value = suite_cache[suite] = tid(f"tls.cs={suite}")
                app_ids[i] = (*header, value)
                app_lens[i] = 3

        rows = np.flatnonzero(kinds == APP_NTP)
        if len(rows):
            ntp_cache: dict = {}
            for i in rows.tolist():
                packet = apps[i]
                key = (packet.mode, packet.stratum)
                ids = ntp_cache.get(key)
                if ids is None:
                    ids = ntp_cache[key] = (
                        tid("app=ntp"),
                        tid(f"ntp.mode={packet.mode}"),
                        tid(f"ntp.stratum={packet.stratum}"),
                    )
                app_ids[i] = ids
                app_lens[i] = 3

        # Raw payloads: application absent (or raw bytes) with a non-empty
        # *original* payload, exactly the per-packet condition.
        raw = (kinds == APP_NONE) & (columns.payload_lengths > 0)
        raw &= ~columns.payload_from_application
        rows = np.flatnonzero(raw)
        if len(rows):
            raw_id = tid("app=raw")
            length_table = self._length_bucket_table(tid)
            buckets = length_table[
                np.searchsorted(_LENGTH_BOUNDS, columns.payload_lengths[rows])
            ]
            for i, bucket in zip(rows.tolist(), buckets.tolist()):
                app_ids[i] = (raw_id, bucket)
                app_lens[i] = 2

        rows = np.flatnonzero(kinds == APP_OTHER)
        if len(rows):
            for i in rows.tolist():
                ids = [tid(t) for t in self._application_tokens(columns.packet(i))]
                app_ids[i] = ids
                app_lens[i] = len(ids)
        return app_ids, np.array(app_lens, dtype=np.int64)

    def _ip_tokens_batch(self, packets: Sequence[Packet]) -> list[list[str]]:
        """Vectorized :meth:`_ip_tokens`: one searchsorted per bucketed field."""
        n = len(packets)
        rows: list[list[str]] = [[] for _ in range(n)]
        with_ip = [i for i in range(n) if packets[i].ip is not None]
        if not with_ip:
            return rows
        count = len(with_ip)
        lengths = np.fromiter((packets[i].ip.total_length for i in with_ip), np.int64, count)
        ttls = np.fromiter((packets[i].ip.ttl for i in with_ip), np.int64, count)
        length_buckets = np.searchsorted(_LENGTH_BOUNDS, lengths)
        ttl_buckets = np.searchsorted(_TTL_BOUNDS, ttls)
        length_tokens = [
            self.length_bucket(int(b)) for b in _LENGTH_BOUNDS
        ] + [self.length_bucket(int(_LENGTH_BOUNDS[-1]) + 1)]
        ttl_tokens = [
            f"ip.ttl={self._ttl_bucket(int(b))}" for b in _TTL_BOUNDS
        ] + [f"ip.ttl={self._ttl_bucket(int(_TTL_BOUNDS[-1]) + 1)}"]
        for row, index in enumerate(with_ip):
            packet = packets[index]
            tokens = [
                _proto_token(packet.ip.protocol),
                length_tokens[length_buckets[row]],
                ttl_tokens[ttl_buckets[row]],
            ]
            if self.include_addresses:
                tokens.extend(self._address_tokens(packet))
            rows[index] = tokens
        return rows

    # ------------------------------------------------------------------
    # Layer-specific tokenization
    # ------------------------------------------------------------------
    def _ip_tokens(self, packet: Packet) -> list[str]:
        if packet.ip is None:
            return []
        tokens = [
            _proto_token(packet.ip.protocol),
            self.length_bucket(packet.ip.total_length),
            f"ip.ttl={self._ttl_bucket(packet.ip.ttl)}",
        ]
        if self.include_addresses:
            tokens.extend(self._address_tokens(packet))
        return tokens

    @staticmethod
    def _address_tokens(packet: Packet) -> list[str]:
        return [
            f"ip.src16={'.'.join(packet.ip.src_ip.split('.')[:2])}",
            f"ip.dst16={'.'.join(packet.ip.dst_ip.split('.')[:2])}",
        ]

    def _transport_tokens(self, packet: Packet) -> list[str]:
        transport = packet.transport
        if isinstance(transport, TCPHeader):
            tokens = ["tp=tcp"]
            tokens.append(f"tcp.dport={self._port_token(transport.dst_port)}")
            tokens.append(f"tcp.sport={self._port_token(transport.src_port)}")
            flags = "+".join(transport.flag_names()) or "NONE"
            tokens.append(f"tcp.flags={flags}")
            tokens.append(f"tcp.win={self._window_bucket(transport.window)}")
            return tokens
        if isinstance(transport, UDPHeader):
            return [
                "tp=udp",
                f"udp.dport={self._port_token(transport.dst_port)}",
                f"udp.sport={self._port_token(transport.src_port)}",
            ]
        if isinstance(transport, ICMPHeader):
            return ["tp=icmp", f"icmp.type={transport.icmp_type}", f"icmp.code={transport.code}"]
        return []

    def _application_tokens(self, packet: Packet) -> list[str]:
        app = packet.application
        if isinstance(app, DNSMessage):
            return self._dns_tokens(app)
        if isinstance(app, HTTPRequest):
            return [
                "app=http",
                f"http.method={app.method}",
                f"http.path={self._path_token(app.path)}",
                *self._domain_tokens("http.host", app.host),
                f"http.ua={self._user_agent_family(app.user_agent)}",
            ]
        if isinstance(app, HTTPResponse):
            return [
                "app=http",
                f"http.status={app.status}",
                f"http.ctype={app.content_type.split('/')[0]}",
                f"http.clen={self.length_bucket(app.content_length)}",
            ]
        if isinstance(app, TLSClientHello):
            tokens = ["app=tls", "tls.msg=client-hello"]
            tokens.extend(self._domain_tokens("tls.sni", app.server_name))
            for suite in app.ciphersuites[: self.max_ciphersuites]:
                tokens.append(f"tls.cs={suite}")
            return tokens
        if isinstance(app, TLSServerHello):
            return ["app=tls", "tls.msg=server-hello", f"tls.cs={app.ciphersuite}"]
        if isinstance(app, NTPPacket):
            return ["app=ntp", f"ntp.mode={app.mode}", f"ntp.stratum={app.stratum}"]
        if packet.payload:
            return ["app=raw", self.length_bucket(len(packet.payload))]
        return []

    def _dns_tokens(self, message: DNSMessage) -> list[str]:
        tokens = ["app=dns", "dns.qr=response" if message.is_response else "dns.qr=query"]
        if message.rcode:
            tokens.append(f"dns.rcode={message.rcode}")
        for question in message.questions[:2]:
            tokens.append(f"dns.qtype={question.type_name}")
            tokens.extend(self._domain_tokens("dns.qname", question.name))
        for answer in message.answers[: self.max_dns_answers]:
            tokens.append(f"dns.atype={answer.type_name}")
            if answer.type_name in ("CNAME", "NS", "PTR", "MX"):
                target = answer.rdata.split(" ")[-1]
                tokens.extend(self._domain_tokens("dns.adata", target))
            else:
                tokens.append(f"dns.answers={min(len(message.answers), self.max_dns_answers)}")
        return tokens

    # ------------------------------------------------------------------
    # Value bucketing helpers
    # ------------------------------------------------------------------
    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _port_token(port: int) -> str:
        service = port_service(port)
        if service in ("ephemeral", "unknown"):
            return service
        return str(port)

    @staticmethod
    def _ttl_bucket(ttl: int) -> str:
        for bound in _TTL_BOUNDS:
            if ttl <= bound:
                return f"<={bound}"
        return f">{_TTL_BOUNDS[-1]}"

    @staticmethod
    def _window_bucket(window: int) -> str:
        for bound in _WINDOW_BOUNDS:
            if window <= bound:
                return f"<={bound}"
        return f">{_WINDOW_BOUNDS[-1]}"

    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _path_token(path: str) -> str:
        head = path.split("?")[0]
        parts = [p for p in head.split("/") if p]
        if not parts:
            return "/"
        suffix = parts[-1].rsplit(".", 1)
        if len(suffix) == 2:
            return f"*.{suffix[1]}"
        return f"/{parts[0]}"

    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _user_agent_family(user_agent: str) -> str:
        lowered = user_agent.lower()
        for family in ("chrome", "safari", "firefox", "curl", "python", "go-http", "okhttp", "iot"):
            if family in lowered:
                return family
        return "other"

    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _domain_tokens(prefix: str, domain: str) -> tuple[str, ...]:
        """Registrable-domain token plus per-label subtokens.

        ``www.cdn-3.netflix.com`` becomes
        ``("dns.qname=netflix.com", "dns.qlabel=www", "dns.qlabel=cdn-3")`` —
        rare hostnames share the registrable-domain token with their parent,
        which is the sub-word idea (WordPiece/BPE) adapted to DNS names.
        """
        if not domain:
            return ()
        labels = domain.rstrip(".").split(".")
        if len(labels) >= 2:
            registrable = ".".join(labels[-2:])
            extra = labels[:-2]
        else:
            registrable = domain
            extra = []
        tokens = [f"{prefix}={registrable}"]
        tokens.extend(f"{prefix}.label={label}" for label in extra[:3])
        return tuple(tokens)
