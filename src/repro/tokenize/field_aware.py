"""Field-aware (protocol-format) tokenizer.

The alternative the paper proposes in Section 4.1.2: "recognizing the network
protocol (language) and tokenizing it based on protocol format (e.g., 4 byte
IP address, 2 byte port number, one byte TCP flag, HTTP fields, etc.).  This
would preserve the semantics of the tokens as per the underlying network
protocol specifications."

Tokens are ``field=value`` strings for categorical fields (protocol number,
ports, TCP flags, DNS record types, TLS ciphersuites, HTTP methods/statuses)
and bucketed tokens for numerical fields (lengths, TTLs).  Domain names are
split into registrable-domain + per-label subtokens so that rare hostnames
share structure with their parent domain (the sub-word idea transplanted to
DNS names).
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from ..net.dns import DNSMessage
from ..net.headers import ICMPHeader, TCPHeader, UDPHeader
from ..net.http import HTTPRequest, HTTPResponse
from ..net.ntp import NTPPacket
from ..net.packet import Packet
from ..net.ports import port_service, protocol_name
from ..net.tls import TLSClientHello, TLSServerHello
from .base import LENGTH_BUCKET_BOUNDS, PacketTokenizer

__all__ = ["FieldAwareTokenizer"]

# Single sources for the bucketed fields: the scalar helpers and the
# vectorized batch path both derive their tokens from these bounds.
_LENGTH_BOUNDS = np.array(LENGTH_BUCKET_BOUNDS)
_TTL_BOUNDS = np.array([32, 64, 128, 255])


@functools.lru_cache(maxsize=256)
def _proto_token(protocol: int) -> str:
    return f"ip.proto={protocol_name(protocol)}"


class FieldAwareTokenizer(PacketTokenizer):
    """Tokenize packets along protocol field boundaries.

    Parameters
    ----------
    include_addresses:
        Whether to emit subnet-level tokens for IP addresses.  Raw addresses
        are high-cardinality and rarely transfer across captures, so only the
        /16 prefix is tokenized, and only when this flag is set.
    max_dns_answers:
        Cap on the number of answer-record tokens emitted per DNS response.
    max_ciphersuites:
        Cap on the number of offered-ciphersuite tokens per ClientHello.
    """

    name = "field"

    def __init__(
        self,
        include_addresses: bool = False,
        max_dns_answers: int = 6,
        max_ciphersuites: int = 8,
    ):
        self.include_addresses = include_addresses
        self.max_dns_answers = max_dns_answers
        self.max_ciphersuites = max_ciphersuites

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def tokenize_packet(self, packet: Packet) -> list[str]:
        tokens: list[str] = []
        tokens.extend(self._ip_tokens(packet))
        tokens.extend(self._transport_tokens(packet))
        tokens.extend(self._application_tokens(packet))
        return tokens

    def tokenize_trace(self, packets: Sequence[Packet]) -> list[list[str]]:
        """Batch tokenization with the IP-layer buckets computed as array ops."""
        ip_rows = self._ip_tokens_batch(packets)
        return [
            ip_tokens + self._transport_tokens(p) + self._application_tokens(p)
            for ip_tokens, p in zip(ip_rows, packets)
        ]

    def _ip_tokens_batch(self, packets: Sequence[Packet]) -> list[list[str]]:
        """Vectorized :meth:`_ip_tokens`: one searchsorted per bucketed field."""
        n = len(packets)
        rows: list[list[str]] = [[] for _ in range(n)]
        with_ip = [i for i in range(n) if packets[i].ip is not None]
        if not with_ip:
            return rows
        count = len(with_ip)
        lengths = np.fromiter((packets[i].ip.total_length for i in with_ip), np.int64, count)
        ttls = np.fromiter((packets[i].ip.ttl for i in with_ip), np.int64, count)
        length_buckets = np.searchsorted(_LENGTH_BOUNDS, lengths)
        ttl_buckets = np.searchsorted(_TTL_BOUNDS, ttls)
        length_tokens = [
            self.length_bucket(int(b)) for b in _LENGTH_BOUNDS
        ] + [self.length_bucket(int(_LENGTH_BOUNDS[-1]) + 1)]
        ttl_tokens = [
            f"ip.ttl={self._ttl_bucket(int(b))}" for b in _TTL_BOUNDS
        ] + [f"ip.ttl={self._ttl_bucket(int(_TTL_BOUNDS[-1]) + 1)}"]
        for row, index in enumerate(with_ip):
            packet = packets[index]
            tokens = [
                _proto_token(packet.ip.protocol),
                length_tokens[length_buckets[row]],
                ttl_tokens[ttl_buckets[row]],
            ]
            if self.include_addresses:
                tokens.extend(self._address_tokens(packet))
            rows[index] = tokens
        return rows

    # ------------------------------------------------------------------
    # Layer-specific tokenization
    # ------------------------------------------------------------------
    def _ip_tokens(self, packet: Packet) -> list[str]:
        if packet.ip is None:
            return []
        tokens = [
            _proto_token(packet.ip.protocol),
            self.length_bucket(packet.ip.total_length),
            f"ip.ttl={self._ttl_bucket(packet.ip.ttl)}",
        ]
        if self.include_addresses:
            tokens.extend(self._address_tokens(packet))
        return tokens

    @staticmethod
    def _address_tokens(packet: Packet) -> list[str]:
        return [
            f"ip.src16={'.'.join(packet.ip.src_ip.split('.')[:2])}",
            f"ip.dst16={'.'.join(packet.ip.dst_ip.split('.')[:2])}",
        ]

    def _transport_tokens(self, packet: Packet) -> list[str]:
        transport = packet.transport
        if isinstance(transport, TCPHeader):
            tokens = ["tp=tcp"]
            tokens.append(f"tcp.dport={self._port_token(transport.dst_port)}")
            tokens.append(f"tcp.sport={self._port_token(transport.src_port)}")
            flags = "+".join(transport.flag_names()) or "NONE"
            tokens.append(f"tcp.flags={flags}")
            tokens.append(f"tcp.win={self._window_bucket(transport.window)}")
            return tokens
        if isinstance(transport, UDPHeader):
            return [
                "tp=udp",
                f"udp.dport={self._port_token(transport.dst_port)}",
                f"udp.sport={self._port_token(transport.src_port)}",
            ]
        if isinstance(transport, ICMPHeader):
            return ["tp=icmp", f"icmp.type={transport.icmp_type}", f"icmp.code={transport.code}"]
        return []

    def _application_tokens(self, packet: Packet) -> list[str]:
        app = packet.application
        if isinstance(app, DNSMessage):
            return self._dns_tokens(app)
        if isinstance(app, HTTPRequest):
            return [
                "app=http",
                f"http.method={app.method}",
                f"http.path={self._path_token(app.path)}",
                *self._domain_tokens("http.host", app.host),
                f"http.ua={self._user_agent_family(app.user_agent)}",
            ]
        if isinstance(app, HTTPResponse):
            return [
                "app=http",
                f"http.status={app.status}",
                f"http.ctype={app.content_type.split('/')[0]}",
                f"http.clen={self.length_bucket(app.content_length)}",
            ]
        if isinstance(app, TLSClientHello):
            tokens = ["app=tls", "tls.msg=client-hello"]
            tokens.extend(self._domain_tokens("tls.sni", app.server_name))
            for suite in app.ciphersuites[: self.max_ciphersuites]:
                tokens.append(f"tls.cs={suite}")
            return tokens
        if isinstance(app, TLSServerHello):
            return ["app=tls", "tls.msg=server-hello", f"tls.cs={app.ciphersuite}"]
        if isinstance(app, NTPPacket):
            return ["app=ntp", f"ntp.mode={app.mode}", f"ntp.stratum={app.stratum}"]
        if packet.payload:
            return ["app=raw", self.length_bucket(len(packet.payload))]
        return []

    def _dns_tokens(self, message: DNSMessage) -> list[str]:
        tokens = ["app=dns", "dns.qr=response" if message.is_response else "dns.qr=query"]
        if message.rcode:
            tokens.append(f"dns.rcode={message.rcode}")
        for question in message.questions[:2]:
            tokens.append(f"dns.qtype={question.type_name}")
            tokens.extend(self._domain_tokens("dns.qname", question.name))
        for answer in message.answers[: self.max_dns_answers]:
            tokens.append(f"dns.atype={answer.type_name}")
            if answer.type_name in ("CNAME", "NS", "PTR", "MX"):
                target = answer.rdata.split(" ")[-1]
                tokens.extend(self._domain_tokens("dns.adata", target))
            else:
                tokens.append(f"dns.answers={min(len(message.answers), self.max_dns_answers)}")
        return tokens

    # ------------------------------------------------------------------
    # Value bucketing helpers
    # ------------------------------------------------------------------
    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _port_token(port: int) -> str:
        service = port_service(port)
        if service in ("ephemeral", "unknown"):
            return service
        return str(port)

    @staticmethod
    def _ttl_bucket(ttl: int) -> str:
        for bound in _TTL_BOUNDS:
            if ttl <= bound:
                return f"<={bound}"
        return f">{_TTL_BOUNDS[-1]}"

    @staticmethod
    def _window_bucket(window: int) -> str:
        for bound in (1024, 8192, 32768, 65535):
            if window <= bound:
                return f"<={bound}"
        return ">65535"

    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _path_token(path: str) -> str:
        head = path.split("?")[0]
        parts = [p for p in head.split("/") if p]
        if not parts:
            return "/"
        suffix = parts[-1].rsplit(".", 1)
        if len(suffix) == 2:
            return f"*.{suffix[1]}"
        return f"/{parts[0]}"

    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _user_agent_family(user_agent: str) -> str:
        lowered = user_agent.lower()
        for family in ("chrome", "safari", "firefox", "curl", "python", "go-http", "okhttp", "iot"):
            if family in lowered:
                return family
        return "other"

    @staticmethod
    @functools.lru_cache(maxsize=8192)
    def _domain_tokens(prefix: str, domain: str) -> tuple[str, ...]:
        """Registrable-domain token plus per-label subtokens.

        ``www.cdn-3.netflix.com`` becomes
        ``("dns.qname=netflix.com", "dns.qlabel=www", "dns.qlabel=cdn-3")`` —
        rare hostnames share the registrable-domain token with their parent,
        which is the sub-word idea (WordPiece/BPE) adapted to DNS names.
        """
        if not domain:
            return ()
        labels = domain.rstrip(".").split(".")
        if len(labels) >= 2:
            registrable = ".".join(labels[-2:])
            extra = labels[:-2]
        else:
            registrable = domain
            extra = []
        tokens = [f"{prefix}={registrable}"]
        tokens.extend(f"{prefix}.label={label}" for label in extra[:3])
        return tuple(tokens)
