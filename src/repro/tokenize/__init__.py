"""``repro.tokenize`` — tokenizers for network traffic (paper Section 4.1.2).

Five strategies are provided so their effect on downstream performance can be
compared (experiment E5): byte-level, hex-character-level, field-aware
(protocol-format), learned BPE and learned WordPiece, plus the shared
:class:`Vocabulary`.
"""

from .base import PacketTokenizer
from .bpe import BPETokenizer
from .byte_level import ByteTokenizer, HexCharTokenizer
from .field_aware import FieldAwareTokenizer
from .vocab import CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, Vocabulary
from .wordpiece import WordPieceTokenizer

__all__ = [
    "PacketTokenizer",
    "ByteTokenizer",
    "HexCharTokenizer",
    "FieldAwareTokenizer",
    "BPETokenizer",
    "WordPieceTokenizer",
    "Vocabulary",
    "SPECIAL_TOKENS",
    "PAD",
    "UNK",
    "CLS",
    "SEP",
    "MASK",
]
