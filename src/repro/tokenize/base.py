"""Tokenizer interface.

A tokenizer turns a :class:`~repro.net.packet.Packet` into a list of string
tokens (and, symmetrically, raw byte strings into tokens).  The choice of
tokenizer is one of the open questions the paper poses (Section 4.1.2):
character/byte level, or protocol-format ("field-aware") segmentation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..net.packet import Packet
from .vocab import Vocabulary

__all__ = ["PacketTokenizer", "LENGTH_BUCKET_BOUNDS"]

#: Bounds of the log-spaced packet-length buckets; the single source for
#: both the scalar :meth:`PacketTokenizer.length_bucket` and the vectorized
#: bucketing in the field-aware tokenizer.
LENGTH_BUCKET_BOUNDS = (64, 128, 256, 512, 1024, 1500)


def _raw_slices(
    packets: Sequence[Packet], max_bytes: int, skip_ethernet: bool, limit: int | None = None
) -> list[bytes]:
    """The truncated wire bytes of every packet (shared by the byte tokenizers)."""
    cap = max_bytes if limit is None else min(max_bytes, limit)
    slices = []
    for packet in packets:
        data = packet.to_bytes()
        if skip_ethernet and len(data) > 14:
            data = data[14:]
        slices.append(data[:cap])
    return slices


def _scatter_ids(
    flat_ids: np.ndarray, lengths: np.ndarray, pad_id: int, max_len: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter a flat per-token id array into a padded (N, width) matrix."""
    width = max_len if max_len is not None else (int(lengths.max()) if len(lengths) else 0)
    ids = np.full((len(lengths), width), pad_id, dtype=np.int32)
    mask = np.arange(width)[None, :] < lengths[:, None]
    ids[mask] = flat_ids
    return ids, mask


class PacketTokenizer:
    """Base class for all packet tokenizers."""

    #: Short machine-readable identifier used in benchmark tables.
    name = "base"

    def tokenize_packet(self, packet: Packet) -> list[str]:
        """Tokenize one packet into a list of string tokens."""
        raise NotImplementedError

    def tokenize_trace(self, packets: Sequence[Packet]) -> list[list[str]]:
        """Tokenize every packet of a trace."""
        return [self.tokenize_packet(p) for p in packets]

    def encode_batch(
        self,
        packets: Sequence[Packet],
        vocabulary: Vocabulary,
        max_len: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tokenize and encode a whole trace into padded id/mask matrices.

        Row ``i`` of the returned ``(ids, mask)`` pair holds exactly
        ``vocabulary.encode(self.tokenize_packet(packets[i]))`` (truncated to
        ``max_len``), but the encoding and padding run as batch operations.
        Subclasses override this with fully vectorized implementations; the
        base version funnels the per-packet token lists through
        :meth:`Vocabulary.encode_ids_batch` so the id mapping and padding are
        done in one shot.
        """
        return vocabulary.encode_ids_batch(self.tokenize_trace(packets), max_len=max_len)

    def build_vocabulary(
        self,
        packets: Sequence[Packet],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> Vocabulary:
        """Build a vocabulary over a corpus of packets."""
        return Vocabulary.build(self.tokenize_trace(packets), min_count=min_count, max_size=max_size)

    def fit(self, packets: Sequence[Packet]) -> "PacketTokenizer":
        """Learn any data-dependent state (BPE merges, WordPiece vocab).

        The default implementation is stateless and returns ``self``.
        """
        return self

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def length_bucket(length: int) -> str:
        """Coarse packet-length bucket token (log-spaced)."""
        for bound in LENGTH_BUCKET_BOUNDS:
            if length <= bound:
                return f"len<={bound}"
        return f"len>{LENGTH_BUCKET_BOUNDS[-1]}"

    @staticmethod
    def chunked(items: Iterable[str], max_tokens: int) -> list[str]:
        """Truncate a token list to ``max_tokens``."""
        result = list(items)
        return result[:max_tokens]
