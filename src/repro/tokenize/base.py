"""Tokenizer interface.

A tokenizer turns a :class:`~repro.net.packet.Packet` into a list of string
tokens (and, symmetrically, raw byte strings into tokens).  The choice of
tokenizer is one of the open questions the paper poses (Section 4.1.2):
character/byte level, or protocol-format ("field-aware") segmentation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..net.packet import Packet
from .vocab import Vocabulary

__all__ = ["PacketTokenizer"]


class PacketTokenizer:
    """Base class for all packet tokenizers."""

    #: Short machine-readable identifier used in benchmark tables.
    name = "base"

    def tokenize_packet(self, packet: Packet) -> list[str]:
        """Tokenize one packet into a list of string tokens."""
        raise NotImplementedError

    def tokenize_trace(self, packets: Sequence[Packet]) -> list[list[str]]:
        """Tokenize every packet of a trace."""
        return [self.tokenize_packet(p) for p in packets]

    def build_vocabulary(
        self,
        packets: Sequence[Packet],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> Vocabulary:
        """Build a vocabulary over a corpus of packets."""
        return Vocabulary.build(self.tokenize_trace(packets), min_count=min_count, max_size=max_size)

    def fit(self, packets: Sequence[Packet]) -> "PacketTokenizer":
        """Learn any data-dependent state (BPE merges, WordPiece vocab).

        The default implementation is stateless and returns ``self``.
        """
        return self

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def length_bucket(length: int) -> str:
        """Coarse packet-length bucket token (log-spaced)."""
        for bound in (64, 128, 256, 512, 1024, 1500):
            if length <= bound:
                return f"len<={bound}"
        return "len>1500"

    @staticmethod
    def chunked(items: Iterable[str], max_tokens: int) -> list[str]:
        """Truncate a token list to ``max_tokens``."""
        result = list(items)
        return result[:max_tokens]
