"""Tokenizer interface.

A tokenizer turns a :class:`~repro.net.packet.Packet` into a list of string
tokens (and, symmetrically, raw byte strings into tokens).  The choice of
tokenizer is one of the open questions the paper poses (Section 4.1.2):
character/byte level, or protocol-format ("field-aware") segmentation.

Every batched entry point (:meth:`PacketTokenizer.tokenize_trace`,
:meth:`PacketTokenizer.encode_batch`, :meth:`PacketTokenizer.build_vocabulary`,
:meth:`PacketTokenizer.fit`) accepts either a packet list or a columnar
:class:`~repro.net.columns.PacketColumns` batch; the columnar form is the fast
path, the packet list the compatible one.

Examples
--------
>>> from repro.net import build_packet
>>> from repro.tokenize import ByteTokenizer, Vocabulary
>>> packet = build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1234, 80)
>>> tokenizer = ByteTokenizer(max_bytes=4)
>>> tokens = tokenizer.tokenize_packet(packet)
>>> tokens
['0x45', '0x00', '0x00', '0x28']
>>> vocabulary = tokenizer.build_vocabulary([packet])
>>> ids, mask = tokenizer.encode_batch([packet], vocabulary)
>>> vocabulary.decode(ids[0][mask[0]]) == tokens
True
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..net.columns import PacketColumns, as_packets
from ..net.packet import Packet
from .vocab import Vocabulary

__all__ = ["PacketTokenizer", "LENGTH_BUCKET_BOUNDS"]

#: Bounds of the log-spaced packet-length buckets; the single source for
#: both the scalar :meth:`PacketTokenizer.length_bucket` and the vectorized
#: bucketing in the field-aware tokenizer.
LENGTH_BUCKET_BOUNDS = (64, 128, 256, 512, 1024, 1500)


def _raw_slices(
    packets: Sequence[Packet], max_bytes: int, skip_ethernet: bool, limit: int | None = None
) -> list[bytes]:
    """The truncated wire bytes of every packet (shared by the byte tokenizers)."""
    cap = max_bytes if limit is None else min(max_bytes, limit)
    slices = []
    for packet in packets:
        data = packet.to_bytes()
        if skip_ethernet and len(data) > 14:
            data = data[14:]
        slices.append(data[:cap])
    return slices


def _raw_flat(
    source: "Sequence[Packet] | PacketColumns",
    max_bytes: int,
    skip_ethernet: bool,
    limit: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Truncated wire bytes of every packet as ``(flat uint8, lengths)``.

    For a :class:`~repro.net.columns.PacketColumns` batch the bytes come from
    the vectorized :meth:`~repro.net.columns.PacketColumns.wire_matrix` — no
    per-packet serialization at all; for a packet list they come from the
    (memoized) ``Packet.to_bytes`` path.
    """
    cap = max_bytes if limit is None else min(max_bytes, limit)
    if isinstance(source, PacketColumns):
        matrix, lengths = source.wire_matrix(max_bytes=cap, skip_ethernet=skip_ethernet)
        mask = np.arange(matrix.shape[1])[None, :] < lengths[:, None]
        return matrix[mask], lengths
    slices = _raw_slices(source, max_bytes, skip_ethernet, limit=limit)
    lengths = np.fromiter((len(s) for s in slices), dtype=np.int64, count=len(slices))
    return np.frombuffer(b"".join(slices), dtype=np.uint8), lengths


def _scatter_ids(
    flat_ids: np.ndarray, lengths: np.ndarray, pad_id: int, max_len: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter a flat per-token id array into a padded (N, width) matrix."""
    width = max_len if max_len is not None else (int(lengths.max()) if len(lengths) else 0)
    ids = np.full((len(lengths), width), pad_id, dtype=np.int32)
    mask = np.arange(width)[None, :] < lengths[:, None]
    ids[mask] = flat_ids
    return ids, mask


class PacketTokenizer:
    """Base class for all packet tokenizers."""

    #: Short machine-readable identifier used in benchmark tables.
    name = "base"

    def tokenize_packet(self, packet: Packet) -> list[str]:
        """Tokenize one packet into a list of string tokens."""
        raise NotImplementedError

    def tokenize_trace(
        self, packets: "Sequence[Packet] | PacketColumns"
    ) -> list[list[str]]:
        """Tokenize every packet of a trace (packet list or columnar batch)."""
        return [self.tokenize_packet(p) for p in as_packets(packets)]

    def encode_batch(
        self,
        packets: "Sequence[Packet] | PacketColumns",
        vocabulary: Vocabulary,
        max_len: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tokenize and encode a whole trace into padded id/mask matrices.

        Row ``i`` of the returned ``(ids, mask)`` pair holds exactly
        ``vocabulary.encode(self.tokenize_packet(packets[i]))`` (truncated to
        ``max_len``), but the encoding and padding run as batch operations.
        ``packets`` may be a list or a :class:`~repro.net.columns.PacketColumns`
        batch.  Subclasses override this with fully vectorized
        implementations; the base version funnels the per-packet token lists
        through :meth:`Vocabulary.encode_ids_batch` so the id mapping and
        padding are done in one shot.
        """
        return vocabulary.encode_ids_batch(self.tokenize_trace(packets), max_len=max_len)

    def build_vocabulary(
        self,
        packets: "Sequence[Packet] | PacketColumns",
        min_count: int = 1,
        max_size: int | None = None,
    ) -> Vocabulary:
        """Build a vocabulary over a corpus of packets."""
        return Vocabulary.build(self.tokenize_trace(packets), min_count=min_count, max_size=max_size)

    def fit(self, packets: "Sequence[Packet] | PacketColumns") -> "PacketTokenizer":
        """Learn any data-dependent state (BPE merges, WordPiece vocab).

        The default implementation is stateless and returns ``self``.
        """
        return self

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def length_bucket(length: int) -> str:
        """Coarse packet-length bucket token (log-spaced)."""
        for bound in LENGTH_BUCKET_BOUNDS:
            if length <= bound:
                return f"len<={bound}"
        return f"len>{LENGTH_BUCKET_BOUNDS[-1]}"

    @staticmethod
    def chunked(items: Iterable[str], max_tokens: int) -> list[str]:
        """Truncate a token list to ``max_tokens``."""
        result = list(items)
        return result[:max_tokens]
