"""Byte- and hex-character-level tokenizers.

The "packet trace as a sequence of bytes with no delimiters" view the paper
describes: every byte of the wire representation becomes one token (or two
hex characters).  These tokenizers need no training and have a tiny, fixed
vocabulary, but discard all protocol structure — the property experiment E5
quantifies against field-aware tokenization.
"""

from __future__ import annotations

from ..net.packet import Packet
from .base import PacketTokenizer

__all__ = ["ByteTokenizer", "HexCharTokenizer"]


class ByteTokenizer(PacketTokenizer):
    """One token per byte of the packet's wire format.

    Parameters
    ----------
    max_bytes:
        Truncate each packet to this many bytes (contexts are limited to a
        few hundred tokens, Section 4.1.3).
    skip_ethernet:
        Skip the 14-byte Ethernet header, which carries little semantic
        content in a single-LAN capture.
    """

    name = "byte"

    def __init__(self, max_bytes: int = 96, skip_ethernet: bool = True):
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet

    def tokenize_packet(self, packet: Packet) -> list[str]:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        data = data[: self.max_bytes]
        return [f"0x{b:02x}" for b in data]

    def tokenize_bytes(self, data: bytes) -> list[str]:
        """Tokenize a raw byte string (used by unit tests and by BPE training)."""
        return [f"0x{b:02x}" for b in data[: self.max_bytes]]


class HexCharTokenizer(PacketTokenizer):
    """Two tokens per byte: the high and low hex nibbles as characters.

    An even more extreme character-level segmentation, included because the
    paper cites character-based tokenizers [26, 35, 58] as one option.
    """

    name = "hex-char"

    def __init__(self, max_bytes: int = 64, skip_ethernet: bool = True):
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet

    def tokenize_packet(self, packet: Packet) -> list[str]:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        data = data[: self.max_bytes]
        tokens: list[str] = []
        for byte in data:
            tokens.append(f"{byte >> 4:x}")
            tokens.append(f"{byte & 0xF:x}")
        return tokens
