"""Byte- and hex-character-level tokenizers.

The "packet trace as a sequence of bytes with no delimiters" view the paper
describes: every byte of the wire representation becomes one token (or two
hex characters).  These tokenizers need no training and have a tiny, fixed
vocabulary, but discard all protocol structure — the property experiment E5
quantifies against field-aware tokenization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..net.columns import PacketColumns
from ..net.packet import Packet
from .base import PacketTokenizer, _raw_flat, _scatter_ids
from .vocab import Vocabulary

__all__ = ["ByteTokenizer", "HexCharTokenizer"]


class ByteTokenizer(PacketTokenizer):
    """One token per byte of the packet's wire format.

    Parameters
    ----------
    max_bytes:
        Truncate each packet to this many bytes (contexts are limited to a
        few hundred tokens, Section 4.1.3).
    skip_ethernet:
        Skip the 14-byte Ethernet header, which carries little semantic
        content in a single-LAN capture.
    """

    name = "byte"

    def __init__(self, max_bytes: int = 96, skip_ethernet: bool = True):
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet

    def tokenize_packet(self, packet: Packet) -> list[str]:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        data = data[: self.max_bytes]
        return [f"0x{b:02x}" for b in data]

    def tokenize_bytes(self, data: bytes) -> list[str]:
        """Tokenize a raw byte string (used by unit tests and by BPE training)."""
        return [f"0x{b:02x}" for b in data[: self.max_bytes]]

    def encode_batch(
        self,
        packets: "Sequence[Packet] | PacketColumns",
        vocabulary: Vocabulary,
        max_len: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized encode: bytes -> ids through a 256-entry lookup table.

        The token strings are never materialized — every packet's wire bytes
        map straight to vocabulary ids via one table gather, then scatter into
        the padded matrix.  With a :class:`~repro.net.columns.PacketColumns`
        batch even the wire bytes come from vectorized column serialization.
        """
        flat, lengths = _raw_flat(packets, self.max_bytes, self.skip_ethernet, limit=max_len)
        table = np.fromiter(
            (vocabulary.token_to_id(f"0x{b:02x}") for b in range(256)), dtype=np.int32, count=256
        )
        return _scatter_ids(table[flat], lengths, vocabulary.pad_id, max_len)


class HexCharTokenizer(PacketTokenizer):
    """Two tokens per byte: the high and low hex nibbles as characters.

    An even more extreme character-level segmentation, included because the
    paper cites character-based tokenizers [26, 35, 58] as one option.
    """

    name = "hex-char"

    def __init__(self, max_bytes: int = 64, skip_ethernet: bool = True):
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet

    def tokenize_packet(self, packet: Packet) -> list[str]:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        data = data[: self.max_bytes]
        tokens: list[str] = []
        for byte in data:
            tokens.append(f"{byte >> 4:x}")
            tokens.append(f"{byte & 0xF:x}")
        return tokens

    def encode_batch(
        self,
        packets: "Sequence[Packet] | PacketColumns",
        vocabulary: Vocabulary,
        max_len: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized encode: interleave high/low nibbles, one 16-entry gather."""
        byte_limit = None if max_len is None else (max_len + 1) // 2
        flat, byte_lengths = _raw_flat(
            packets, self.max_bytes, self.skip_ethernet, limit=byte_limit
        )
        nibbles = np.empty(flat.size * 2, dtype=np.uint8)
        nibbles[0::2] = flat >> 4
        nibbles[1::2] = flat & 0xF
        table = np.fromiter(
            (vocabulary.token_to_id(f"{n:x}") for n in range(16)), dtype=np.int32, count=16
        )
        flat_ids = table[nibbles]
        lengths = byte_lengths * 2
        if max_len is not None and lengths.max(initial=0) > max_len:
            # Odd max_len: drop the trailing low nibble of the last kept byte.
            keep = np.arange(flat_ids.size)
            offsets = keep - np.repeat(np.cumsum(lengths) - lengths, lengths)
            flat_ids = flat_ids[offsets < max_len]
            lengths = np.minimum(lengths, max_len)
        return _scatter_ids(flat_ids, lengths, vocabulary.pad_id, max_len)
