"""WordPiece-style tokenizer over packet bytes.

BERT uses WordPiece: a vocabulary of sub-word units, applied by greedy
longest-match-first segmentation.  Here the "words" are packets' hex strings
and the learned units are frequent multi-byte substrings; segmentation walks
the hex string taking the longest vocabulary entry at each position, marking
continuation pieces with the familiar ``##`` prefix.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..net.packet import Packet
from .base import PacketTokenizer

__all__ = ["WordPieceTokenizer"]


class WordPieceTokenizer(PacketTokenizer):
    """Greedy longest-match sub-byte-string tokenizer.

    Parameters
    ----------
    vocab_size:
        Maximum number of learned multi-byte units (single bytes are always
        in the vocabulary so segmentation cannot fail).
    max_piece_bytes:
        Longest unit, in bytes, considered during training.
    min_count:
        Minimum frequency for a unit to enter the vocabulary.
    """

    name = "wordpiece"

    def __init__(
        self,
        vocab_size: int = 400,
        max_piece_bytes: int = 4,
        min_count: int = 4,
        max_bytes: int = 96,
        skip_ethernet: bool = True,
    ):
        self.vocab_size = vocab_size
        self.max_piece_bytes = max_piece_bytes
        self.min_count = min_count
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet
        #: Learned unit set, each unit a hex string of 2..2*max_piece_bytes chars.
        self.pieces: set[str] = set()

    def _hex_string(self, packet: Packet) -> str:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        return data[: self.max_bytes].hex()

    def fit(self, packets: Sequence[Packet]) -> "WordPieceTokenizer":
        """Collect frequent multi-byte substrings as vocabulary units."""
        counts: Counter[str] = Counter()
        for packet in packets:
            hex_string = self._hex_string(packet)
            for size in range(2, self.max_piece_bytes + 1):
                width = size * 2
                for start in range(0, len(hex_string) - width + 1, 2):
                    counts[hex_string[start : start + width]] += 1
        frequent = [
            piece for piece, count in counts.most_common() if count >= self.min_count
        ]
        self.pieces = set(frequent[: self.vocab_size])
        return self

    def tokenize_packet(self, packet: Packet) -> list[str]:
        hex_string = self._hex_string(packet)
        tokens: list[str] = []
        position = 0
        first = True
        while position < len(hex_string):
            match = None
            for size in range(self.max_piece_bytes, 0, -1):
                width = size * 2
                candidate = hex_string[position : position + width]
                if len(candidate) < width:
                    continue
                if size == 1 or candidate in self.pieces:
                    match = candidate
                    break
            if match is None:
                match = hex_string[position : position + 2]
            token = match if first else f"##{match}"
            tokens.append(token)
            position += len(match)
            first = False
        return tokens

    @property
    def is_fitted(self) -> bool:
        return bool(self.pieces)
