"""Vocabulary: the mapping between tokens and integer ids.

All tokenizers in this package share the same special-token convention,
mirroring BERT: ``[PAD]``, ``[UNK]``, ``[CLS]``, ``[SEP]``, ``[MASK]``.

Examples
--------
>>> from repro.tokenize import Vocabulary
>>> vocabulary = Vocabulary.build([["tp=tcp", "tcp.dport=443"], ["tp=tcp"]])
>>> vocabulary.encode(["tp=tcp", "tcp.dport=443", "never-seen"])
[5, 6, 1]
>>> vocabulary.decode([5, 6, 1])
['tp=tcp', 'tcp.dport=443', '[UNK]']
>>> ids, mask = vocabulary.encode_ids_batch([["tp=tcp"], ["tp=tcp", "tcp.dport=443"]])
>>> ids.tolist(), mask.tolist()
([[5, 0], [5, 6]], [[True, False], [True, True]])
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Vocabulary", "SPECIAL_TOKENS", "PAD", "UNK", "CLS", "SEP", "MASK"]

PAD = "[PAD]"
UNK = "[UNK]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK)


class Vocabulary:
    """Bidirectional token <-> id mapping with reserved special tokens."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self._add(token)

    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        token_sequences: Iterable[Iterable[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from token sequences, most frequent first."""
        counts: Counter[str] = Counter()
        for sequence in token_sequences:
            counts.update(sequence)
        items = [(token, count) for token, count in counts.items() if count >= min_count]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if max_size is not None:
            items = items[: max(max_size - len(SPECIAL_TOKENS), 0)]
        return cls(token for token, _ in items)

    def add_token(self, token: str) -> int:
        """Add a single token (no-op if present); returns its id."""
        return self._add(token)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def id_to_token(self, index: int) -> str:
        if not 0 <= index < len(self._id_to_token):
            raise IndexError(f"token id {index} out of range")
        return self._id_to_token[index]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        return [self.token_to_id(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self.id_to_token(i) for i in ids]

    def encode_ids_batch(
        self,
        token_sequences: Iterable[Sequence[str]],
        max_len: int | None = None,
        dtype=np.int32,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode many token sequences into one padded id matrix in one shot.

        Returns ``(ids, mask)`` where ``ids`` has shape
        ``(num_sequences, width)`` — ``width`` is ``max_len`` when given,
        otherwise the longest sequence — padded with ``pad_id``, and ``mask``
        is True at real-token positions.  The token -> id mapping runs in a
        single pass over all tokens and the padding/scatter is pure NumPy,
        which is what the batched tokenizer and training fast paths build on.
        """
        sequences = [
            seq if max_len is None or len(seq) <= max_len else seq[:max_len]
            for seq in token_sequences
        ]
        n = len(sequences)
        lengths = np.fromiter((len(s) for s in sequences), dtype=np.int64, count=n)
        width = max_len if max_len is not None else (int(lengths.max()) if n else 0)
        ids = np.full((n, width), self.pad_id, dtype=dtype)
        mask = np.arange(width)[None, :] < lengths[:, None]
        total = int(lengths.sum())
        if total:
            get = self._token_to_id.get
            unk = self._token_to_id[UNK]
            flat = np.fromiter(
                (get(t, unk) for seq in sequences for t in seq), dtype=dtype, count=total
            )
            ids[mask] = flat
        return ids, mask

    def decode_batch(self, ids: np.ndarray, mask: np.ndarray | None = None) -> list[list[str]]:
        """Invert :meth:`encode_ids_batch`: padded id matrix back to token lists."""
        ids = np.asarray(ids)
        if mask is None:
            mask = ids != self.pad_id
        table = self._id_to_token
        return [
            [table[int(i)] for i in row[np.asarray(valid, dtype=bool)]]
            for row, valid in zip(ids, mask)
        ]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def special_ids(self) -> set[int]:
        return {self._token_to_id[t] for t in SPECIAL_TOKENS}

    def tokens(self) -> list[str]:
        """All tokens in id order (including specials)."""
        return list(self._id_to_token)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self._id_to_token, indent=0), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        tokens = json.loads(Path(path).read_text(encoding="utf-8"))
        vocab = cls()
        for token in tokens:
            vocab._add(token)
        return vocab
