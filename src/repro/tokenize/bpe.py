"""Byte-Pair Encoding trained on packet bytes.

RoBERTa uses BPE over text; here the base symbols are packet bytes (hex
pairs) and merges are learned from the frequency of adjacent byte pairs in a
training trace.  Frequent multi-byte patterns — protocol magic numbers,
well-known ports, common header prefixes — become single tokens, which is the
data-driven analogue of the hand-written field-aware tokenizer.

Examples
--------
>>> from repro.net import build_packet
>>> from repro.tokenize import BPETokenizer
>>> trace = [build_packet(0.0, "10.0.0.1", "10.0.0.2", "TCP", 1000 + i, 443)
...          for i in range(8)]
>>> tokenizer = BPETokenizer(num_merges=4, max_bytes=24).fit(trace)
>>> len(tokenizer.merges)
4
>>> tokens = tokenizer.tokenize_packet(trace[0])
>>> tokenizer.tokenize_trace(trace)[0] == tokens   # batched == per-packet
True
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from ..net.columns import PacketColumns, as_packets
from ..net.packet import Packet
from .base import PacketTokenizer, _raw_flat, _scatter_ids
from .vocab import Vocabulary

__all__ = ["BPETokenizer"]

_NO_RANK = np.iinfo(np.int32).max


class BPETokenizer(PacketTokenizer):
    """Learned byte-pair-encoding tokenizer.

    Parameters
    ----------
    num_merges:
        Number of merge operations to learn in :meth:`fit`.
    max_bytes:
        Per-packet byte truncation applied before tokenization.
    skip_ethernet:
        Drop the Ethernet header before tokenizing.
    """

    name = "bpe"

    def __init__(self, num_merges: int = 200, max_bytes: int = 96, skip_ethernet: bool = True):
        self.num_merges = num_merges
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet
        #: Ordered list of learned merges; each merge joins two symbols.
        self.merges: list[tuple[str, str]] = []
        self._merge_ranks: dict[tuple[str, str], int] = {}
        # Vectorized merge tables (built lazily from ``merges``): symbol
        # strings interned to ints, merge pairs packed into sorted int keys.
        self._symbols: list[str] = []
        self._pair_mult: int = 0
        self._rank_of: np.ndarray = np.empty(0, dtype=np.int32)
        self._merged_of: np.ndarray = np.empty(0, dtype=np.int32)
        self._tables_merges: list[tuple[str, str]] | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, packets: "Sequence[Packet] | PacketColumns") -> "BPETokenizer":
        """Learn merges from the byte sequences of ``packets``.

        Training reuses the encode-side incremental pair-count structure: the
        corpus becomes one flat int array threaded by a doubly linked list,
        each position caches the key of the pair it starts, and per-key
        occurrence counts are updated as merges create and destroy pairs — so
        each merge costs its local updates instead of a full recount of every
        pair in the corpus.  The learned merge list is identical to the
        reference ``Counter`` loop (see :meth:`fit_reference`), with the
        tie-break now explicit: among equally frequent pairs the one whose
        first occurrence comes earliest in the current corpus wins (exactly
        what ``Counter.most_common`` produced implicitly through insertion
        order).
        """
        size = 256 + self.num_merges + 1
        if size * size > 16_000_000:
            # The dense per-key count table would not fit; merge counts this
            # large are far outside the benchmarked regime, so take the
            # reference path rather than complicating the structure.
            return self.fit_reference(packets)
        raw, lengths = _raw_flat(packets, self.max_bytes, self.skip_ethernet)
        total = int(lengths.sum()) + len(lengths)
        flat = np.full(total, -1, dtype=np.int64)
        token_mask = np.ones(total, dtype=bool)
        if len(lengths):
            token_mask[np.cumsum(lengths + 1) - 1] = False
        flat[token_mask] = raw
        self.merges = self._incremental_merges(flat, self.num_merges, size)
        self._merge_ranks = {pair: rank for rank, pair in enumerate(self.merges)}
        return self

    def fit_reference(self, packets: "Sequence[Packet] | PacketColumns") -> "BPETokenizer":
        """The pre-incremental training loop (kept as the correctness/bench reference).

        Recounts every adjacent pair with a ``Counter`` on each of the
        ``num_merges`` iterations.  ``fit`` produces the identical merge
        list; the regression tests and the E14 throughput gate hold the two
        against each other.
        """
        sequences = [self._base_symbols(p) for p in as_packets(packets)]
        sequences = [s for s in sequences if len(s) >= 2]
        self.merges = []
        for _ in range(self.num_merges):
            pair_counts: Counter[tuple[str, str]] = Counter()
            for symbols in sequences:
                pair_counts.update(zip(symbols, symbols[1:]))
            if not pair_counts:
                break
            (best_pair, best_count), = pair_counts.most_common(1)
            if best_count < 2:
                break
            self.merges.append(best_pair)
            merged_symbol = best_pair[0] + best_pair[1]
            sequences = [self._apply_merge(s, best_pair, merged_symbol) for s in sequences]
        self._merge_ranks = {pair: rank for rank, pair in enumerate(self.merges)}
        return self

    @staticmethod
    def _incremental_merges(
        flat: np.ndarray, num_merges: int, size: int
    ) -> list[tuple[str, str]]:
        """Learn up to ``num_merges`` merges over a separator-delimited corpus.

        ``flat`` holds base byte values with ``-1`` separators; pairs are
        keyed as ``first * size + second`` into a dense count table.  Each
        iteration takes the most frequent pair (ties: earliest current first
        occurrence), merges its leftmost non-overlapping occurrences through
        the linked list, and applies the local count updates — the same
        machinery as the encode-side ``_apply_merges_flat``, with the pair
        *registry* discovered instead of given.
        """
        merges: list[tuple[str, str]] = []
        n = flat.size
        if n < 2:
            return merges
        symbols = [f"{b:02x}" for b in range(256)]
        intern = {s: i for i, s in enumerate(symbols)}

        nxt = np.arange(1, n + 1, dtype=np.int64)  # n is the end sentinel
        prv = np.arange(-1, n - 1, dtype=np.int64)  # -1 is the start sentinel
        alive = np.ones(n, dtype=bool)

        left, right = flat[:-1], flat[1:]
        valid = (left >= 0) & (right >= 0)
        pos_key = np.full(n, -1, dtype=np.int64)
        pos_key[:-1] = np.where(valid, left * size + right, -1)
        counts = np.zeros(size * size, dtype=np.int64)
        occupied = np.bincount(pos_key[pos_key >= 0])
        counts[: len(occupied)] += occupied

        def pair_key(positions: np.ndarray) -> np.ndarray:
            """Current key of the pair starting at each given position."""
            successor = nxt[positions]
            ok = successor < n
            first = flat[positions]
            second = flat[np.minimum(successor, n - 1)]
            ok &= (first >= 0) & (second >= 0)
            return np.where(ok, first * size + second, -1)

        while len(merges) < num_merges:
            best_count = int(counts.max())
            if best_count < 2:
                break
            candidates = np.flatnonzero(counts == best_count)
            if len(candidates) == 1:
                best_key = int(candidates[0])
            else:
                # Deterministic tie-break: the pair whose first occurrence
                # comes earliest in the current corpus order.
                hit = np.isin(pos_key, candidates)
                if not hit.any():  # pragma: no cover - defensive resync
                    counts[candidates] = 0
                    continue
                best_key = int(pos_key[np.argmax(hit)])
            first_id, second_id = divmod(best_key, size)
            first_symbol, second_symbol = symbols[first_id], symbols[second_id]
            merged_symbol = first_symbol + second_symbol
            merged_id = intern.get(merged_symbol)
            if merged_id is None:
                merged_id = intern[merged_symbol] = len(symbols)
                symbols.append(merged_symbol)
            merges.append((first_symbol, second_symbol))

            matches = np.flatnonzero(pos_key == best_key)
            if len(matches) > 1:
                # Keep leftmost non-overlapping occurrences within each run
                # of linked-list-consecutive positions.
                adjacent = nxt[matches[:-1]] == matches[1:]
                starts = np.r_[0, np.flatnonzero(~adjacent) + 1]
                run_lengths = np.diff(np.r_[starts, len(matches)])
                offsets = np.arange(len(matches)) - np.repeat(starts, run_lengths)
                matches = matches[offsets % 2 == 0]

            consumed = nxt[matches]  # right halves; they leave the list
            successors = nxt[consumed]
            dead = np.concatenate([pos_key[matches], pos_key[consumed]])
            alive[consumed] = False
            neighbours = prv[matches]
            neighbours = neighbours[neighbours >= 0]
            neighbours = neighbours[alive[neighbours]]
            dead = np.concatenate([dead, pos_key[neighbours]])

            nxt[matches] = successors
            in_range = successors < n
            prv[successors[in_range]] = matches[in_range]
            flat[matches] = merged_id

            new_match_keys = pair_key(matches)
            new_neighbour_keys = pair_key(neighbours)
            pos_key[consumed] = -1
            pos_key[matches] = new_match_keys
            pos_key[neighbours] = new_neighbour_keys

            born = np.concatenate([new_match_keys, new_neighbour_keys])
            np.subtract.at(counts, dead[dead >= 0], 1)
            np.add.at(counts, born[born >= 0], 1)
        return merges

    @staticmethod
    def _apply_merge(symbols: list[str], pair: tuple[str, str], merged: str) -> list[str]:
        result: list[str] = []
        i = 0
        while i < len(symbols):
            if i + 1 < len(symbols) and symbols[i] == pair[0] and symbols[i + 1] == pair[1]:
                result.append(merged)
                i += 2
            else:
                result.append(symbols[i])
                i += 1
        return result

    # ------------------------------------------------------------------
    # Tokenization
    # ------------------------------------------------------------------
    def _base_symbols(self, packet: Packet) -> list[str]:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        data = data[: self.max_bytes]
        return [f"{b:02x}" for b in data]

    def tokenize_packet(self, packet: Packet) -> list[str]:
        symbols = self._base_symbols(packet)
        if not self._merge_ranks:
            return symbols
        # Repeatedly apply the best-ranked merge present in the sequence.
        while len(symbols) >= 2:
            candidate = None
            candidate_rank = None
            for pair in zip(symbols, symbols[1:]):
                rank = self._merge_ranks.get(pair)
                if rank is not None and (candidate_rank is None or rank < candidate_rank):
                    candidate = pair
                    candidate_rank = rank
            if candidate is None:
                break
            symbols = self._apply_merge(symbols, candidate, candidate[0] + candidate[1])
        return symbols

    @property
    def is_fitted(self) -> bool:
        return bool(self.merges)

    # ------------------------------------------------------------------
    # Vectorized batch path: merge table applied via array operations
    # ------------------------------------------------------------------
    def _ensure_tables(self) -> None:
        """Build int-interned merge tables from ``self.merges`` (idempotent).

        The cached tables are keyed on the merge list *contents*, so a refit
        (or manual ``merges`` assignment) invalidates them.
        """
        if self._tables_merges == self.merges:
            return
        symbols = [f"{b:02x}" for b in range(256)]
        intern = {s: i for i, s in enumerate(symbols)}
        mult = 256 + len(self.merges) + 1
        # Later ranks overwrite earlier ones for a re-learned pair, matching
        # the dict built in fit().
        by_key: dict[int, tuple[int, int]] = {}
        for rank, (first, second) in enumerate(self.merges):
            a = intern.get(first)
            b = intern.get(second)
            if a is None or b is None:
                continue
            merged = first + second
            merged_id = intern.setdefault(merged, len(symbols))
            if merged_id == len(symbols):
                symbols.append(merged)
            by_key[a * mult + b] = (rank, merged_id)
        # Dense (mult*mult) rank/merged tables make the per-iteration pair
        # lookup a single gather.  A few hundred merges keep this well under
        # a couple of MB; the table scales as (256 + num_merges)^2.
        rank_of = np.full(mult * mult, _NO_RANK, dtype=np.int32)
        merged_of = np.full(mult * mult, -1, dtype=np.int32)
        for key, (rank, merged_id) in by_key.items():
            rank_of[key] = rank
            merged_of[key] = merged_id
        self._symbols = symbols
        self._pair_mult = mult
        self._rank_of = rank_of
        self._merged_of = merged_of
        self._tables_merges = list(self.merges)

    def _apply_merges_flat(self, flat: np.ndarray) -> np.ndarray:
        """Exhaustively apply merges to a flat symbol-id array.

        ``flat`` holds base byte values (0..255) and merged symbol ids, with
        ``-1`` separators between packets.  Each iteration merges every
        (leftmost non-overlapping) occurrence of the best-ranked pair present
        anywhere — per packet this is exactly the greedy-min-rank loop of
        :meth:`tokenize_packet`, because a packet is only ever touched when
        the global best pair is also its own best.

        The best pair is found through an *incrementally maintained pair-count
        structure*: a doubly linked list threads the surviving positions, each
        position caches the rank of the pair it starts (``pos_rank``), and a
        per-rank occurrence count is updated as merges create and destroy
        pairs.  Selecting the next pair is then an O(num_merges) scan of the
        count table instead of recomputing keys and taking a global argmin
        over the whole array, and nothing is ever reallocated with
        ``np.delete`` — the two costs that dominated the previous
        implementation.
        """
        n = flat.size
        if not len(self._rank_of) or n < 2:
            return flat
        mult = self._pair_mult
        num_ranks = len(self._tables_merges or ())
        rank_of, merged_of = self._rank_of, self._merged_of

        nxt = np.arange(1, n + 1, dtype=np.int32)  # n is the end sentinel
        prv = np.arange(-1, n - 1, dtype=np.int32)  # -1 is the start sentinel
        alive = np.ones(n, dtype=bool)

        left, right = flat[:-1], flat[1:]
        valid = (left >= 0) & (right >= 0)
        keys = np.where(valid, left * mult + right, 0)
        pos_rank = np.full(n, _NO_RANK, dtype=np.int32)
        pos_rank[:-1] = np.where(valid, rank_of[keys], _NO_RANK)
        counts = np.bincount(
            pos_rank[pos_rank != _NO_RANK], minlength=num_ranks
        ).astype(np.int64)

        def pair_rank(positions: np.ndarray) -> np.ndarray:
            """Current rank of the pair starting at each given position."""
            successor = nxt[positions]
            ok = successor < n
            first = flat[positions]
            second = flat[np.minimum(successor, n - 1)]
            ok &= (first >= 0) & (second >= 0)
            pair_keys = np.where(ok, first * mult + second, 0)
            return np.where(ok, rank_of[pair_keys], _NO_RANK)

        present = np.flatnonzero(counts > 0)
        while present.size:
            r = int(present[0])
            matches = np.flatnonzero(pos_rank == r)
            if not len(matches):  # pragma: no cover - defensive resync
                counts[r] = 0
                present = np.flatnonzero(counts > 0)
                continue
            if len(matches) > 1:
                # Drop overlapping occurrences: within each run of positions
                # that are consecutive in the linked list, keep every other
                # one, reproducing the left-to-right greedy scan.
                adjacent = nxt[matches[:-1]] == matches[1:]
                starts = np.r_[0, np.flatnonzero(~adjacent) + 1]
                run_lengths = np.diff(np.r_[starts, len(matches)])
                offsets = np.arange(len(matches)) - np.repeat(starts, run_lengths)
                matches = matches[offsets % 2 == 0]
            merged_id = int(merged_of[flat[matches[0]] * mult + flat[nxt[matches[0]]]])

            consumed = nxt[matches]  # right halves; they leave the list
            successors = nxt[consumed]
            # Pairs that disappear: the matched pairs themselves and the pairs
            # the consumed positions started.
            dead_ranks = np.concatenate([pos_rank[matches], pos_rank[consumed]])
            alive[consumed] = False
            # Left neighbours whose pair's right symbol is about to change.
            # Neighbours that are themselves consumed this round are already
            # accounted for through ``pos_rank[consumed]``.
            neighbours = prv[matches]
            neighbours = neighbours[neighbours >= 0]
            neighbours = neighbours[alive[neighbours]]
            dead_ranks = np.concatenate([dead_ranks, pos_rank[neighbours]])

            # Rewire the list around the consumed positions and merge symbols.
            nxt[matches] = successors
            in_range = successors < n
            prv[successors[in_range]] = matches[in_range]
            flat[matches] = merged_id

            new_match_ranks = pair_rank(matches)
            new_neighbour_ranks = pair_rank(neighbours)
            pos_rank[consumed] = _NO_RANK
            pos_rank[matches] = new_match_ranks
            pos_rank[neighbours] = new_neighbour_ranks

            born_ranks = np.concatenate([new_match_ranks, new_neighbour_ranks])
            dead_ranks = dead_ranks[dead_ranks != _NO_RANK]
            born_ranks = born_ranks[born_ranks != _NO_RANK]
            counts -= np.bincount(dead_ranks, minlength=num_ranks).astype(np.int64)
            counts += np.bincount(born_ranks, minlength=num_ranks).astype(np.int64)
            present = np.flatnonzero(counts > 0)
        return flat[alive]

    def _merged_flat(self, packets: "Sequence[Packet] | PacketColumns") -> np.ndarray:
        """Wire bytes of all packets as one merged symbol array with -1 separators.

        No pre-merge byte truncation: ``max_len`` truncation must happen on
        the merged *tokens* to match ``tokenize_packet(p)[:max_len]``.
        """
        raw, lengths = _raw_flat(packets, self.max_bytes, self.skip_ethernet)
        total = int(lengths.sum()) + len(lengths)
        # int32 symbols: ids stay below (256 + num_merges), and the narrower
        # arrays halve the memory traffic of the per-iteration scans.
        flat = np.full(total, -1, dtype=np.int32)
        token_mask = np.ones(total, dtype=bool)
        token_mask[np.cumsum(lengths + 1) - 1] = False
        flat[token_mask] = raw
        return self._apply_merges_flat(flat)

    def tokenize_trace(self, packets: "Sequence[Packet] | PacketColumns") -> list[list[str]]:
        """Batch tokenization via the vectorized merge tables."""
        if not self._merge_ranks:
            return [self._base_symbols(p) for p in as_packets(packets)]
        self._ensure_tables()
        flat = self._merged_flat(packets)
        table = self._symbols
        sequences: list[list[str]] = []
        start = 0
        for stop in np.flatnonzero(flat < 0):
            sequences.append([table[i] for i in flat[start:stop]])
            start = stop + 1
        return sequences

    def encode_batch(
        self,
        packets: "Sequence[Packet] | PacketColumns",
        vocabulary: Vocabulary,
        max_len: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized encode: merges via array ops, symbol ids -> vocab ids."""
        if not self._merge_ranks:
            # No learned merges: behave like the byte path over hex symbols.
            return vocabulary.encode_ids_batch(
                [self._base_symbols(p) for p in as_packets(packets)], max_len=max_len
            )
        self._ensure_tables()
        flat = self._merged_flat(packets)
        is_separator = flat < 0
        separator_positions = np.flatnonzero(is_separator)
        seg_lengths = np.diff(np.r_[-1, separator_positions]) - 1
        vocab_table = np.fromiter(
            (vocabulary.token_to_id(s) for s in self._symbols),
            dtype=np.int32,
            count=len(self._symbols),
        )
        flat_ids = vocab_table[flat[~is_separator]]
        if max_len is not None and seg_lengths.max(initial=0) > max_len:
            starts = np.r_[0, separator_positions + 1][:-1]
            segment_of = np.cumsum(is_separator)[~is_separator]
            offsets = np.flatnonzero(~is_separator) - starts[segment_of]
            flat_ids = flat_ids[offsets < max_len]
            seg_lengths = np.minimum(seg_lengths, max_len)
        return _scatter_ids(flat_ids, seg_lengths, vocabulary.pad_id, max_len)
