"""Byte-Pair Encoding trained on packet bytes.

RoBERTa uses BPE over text; here the base symbols are packet bytes (hex
pairs) and merges are learned from the frequency of adjacent byte pairs in a
training trace.  Frequent multi-byte patterns — protocol magic numbers,
well-known ports, common header prefixes — become single tokens, which is the
data-driven analogue of the hand-written field-aware tokenizer.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..net.packet import Packet
from .base import PacketTokenizer

__all__ = ["BPETokenizer"]


class BPETokenizer(PacketTokenizer):
    """Learned byte-pair-encoding tokenizer.

    Parameters
    ----------
    num_merges:
        Number of merge operations to learn in :meth:`fit`.
    max_bytes:
        Per-packet byte truncation applied before tokenization.
    skip_ethernet:
        Drop the Ethernet header before tokenizing.
    """

    name = "bpe"

    def __init__(self, num_merges: int = 200, max_bytes: int = 96, skip_ethernet: bool = True):
        self.num_merges = num_merges
        self.max_bytes = max_bytes
        self.skip_ethernet = skip_ethernet
        #: Ordered list of learned merges; each merge joins two symbols.
        self.merges: list[tuple[str, str]] = []
        self._merge_ranks: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, packets: Sequence[Packet]) -> "BPETokenizer":
        """Learn merges from the byte sequences of ``packets``."""
        sequences = [self._base_symbols(p) for p in packets]
        sequences = [s for s in sequences if len(s) >= 2]
        self.merges = []
        for _ in range(self.num_merges):
            pair_counts: Counter[tuple[str, str]] = Counter()
            for symbols in sequences:
                pair_counts.update(zip(symbols, symbols[1:]))
            if not pair_counts:
                break
            (best_pair, best_count), = pair_counts.most_common(1)
            if best_count < 2:
                break
            self.merges.append(best_pair)
            merged_symbol = best_pair[0] + best_pair[1]
            sequences = [self._apply_merge(s, best_pair, merged_symbol) for s in sequences]
        self._merge_ranks = {pair: rank for rank, pair in enumerate(self.merges)}
        return self

    @staticmethod
    def _apply_merge(symbols: list[str], pair: tuple[str, str], merged: str) -> list[str]:
        result: list[str] = []
        i = 0
        while i < len(symbols):
            if i + 1 < len(symbols) and symbols[i] == pair[0] and symbols[i + 1] == pair[1]:
                result.append(merged)
                i += 2
            else:
                result.append(symbols[i])
                i += 1
        return result

    # ------------------------------------------------------------------
    # Tokenization
    # ------------------------------------------------------------------
    def _base_symbols(self, packet: Packet) -> list[str]:
        data = packet.to_bytes()
        if self.skip_ethernet and len(data) > 14:
            data = data[14:]
        data = data[: self.max_bytes]
        return [f"{b:02x}" for b in data]

    def tokenize_packet(self, packet: Packet) -> list[str]:
        symbols = self._base_symbols(packet)
        if not self._merge_ranks:
            return symbols
        # Repeatedly apply the best-ranked merge present in the sequence.
        while len(symbols) >= 2:
            candidate = None
            candidate_rank = None
            for pair in zip(symbols, symbols[1:]):
                rank = self._merge_ranks.get(pair)
                if rank is not None and (candidate_rank is None or rank < candidate_rank):
                    candidate = pair
                    candidate_rank = rank
            if candidate is None:
                break
            symbols = self._apply_merge(symbols, candidate, candidate[0] + candidate[1])
        return symbols

    @property
    def is_fitted(self) -> bool:
        return bool(self.merges)
