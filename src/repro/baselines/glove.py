"""GloVe: global-vector embeddings from a co-occurrence matrix.

NorBERT's GRU baselines were initialised either randomly or with GloVe
(context-independent) embeddings; this module provides the GloVe half of that
comparison, trained on the same tokenized traffic as everything else.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Sequence

import numpy as np

from ..tokenize.vocab import Vocabulary

__all__ = ["GloVeConfig", "GloVe"]


@dataclasses.dataclass
class GloVeConfig:
    """Training hyper-parameters for GloVe."""

    dim: int = 48
    window: int = 4
    epochs: int = 15
    learning_rate: float = 0.05
    x_max: float = 50.0
    alpha: float = 0.75
    seed: int = 0


class GloVe:
    """Weighted least-squares factorization of the log co-occurrence matrix."""

    def __init__(self, config: GloVeConfig | None = None):
        self.config = config or GloVeConfig()
        self.vocabulary: Vocabulary | None = None
        self.vectors: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, sequences: Sequence[Sequence[str]], vocabulary: Vocabulary | None = None) -> "GloVe":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.vocabulary = vocabulary or Vocabulary.build(sequences)
        vocab_size = len(self.vocabulary)

        cooccurrence = self._cooccurrence(sequences)
        if not cooccurrence:
            self.vectors = np.zeros((vocab_size, cfg.dim))
            return self

        w_main = (rng.random((vocab_size, cfg.dim)) - 0.5) / cfg.dim
        w_context = (rng.random((vocab_size, cfg.dim)) - 0.5) / cfg.dim
        b_main = np.zeros(vocab_size)
        b_context = np.zeros(vocab_size)

        entries = [(i, j, value) for (i, j), value in cooccurrence.items()]
        for _ in range(cfg.epochs):
            rng.shuffle(entries)
            for i, j, value in entries:
                weight = min((value / cfg.x_max) ** cfg.alpha, 1.0)
                inner = w_main[i] @ w_context[j] + b_main[i] + b_context[j] - np.log(value)
                gradient = weight * inner * cfg.learning_rate
                grad_main = gradient * w_context[j]
                grad_context = gradient * w_main[i]
                w_main[i] -= grad_main
                w_context[j] -= grad_context
                b_main[i] -= gradient
                b_context[j] -= gradient
        self.vectors = w_main + w_context
        return self

    def _cooccurrence(self, sequences: Sequence[Sequence[str]]) -> dict[tuple[int, int], float]:
        cfg = self.config
        counts: Counter[tuple[int, int]] = Counter()
        for sequence in sequences:
            ids = self.vocabulary.encode(sequence)
            for position, center in enumerate(ids):
                left = max(position - cfg.window, 0)
                right = min(position + cfg.window + 1, len(ids))
                for other in range(left, right):
                    if other == position:
                        continue
                    distance = abs(other - position)
                    counts[(center, ids[other])] += 1.0 / distance
        return dict(counts)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, token: str) -> bool:
        return self.vocabulary is not None and token in self.vocabulary

    def vector(self, token: str) -> np.ndarray:
        if self.vocabulary is None or self.vectors is None:
            raise RuntimeError("fit() must be called first")
        if token not in self.vocabulary:
            raise KeyError(f"token {token!r} not in vocabulary")
        return self.vectors[self.vocabulary.token_to_id(token)]

    def embedding_matrix(self) -> np.ndarray:
        if self.vectors is None:
            raise RuntimeError("fit() must be called first")
        return self.vectors.copy()

    def embeddings(self) -> dict[str, np.ndarray]:
        if self.vocabulary is None or self.vectors is None:
            raise RuntimeError("fit() must be called first")
        return {
            token: self.vectors[self.vocabulary.token_to_id(token)]
            for token in self.vocabulary.tokens()
            if self.vocabulary.token_to_id(token) not in self.vocabulary.special_ids
        }
