"""GRU sequence classifiers — the baseline architecture of NorBERT's comparison.

Two initialisations are provided, matching the paper's Section 3.4 account:
random embeddings and pretrained context-independent (GloVe / Word2Vec)
embeddings.  The classifier consumes exactly the same encoded contexts as the
foundation model, so experiment E1 isolates the effect of pre-training.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..nn.autograd import Tensor, no_grad
from ..nn.layers import Dropout, Embedding, Linear
from ..nn.losses import cross_entropy
from ..nn.metrics import accuracy, macro_f1, weighted_f1
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.recurrent import GRU
from ..nn.trainer import Trainer, TrainingHistory

__all__ = ["GRUClassifierConfig", "GRUClassifier"]


@dataclasses.dataclass
class GRUClassifierConfig:
    """Architecture and optimization settings of the GRU baseline."""

    embedding_dim: int = 48
    hidden_size: int = 48
    bidirectional: bool = False
    dropout: float = 0.1
    epochs: int = 6
    batch_size: int = 16
    learning_rate: float = 2e-3
    freeze_embeddings: bool = False
    seed: int = 0


class GRUClassifier(Module):
    """Embedding + GRU + linear head over token-id sequences."""

    def __init__(
        self,
        vocab_size: int,
        num_classes: int,
        config: GRUClassifierConfig | None = None,
        pretrained_embeddings: np.ndarray | None = None,
    ):
        super().__init__()
        self.config = config or GRUClassifierConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.embedding = Embedding(vocab_size, cfg.embedding_dim, rng=rng, std=0.1)
        if pretrained_embeddings is not None:
            if pretrained_embeddings.shape != (vocab_size, cfg.embedding_dim):
                raise ValueError(
                    "pretrained embedding shape "
                    f"{pretrained_embeddings.shape} != {(vocab_size, cfg.embedding_dim)}"
                )
            self.embedding.load_pretrained(pretrained_embeddings, freeze=cfg.freeze_embeddings)
        self.gru = GRU(cfg.embedding_dim, cfg.hidden_size, bidirectional=cfg.bidirectional, rng=rng)
        self.dropout = Dropout(cfg.dropout, rng=rng)
        self.head = Linear(self.gru.output_size, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        embedded = self.embedding(np.asarray(token_ids, dtype=np.int64))
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=float)[..., None]
            embedded = embedded * Tensor(mask)
        outputs, final = self.gru(embedded)
        if attention_mask is not None:
            # Mean over valid positions is more robust than the final state
            # when sequences are padded.
            mask = np.asarray(attention_mask, dtype=float)[..., None]
            summed = (outputs * Tensor(mask)).sum(axis=1)
            pooled = summed * Tensor(1.0 / np.maximum(mask.sum(axis=1), 1.0))
        else:
            pooled = final
        return self.head(self.dropout(pooled))

    # ------------------------------------------------------------------
    # Training / inference (same protocol as SequenceClassifier)
    # ------------------------------------------------------------------
    def fit(
        self,
        token_ids: np.ndarray,
        attention_mask: np.ndarray,
        labels: np.ndarray,
        eval_data: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        cfg = self.config
        labels = np.asarray(labels, dtype=np.int64)
        optimizer = Adam(self.parameters(), lr=cfg.learning_rate)
        trainer = Trainer(self, optimizer)
        rng = np.random.default_rng(cfg.seed)

        def make_batches():
            order = rng.permutation(len(labels))
            closures = []
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]

                def loss_fn(idx=idx) -> Tensor:
                    logits = self(token_ids[idx], attention_mask=attention_mask[idx])
                    return cross_entropy(logits, labels[idx])

                closures.append(loss_fn)
            return closures

        eval_fn = None
        if eval_data is not None:
            eval_ids, eval_mask, eval_labels = eval_data

            def eval_fn() -> dict[str, float]:
                return self.evaluate(eval_ids, eval_mask, eval_labels)

        return trainer.fit(make_batches, epochs=cfg.epochs, eval_fn=eval_fn, verbose=verbose)

    def predict(self, token_ids: np.ndarray, attention_mask: np.ndarray, batch_size: int = 64) -> np.ndarray:
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(token_ids), batch_size):
                logits = self(
                    token_ids[start : start + batch_size],
                    attention_mask=attention_mask[start : start + batch_size],
                )
                outputs.append(logits.data.argmax(axis=-1))
        self.train()
        return np.concatenate(outputs, axis=0)

    def evaluate(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, labels: np.ndarray
    ) -> dict[str, float]:
        predictions = self.predict(token_ids, attention_mask)
        labels = np.asarray(labels, dtype=np.int64)
        return {
            "accuracy": accuracy(labels, predictions),
            "f1": weighted_f1(labels, predictions, self.num_classes),
            "macro_f1": macro_f1(labels, predictions, self.num_classes),
        }
