"""Word2Vec (CBOW and skip-gram with negative sampling), from scratch.

Word2Vec is the paper's Section 2 stepping stone toward foundation models:
context-independent embeddings learned by predicting a token from its
neighbours (CBOW) or its neighbours from the token (skip-gram).  It is used
by the NetBERT-style analogy experiment (E3) on the networking text corpus,
and as a pre-BERT baseline for token-embedding probes.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..tokenize.vocab import Vocabulary

__all__ = ["Word2VecConfig", "Word2Vec"]


@dataclasses.dataclass
class Word2VecConfig:
    """Training hyper-parameters."""

    dim: int = 48
    window: int = 4
    negative_samples: int = 5
    epochs: int = 5
    learning_rate: float = 0.05
    min_learning_rate: float = 0.001
    mode: str = "skip-gram"  # or "cbow"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("skip-gram", "cbow"):
            raise ValueError(f"mode must be 'skip-gram' or 'cbow', got {self.mode!r}")
        if self.window < 1:
            raise ValueError("window must be at least 1")


class Word2Vec:
    """Negative-sampling Word2Vec over token-string sequences."""

    def __init__(self, config: Word2VecConfig | None = None):
        self.config = config or Word2VecConfig()
        self.vocabulary: Vocabulary | None = None
        self.input_vectors: np.ndarray | None = None
        self.output_vectors: np.ndarray | None = None
        self._unigram_table: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, sequences: Sequence[Sequence[str]], vocabulary: Vocabulary | None = None) -> "Word2Vec":
        """Train on ``sequences`` (lists of token strings)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.vocabulary = vocabulary or Vocabulary.build(sequences)
        vocab_size = len(self.vocabulary)
        encoded = [np.array(self.vocabulary.encode(seq), dtype=np.int64) for seq in sequences if seq]

        self.input_vectors = (rng.random((vocab_size, cfg.dim)) - 0.5) / cfg.dim
        self.output_vectors = np.zeros((vocab_size, cfg.dim))
        self._build_unigram_table(encoded, vocab_size)

        pairs = self._training_pairs(encoded)
        total_updates = max(len(pairs) * cfg.epochs, 1)
        update = 0
        for _ in range(cfg.epochs):
            rng.shuffle(pairs)
            for center, contexts in pairs:
                progress = update / total_updates
                lr = cfg.learning_rate * (1 - progress) + cfg.min_learning_rate * progress
                if cfg.mode == "skip-gram":
                    for context in contexts:
                        self._sgd_step(center, context, lr, rng)
                else:
                    self._cbow_step(contexts, center, lr, rng)
                update += 1
        return self

    def _training_pairs(self, encoded: list[np.ndarray]) -> list[tuple[int, list[int]]]:
        cfg = self.config
        pairs: list[tuple[int, list[int]]] = []
        for sequence in encoded:
            length = len(sequence)
            for position in range(length):
                left = max(position - cfg.window, 0)
                right = min(position + cfg.window + 1, length)
                contexts = [int(sequence[i]) for i in range(left, right) if i != position]
                if contexts:
                    pairs.append((int(sequence[position]), contexts))
        return pairs

    def _build_unigram_table(self, encoded: list[np.ndarray], vocab_size: int) -> None:
        counts = np.zeros(vocab_size)
        for sequence in encoded:
            np.add.at(counts, sequence, 1)
        weights = counts ** 0.75
        total = weights.sum()
        if total == 0:
            weights = np.ones(vocab_size)
            total = vocab_size
        self._unigram_table = weights / total

    def _negatives(self, rng: np.random.Generator, exclude: int) -> np.ndarray:
        negatives = rng.choice(
            len(self._unigram_table), size=self.config.negative_samples, p=self._unigram_table
        )
        return negatives[negatives != exclude]

    def _sgd_step(self, center: int, context: int, lr: float, rng: np.random.Generator) -> None:
        v = self.input_vectors[center]
        grad_v = np.zeros_like(v)
        targets = [(context, 1.0)] + [(int(n), 0.0) for n in self._negatives(rng, context)]
        for index, label in targets:
            u = self.output_vectors[index]
            score = 1.0 / (1.0 + np.exp(-np.dot(v, u)))
            gradient = (score - label) * lr
            grad_v += gradient * u
            self.output_vectors[index] = u - gradient * v
        self.input_vectors[center] = v - grad_v

    def _cbow_step(self, contexts: list[int], center: int, lr: float, rng: np.random.Generator) -> None:
        v = self.input_vectors[contexts].mean(axis=0)
        grad_v = np.zeros_like(v)
        targets = [(center, 1.0)] + [(int(n), 0.0) for n in self._negatives(rng, center)]
        for index, label in targets:
            u = self.output_vectors[index]
            score = 1.0 / (1.0 + np.exp(-np.dot(v, u)))
            gradient = (score - label) * lr
            grad_v += gradient * u
            self.output_vectors[index] = u - gradient * v
        share = grad_v / len(contexts)
        for context in contexts:
            self.input_vectors[context] -= share

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, token: str) -> bool:
        return self.vocabulary is not None and token in self.vocabulary

    def vector(self, token: str) -> np.ndarray:
        """Embedding of a token (raises ``KeyError`` for unknown tokens)."""
        if self.vocabulary is None or self.input_vectors is None:
            raise RuntimeError("fit() must be called first")
        if token not in self.vocabulary:
            raise KeyError(f"token {token!r} not in vocabulary")
        return self.input_vectors[self.vocabulary.token_to_id(token)]

    def embedding_matrix(self) -> np.ndarray:
        """The full (vocab_size, dim) input-embedding matrix."""
        if self.input_vectors is None:
            raise RuntimeError("fit() must be called first")
        return self.input_vectors.copy()

    def embeddings(self) -> dict[str, np.ndarray]:
        """Token -> vector mapping (excluding special tokens)."""
        if self.vocabulary is None or self.input_vectors is None:
            raise RuntimeError("fit() must be called first")
        return {
            token: self.input_vectors[self.vocabulary.token_to_id(token)]
            for token in self.vocabulary.tokens()
            if self.vocabulary.token_to_id(token) not in self.vocabulary.special_ids
        }
