"""Classical (non-neural) baselines: logistic regression, kNN, majority class.

These represent the per-task feature-engineering approach the paper argues
foundation models should subsume: hand-crafted flow statistics fed to a
shallow model.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..nn.metrics import accuracy, macro_f1, weighted_f1

__all__ = [
    "LogisticRegressionConfig",
    "LogisticRegression",
    "KNearestNeighbors",
    "MajorityClassBaseline",
    "standardize_features",
]


def standardize_features(
    train: np.ndarray, *others: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Z-score features using the training split's statistics."""
    mean = train.mean(axis=0, keepdims=True)
    std = train.std(axis=0, keepdims=True)
    std = np.where(std < 1e-12, 1.0, std)
    results = [(train - mean) / std]
    results.extend((other - mean) / std for other in others)
    return tuple(results)


@dataclasses.dataclass
class LogisticRegressionConfig:
    """Optimization settings for multinomial logistic regression."""

    epochs: int = 200
    learning_rate: float = 0.1
    l2: float = 1e-3
    seed: int = 0


class LogisticRegression:
    """Multinomial logistic regression trained by full-batch gradient descent."""

    def __init__(self, config: LogisticRegressionConfig | None = None):
        self.config = config or LogisticRegressionConfig()
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self.num_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        cfg = self.config
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        n, d = features.shape
        self.num_classes = int(labels.max()) + 1
        rng = np.random.default_rng(cfg.seed)
        self.weights = rng.normal(0, 0.01, size=(d, self.num_classes))
        self.bias = np.zeros(self.num_classes)
        one_hot = np.zeros((n, self.num_classes))
        one_hot[np.arange(n), labels] = 1.0
        for _ in range(cfg.epochs):
            logits = features @ self.weights + self.bias
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            gradient = features.T @ (probs - one_hot) / n + cfg.l2 * self.weights
            bias_gradient = (probs - one_hot).mean(axis=0)
            self.weights -= cfg.learning_rate * gradient
            self.bias -= cfg.learning_rate * bias_gradient
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() must be called first")
        logits = np.asarray(features, dtype=float) @ self.weights + self.bias
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        predictions = self.predict(features)
        labels = np.asarray(labels, dtype=np.int64)
        return {
            "accuracy": accuracy(labels, predictions),
            "f1": weighted_f1(labels, predictions, self.num_classes),
            "macro_f1": macro_f1(labels, predictions, self.num_classes),
        }


class KNearestNeighbors:
    """Plain Euclidean k-nearest-neighbour classifier."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNearestNeighbors":
        self._features = np.asarray(features, dtype=float)
        self._labels = np.asarray(labels, dtype=np.int64)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._features is None:
            raise RuntimeError("fit() must be called first")
        features = np.asarray(features, dtype=float)
        predictions = np.empty(len(features), dtype=np.int64)
        k = min(self.k, len(self._features))
        for index, row in enumerate(features):
            distances = ((self._features - row) ** 2).sum(axis=1)
            nearest = np.argpartition(distances, k - 1)[:k]
            values, counts = np.unique(self._labels[nearest], return_counts=True)
            predictions[index] = values[counts.argmax()]
        return predictions

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        predictions = self.predict(features)
        labels = np.asarray(labels, dtype=np.int64)
        num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
        return {
            "accuracy": accuracy(labels, predictions),
            "f1": weighted_f1(labels, predictions, num_classes),
            "macro_f1": macro_f1(labels, predictions, num_classes),
        }


class MajorityClassBaseline:
    """Always predict the most frequent training class (sanity floor)."""

    def __init__(self):
        self.majority = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MajorityClassBaseline":
        labels = np.asarray(labels, dtype=np.int64)
        values, counts = np.unique(labels, return_counts=True)
        self.majority = int(values[counts.argmax()])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.full(len(features), self.majority, dtype=np.int64)

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        predictions = self.predict(features)
        labels = np.asarray(labels, dtype=np.int64)
        num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
        return {
            "accuracy": accuracy(labels, predictions),
            "f1": weighted_f1(labels, predictions, num_classes),
            "macro_f1": macro_f1(labels, predictions, num_classes),
        }
