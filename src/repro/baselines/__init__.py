"""``repro.baselines`` — every comparator the paper's argument needs.

Word2Vec and GloVe (the context-independent embeddings of Section 2), the GRU
classifiers NorBERT was compared against, and classical feature-engineered
baselines (logistic regression, kNN, majority class).
"""

from .classical import (
    KNearestNeighbors,
    LogisticRegression,
    LogisticRegressionConfig,
    MajorityClassBaseline,
    standardize_features,
)
from .glove import GloVe, GloVeConfig
from .gru import GRUClassifier, GRUClassifierConfig
from .word2vec import Word2Vec, Word2VecConfig

__all__ = [
    "Word2Vec",
    "Word2VecConfig",
    "GloVe",
    "GloVeConfig",
    "GRUClassifier",
    "GRUClassifierConfig",
    "LogisticRegression",
    "LogisticRegressionConfig",
    "KNearestNeighbors",
    "MajorityClassBaseline",
    "standardize_features",
]
