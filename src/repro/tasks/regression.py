"""Simple regressors for the performance-prediction task.

The paper's performance-prediction downstream task is a regression problem;
these models (ridge regression and a tiny MLP on top of the NumPy autograd)
serve as the per-task baselines a foundation model would be compared against.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..nn.autograd import Tensor, no_grad
from ..nn.layers import Linear, ReLU
from ..nn.losses import mse_loss
from ..nn.module import Module, Sequential
from ..nn.optim import Adam
from ..nn.trainer import Trainer

__all__ = ["RidgeRegression", "MLPRegressorConfig", "MLPRegressor", "regression_metrics"]


def regression_metrics(targets: np.ndarray, predictions: np.ndarray) -> dict[str, float]:
    """MAE, RMSE and R^2."""
    targets = np.asarray(targets, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    errors = predictions - targets
    mae = float(np.abs(errors).mean())
    rmse = float(np.sqrt((errors ** 2).mean()))
    variance = float(((targets - targets.mean()) ** 2).sum())
    r2 = 1.0 - float((errors ** 2).sum()) / variance if variance > 0 else 0.0
    return {"mae": mae, "rmse": rmse, "r2": r2}


class RidgeRegression:
    """Closed-form L2-regularized linear regression."""

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self.weights: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        design = np.hstack([features, np.ones((len(features), 1))])
        regularizer = self.alpha * np.eye(design.shape[1])
        regularizer[-1, -1] = 0.0  # do not penalize the intercept
        self.weights = np.linalg.solve(design.T @ design + regularizer, design.T @ targets)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() must be called first")
        design = np.hstack([np.asarray(features, dtype=float), np.ones((len(features), 1))])
        return design @ self.weights

    def evaluate(self, features: np.ndarray, targets: np.ndarray) -> dict[str, float]:
        return regression_metrics(targets, self.predict(features))


@dataclasses.dataclass
class MLPRegressorConfig:
    hidden: int = 32
    epochs: int = 60
    batch_size: int = 64
    learning_rate: float = 1e-2
    seed: int = 0


class MLPRegressor(Module):
    """Two-layer perceptron regressor on the NumPy autograd substrate."""

    def __init__(self, input_dim: int, config: MLPRegressorConfig | None = None):
        super().__init__()
        self.config = config or MLPRegressorConfig()
        rng = np.random.default_rng(self.config.seed)
        self.network = Sequential(
            Linear(input_dim, self.config.hidden, rng=rng),
            ReLU(),
            Linear(self.config.hidden, 1, rng=rng),
        )

    def forward(self, features: np.ndarray) -> Tensor:
        return self.network(Tensor(np.asarray(features, dtype=float))).squeeze(-1)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        cfg = self.config
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        optimizer = Adam(self.parameters(), lr=cfg.learning_rate)
        trainer = Trainer(self, optimizer)
        rng = np.random.default_rng(cfg.seed)

        def make_batches():
            order = rng.permutation(len(targets))
            closures = []
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]

                def loss_fn(idx=idx) -> Tensor:
                    return mse_loss(self(features[idx]), targets[idx])

                closures.append(loss_fn)
            return closures

        trainer.fit(make_batches, epochs=cfg.epochs)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self.eval()
        with no_grad():
            output = self(features).data
        self.train()
        return output

    def evaluate(self, features: np.ndarray, targets: np.ndarray) -> dict[str, float]:
        return regression_metrics(targets, self.predict(features))
