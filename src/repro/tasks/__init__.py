"""``repro.tasks`` — downstream task datasets and per-task baselines."""

from .builders import (
    ArrayTaskData,
    TaskData,
    build_application_classification,
    build_congestion_prediction,
    build_device_classification,
    build_dns_category_classification,
    build_malware_detection,
    build_performance_prediction,
)
from .regression import MLPRegressor, MLPRegressorConfig, RidgeRegression, regression_metrics

__all__ = [
    "TaskData",
    "ArrayTaskData",
    "build_application_classification",
    "build_dns_category_classification",
    "build_device_classification",
    "build_malware_detection",
    "build_congestion_prediction",
    "build_performance_prediction",
    "RidgeRegression",
    "MLPRegressor",
    "MLPRegressorConfig",
    "regression_metrics",
]
