"""Downstream-task dataset builders.

Each builder returns a :class:`TaskData` bundle: a labelled training trace, a
labelled evaluation trace (generated with a different seed, and optionally a
distribution shift), the metadata key holding the label, and a human-readable
description.  Regression/windowed tasks return arrays instead of packets.

These are the concrete instantiations of the downstream tasks the paper
enumerates in Section 3.1 (traffic classification, device classification,
malware detection, congestion prediction, performance prediction).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..net.columns import PacketColumns
from ..net.packet import Packet
from ..traffic.anomaly import ATTACK_TYPES, AttackConfig, AttackGenerator
from ..traffic.base import merge_traces
from ..traffic.datacenter import (
    CongestionConfig,
    CongestionSimulator,
    DatacenterConfig,
    DatacenterFlowGenerator,
)
from ..traffic.dns_workload import DNSWorkloadConfig, DNSWorkloadGenerator
from ..traffic.iot import IoTWorkloadConfig, IoTWorkloadGenerator
from ..traffic.scenario import EnterpriseScenario, EnterpriseScenarioConfig
from ..traffic.shift import shifted_dns_config

__all__ = [
    "TaskData",
    "ArrayTaskData",
    "build_application_classification",
    "build_dns_category_classification",
    "build_device_classification",
    "build_malware_detection",
    "build_congestion_prediction",
    "build_performance_prediction",
]


@dataclasses.dataclass
class TaskData:
    """A packet-level classification task.

    The splits are held columnar (:class:`~repro.net.columns.PacketColumns`,
    synthesized natively by the generators); the ``train_packets`` /
    ``test_packets`` views materialize packet objects lazily for consumers
    that still want lists.
    """

    name: str
    train_columns: PacketColumns
    test_columns: PacketColumns
    label_key: str
    description: str

    @functools.cached_property
    def train_packets(self) -> list[Packet]:
        """The training split as packet objects (materialized on first use)."""
        return self.train_columns.to_packets()

    @functools.cached_property
    def test_packets(self) -> list[Packet]:
        """The evaluation split as packet objects (materialized on first use)."""
        return self.test_columns.to_packets()


@dataclasses.dataclass
class ArrayTaskData:
    """A feature-array task (windowed classification or regression)."""

    name: str
    train_features: np.ndarray
    train_targets: np.ndarray
    test_features: np.ndarray
    test_targets: np.ndarray
    kind: str  # "classification" or "regression"
    description: str


def build_application_classification(seed: int = 0, duration: float = 40.0) -> TaskData:
    """Classify flows by application (dns / http / https / iot)."""
    train = EnterpriseScenario(
        EnterpriseScenarioConfig(seed=seed, duration=duration, include_attacks=False)
    ).generate_columns()
    test = EnterpriseScenario(
        EnterpriseScenarioConfig(seed=seed + 31, duration=duration, include_attacks=False)
    ).generate_columns()
    return TaskData(
        name="application-classification",
        train_columns=train,
        test_columns=test,
        label_key="application",
        description="Flow-level application classification over a mixed enterprise capture",
    )


def build_dns_category_classification(
    seed: int = 0,
    num_clients: int = 20,
    queries_per_client: int = 25,
    shifted_eval: bool = True,
) -> TaskData:
    """Classify DNS transactions by the semantic category of the queried service."""
    base = DNSWorkloadConfig(
        seed=seed, num_clients=num_clients, queries_per_client=queries_per_client, duration=60.0
    )
    train = DNSWorkloadGenerator(base).generate_columns()
    eval_config = shifted_dns_config(base) if shifted_eval else dataclasses.replace(base, seed=seed + 77)
    test = DNSWorkloadGenerator(eval_config).generate_columns()
    return TaskData(
        name="dns-category",
        train_columns=train,
        test_columns=test,
        label_key="domain_category",
        description="DNS service-category classification, evaluated under distribution shift",
    )


def build_device_classification(seed: int = 0, duration: float = 90.0) -> TaskData:
    """Classify IoT traffic by device type (camera, thermostat, bulb, ...)."""
    train = IoTWorkloadGenerator(
        IoTWorkloadConfig(seed=seed, duration=duration, devices_per_type=3)
    ).generate_columns()
    test = IoTWorkloadGenerator(
        IoTWorkloadConfig(seed=seed + 13, duration=duration, devices_per_type=2)
    ).generate_columns()
    return TaskData(
        name="device-classification",
        train_columns=train,
        test_columns=test,
        label_key="device",
        description="IoT device classification from behavioural traffic profiles",
    )


def build_malware_detection(
    seed: int = 0,
    duration: float = 40.0,
    attack_types: tuple[str, ...] = ATTACK_TYPES,
) -> TaskData:
    """Binary benign-vs-attack classification over a contaminated capture."""

    def one_split(split_seed: int) -> PacketColumns:
        benign = EnterpriseScenario(
            EnterpriseScenarioConfig(seed=split_seed, duration=duration, include_attacks=False)
        ).generate_columns()
        attacks = AttackGenerator(
            AttackConfig(seed=split_seed + 1, duration=duration, attack_types=attack_types)
        ).generate_columns()
        merged = merge_traces(benign, attacks)
        for metadata in merged.metadata:
            metadata["malicious"] = "attack" if metadata.get("anomaly") else "benign"
        return merged

    return TaskData(
        name="malware-detection",
        train_columns=one_split(seed),
        test_columns=one_split(seed + 53),
        label_key="malicious",
        description="Benign vs attack traffic detection (supervised, known attack families)",
    )


def build_congestion_prediction(seed: int = 0, duration: float = 400.0, window: int = 30) -> ArrayTaskData:
    """Predict whether the bottleneck queue will exceed its threshold soon."""
    train_x, train_y = CongestionSimulator(
        CongestionConfig(seed=seed, duration=duration)
    ).windowed_dataset(window=window)
    test_x, test_y = CongestionSimulator(
        CongestionConfig(seed=seed + 29, duration=duration)
    ).windowed_dataset(window=window)
    return ArrayTaskData(
        name="congestion-prediction",
        train_features=train_x,
        train_targets=train_y,
        test_features=test_x,
        test_targets=test_y,
        kind="classification",
        description="Predict near-future congestion of a bottleneck link from recent load windows",
    )


def build_performance_prediction(seed: int = 0, num_flows: int = 600) -> ArrayTaskData:
    """Predict flow completion time from flow features (regression)."""
    train_x, train_y = DatacenterFlowGenerator(
        DatacenterConfig(seed=seed, num_flows=num_flows)
    ).dataset()
    test_x, test_y = DatacenterFlowGenerator(
        DatacenterConfig(seed=seed + 17, num_flows=num_flows // 2)
    ).dataset()
    return ArrayTaskData(
        name="performance-prediction",
        train_features=train_x,
        train_targets=np.log10(train_y + 1e-9),
        test_features=test_x,
        test_targets=np.log10(test_y + 1e-9),
        kind="regression",
        description="Predict (log) flow completion time in a leaf-spine datacenter",
    )
