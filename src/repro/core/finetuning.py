"""Fine-tuning the pre-trained foundation model on labelled downstream tasks.

Mirrors BERT's recipe: a small classification head is added on top of the
``[CLS]`` embedding and the whole model is trained for a few epochs on the
labelled examples (Section 2 of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..context.builders import Context
from ..nn.autograd import Tensor, no_grad
from ..nn.data import pack_batches
from ..nn.layers import Dropout, Linear
from ..nn.losses import cross_entropy
from ..nn.metrics import accuracy, macro_f1, weighted_f1
from ..nn.module import Module
from ..nn.optim import AdamW
from ..nn.schedules import WarmupLinearSchedule
from ..nn.trainer import Trainer, TrainingHistory
from ..tokenize.vocab import Vocabulary
from .model import NetFoundationModel

__all__ = ["FinetuneConfig", "SequenceClassifier", "LabelEncoder"]


class LabelEncoder:
    """Map string labels to consecutive integer ids (deterministic order)."""

    def __init__(self, labels: Sequence[str]):
        self.classes: list[str] = sorted(set(str(label) for label in labels))
        self._to_id = {label: index for index, label in enumerate(self.classes)}

    def encode(self, labels: Sequence[str]) -> np.ndarray:
        unknown = [str(l) for l in labels if str(l) not in self._to_id]
        if unknown:
            raise KeyError(f"unknown labels {sorted(set(unknown))[:5]}")
        return np.array([self._to_id[str(label)] for label in labels], dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> list[str]:
        return [self.classes[int(i)] for i in ids]

    @property
    def num_classes(self) -> int:
        return len(self.classes)


@dataclasses.dataclass
class FinetuneConfig:
    """Optimization settings for fine-tuning."""

    epochs: int = 4
    batch_size: int = 16
    learning_rate: float = 2e-3
    weight_decay: float = 0.01
    warmup_fraction: float = 0.1
    dropout: float = 0.1
    freeze_encoder: bool = False
    seed: int = 0
    #: Train on length-bucketed batches trimmed to their longest real
    #: sequence (the packed-batch fast path shared with pre-training).
    packed: bool = True


class SequenceClassifier(Module):
    """Foundation model + classification head over the ``[CLS]`` embedding."""

    def __init__(
        self,
        model: NetFoundationModel,
        num_classes: int,
        config: FinetuneConfig | None = None,
    ):
        super().__init__()
        self.config = config or FinetuneConfig()
        self.model = model
        rng = np.random.default_rng(self.config.seed + 7)
        self.dropout = Dropout(self.config.dropout, rng=rng)
        self.head = Linear(model.config.d_model, num_classes, rng=rng)
        # The head serves the model's dtype: a float32 serving build must
        # not silently upcast its logits through a float64 head.
        target = model.token_embedding.weight.data.dtype
        for param in self.head.parameters():
            if param.data.dtype != target:
                param.data = param.data.astype(target)
        self.num_classes = num_classes
        self._fastpath = None
        #: Record each layer's attention weights during ``predict_logits``
        #: (``model.attention_maps()`` — the interpretability contract).
        #: Recording copies a ``(batch, heads, seq, seq)`` array per layer;
        #: serving deployments that never read maps set this to False and
        #: the eval fast path skips the copies (maps are cleared, so a
        #: stale read fails loudly instead of returning old weights).
        self.record_attention = True

    def forward(self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        cls = self.model.encode_cls(token_ids, attention_mask=attention_mask)
        return self.head(self.dropout(cls))

    @property
    def model_dtype(self) -> str:
        """The build dtype (``"float64"`` / ``"float32"``) this model serves in."""
        return str(self.model.token_embedding.weight.data.dtype)

    def serving_build(self, dtype: str = "float32") -> "SequenceClassifier":
        """A serving replica of this classifier built in ``dtype``.

        The one-time cast the accelerated serving path documents: a fresh
        model is constructed with ``serve_dtype=dtype`` and this
        classifier's trained weights are loaded into it
        (:meth:`~repro.nn.module.Module.load_state_dict` casts state to the
        parameter dtype).  The original keeps training in float64 as the
        reference; the replica's eval forwards take the packed float32
        kernels under the documented-ulp policy (:mod:`repro.nn.numeric`).
        ``serving_build("float64")`` is a plain replica (useful for
        symmetric comparisons).
        """
        dtype = str(np.dtype(dtype))
        config = dataclasses.replace(self.model.config, serve_dtype=dtype)
        replica = SequenceClassifier(
            NetFoundationModel(config), self.num_classes, config=self.config
        )
        replica.load_state_dict(self.state_dict())
        replica.record_attention = self.record_attention
        return replica

    # ------------------------------------------------------------------
    # Training / inference over encoded arrays
    # ------------------------------------------------------------------
    def fit(
        self,
        token_ids: np.ndarray,
        attention_mask: np.ndarray,
        labels: np.ndarray,
        eval_data: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Fine-tune on encoded inputs; ``labels`` are integer class ids."""
        cfg = self.config
        labels = np.asarray(labels, dtype=np.int64)
        if cfg.freeze_encoder:
            parameters = self.head.parameters()
        else:
            parameters = self.parameters()
        optimizer = AdamW(parameters, lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        steps = max(len(labels) // cfg.batch_size, 1) * cfg.epochs
        schedule = WarmupLinearSchedule(
            optimizer, warmup_steps=max(int(cfg.warmup_fraction * steps), 1), total_steps=steps
        )
        trainer = Trainer(self, optimizer, schedule=schedule)
        rng = np.random.default_rng(cfg.seed)
        fused = getattr(self.model.config, "fused", True)

        def make_batches():
            closures = []
            if cfg.packed:
                for batch in pack_batches(token_ids, attention_mask, cfg.batch_size, rng=rng):
                    def loss_fn(batch=batch) -> Tensor:
                        logits = self(batch.token_ids, attention_mask=batch.attention_mask)
                        return cross_entropy(logits, labels[batch.indices], fused=fused)

                    loss_fn.num_tokens = batch.num_tokens
                    closures.append(loss_fn)
                return closures
            order = rng.permutation(len(labels))
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]

                def loss_fn(idx=idx) -> Tensor:
                    logits = self(token_ids[idx], attention_mask=attention_mask[idx])
                    return cross_entropy(logits, labels[idx], fused=fused)

                loss_fn.num_tokens = int(np.asarray(attention_mask)[idx].sum())
                closures.append(loss_fn)
            return closures

        eval_fn = None
        if eval_data is not None:
            eval_ids, eval_mask, eval_labels = eval_data

            def eval_fn() -> dict[str, float]:
                return self.evaluate(eval_ids, eval_mask, eval_labels)

        return trainer.fit(make_batches, epochs=cfg.epochs, eval_fn=eval_fn, verbose=verbose)

    def predict(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Predicted class ids."""
        return self.predict_proba(token_ids, attention_mask, batch_size).argmax(axis=-1)

    def predict_logits(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Raw eval-mode logits (no dropout, no grad) for encoded inputs.

        The batched forward the serving engine micro-batches over.  Rows are
        computed independently (attention is masked per row, normalization
        and projections are row-wise): a row's logits are a function of its
        own tokens and the forward width only, not of what else is in the
        batch — which is what makes length-bucketed micro-batching
        deterministic (the same rows at the same width always produce the
        same logits) and lets it match per-flow predictions.  Padding-width
        changes can reorder BLAS accumulations at the last ulp, so class
        predictions are stable across widths while raw logits are exactly
        reproducible only at a fixed width.

        With a fused model (the default) this dispatches to the tape-free
        :class:`~repro.core.fastpath.EvalForward`, which is bit-identical
        to the module-graph loop below and additionally guarantees batch
        invariance: a singleton chunk runs as a duplicated pair, so 1-row
        logits match the same row served inside any batch.  The composed
        reference loop stays available as :meth:`predict_logits_reference`
        (and is used when ``config.fused`` is off).

        No packed trimming here: interpretability consumers read the
        recorded attention maps and expect them aligned with the input
        width (the serving engine trims before calling in).
        """
        if getattr(self.model.config, "fused", True):
            if self._fastpath is None:
                from .fastpath import EvalForward

                self._fastpath = EvalForward(self)
            return self._fastpath(token_ids, attention_mask, batch_size=batch_size)
        return self.predict_logits_reference(token_ids, attention_mask, batch_size)

    def predict_logits_reference(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """The module-graph eval loop (the differential baseline for
        :class:`~repro.core.fastpath.EvalForward`)."""
        token_ids = np.asarray(token_ids)
        if len(token_ids) == 0:
            return np.zeros((0, self.num_classes))
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(token_ids), batch_size):
                mask = attention_mask
                if mask is not None:
                    mask = mask[start : start + batch_size]
                logits = self(token_ids[start : start + batch_size], attention_mask=mask)
                outputs.append(logits.data)
        self.train()
        return np.concatenate(outputs, axis=0)

    def predict_proba(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Predicted class probabilities (softmax over logits)."""
        logits = self.predict_logits(token_ids, attention_mask, batch_size)
        return Tensor(logits).softmax(axis=-1).data

    def evaluate(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, labels: np.ndarray
    ) -> dict[str, float]:
        """Accuracy, macro-F1 and weighted-F1 on encoded data."""
        predictions = self.predict(token_ids, attention_mask)
        labels = np.asarray(labels, dtype=np.int64)
        return {
            "accuracy": accuracy(labels, predictions),
            "f1": weighted_f1(labels, predictions, self.num_classes),
            "macro_f1": macro_f1(labels, predictions, self.num_classes),
        }

    # ------------------------------------------------------------------
    # Convenience wrappers over Context objects
    # ------------------------------------------------------------------
    @staticmethod
    def encode_dataset(
        contexts: Sequence[Context],
        vocabulary: Vocabulary,
        label_encoder: LabelEncoder,
        max_len: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode contexts (with labels) into arrays for :meth:`fit`."""
        from ..context.builders import encode_contexts

        labelled = [c for c in contexts if c.label is not None]
        ids, mask = encode_contexts(labelled, vocabulary, max_len)
        labels = label_encoder.encode([c.label for c in labelled])
        return ids, mask, labels
