"""Configuration of the network foundation model."""

from __future__ import annotations

import dataclasses

__all__ = ["NetFMConfig"]


@dataclasses.dataclass
class NetFMConfig:
    """Hyper-parameters of :class:`~repro.core.model.NetFoundationModel`.

    The defaults are intentionally tiny (two layers, 48-dimensional) so that
    pre-training plus fine-tuning completes in seconds on a laptop CPU; every
    benchmark can scale them up through its own config.
    """

    vocab_size: int = 512
    d_model: int = 48
    num_layers: int = 2
    num_heads: int = 4
    d_ff: int = 96
    max_len: int = 128
    dropout: float = 0.1
    num_segments: int = 16
    seed: int = 0
    #: Run attention/layernorm/losses as fused tape nodes and dispatch
    #: ``predict_logits`` to the no-tape eval fast path.  ``False`` selects
    #: the composed reference ops (kept for the differential harness).
    fused: bool = True
    #: Parameter dtype the model is built in.  ``"float64"`` (default) is
    #: the training/reference build, governed by the bit-exact numeric
    #: policy.  ``"float32"`` is the accelerated *serving* build: trained
    #: float64 weights are cast once at load, eval forwards take the
    #: packed-gemm kernels, and logits follow the documented-ulp contract
    #: (:mod:`repro.nn.numeric`).  Build one from a trained classifier via
    #: :meth:`SequenceClassifier.serving_build
    #: <repro.core.finetuning.SequenceClassifier.serving_build>`.
    serve_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} must be divisible by num_heads={self.num_heads}"
            )
        if self.vocab_size < 6:
            raise ValueError("vocab_size must cover at least the special tokens")
        if self.max_len < 4:
            raise ValueError("max_len must be at least 4")
        if self.serve_dtype not in ("float64", "float32"):
            raise ValueError(
                f"serve_dtype must be 'float64' or 'float32', got {self.serve_dtype!r}"
            )
