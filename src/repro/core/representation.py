"""Extracting token and sequence representations from the foundation model.

These are the embeddings the paper's Section 3.4 examples inspect: NorBERT's
nearest neighbour of token "80" being "443", ciphersuite 49199 neighbouring
49200, and the semantic clusters of Section 3.3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from ..context.builders import Context, encode_contexts
from ..nn.autograd import no_grad
from ..tokenize.vocab import Vocabulary
from .model import NetFoundationModel

__all__ = [
    "input_token_embeddings",
    "contextual_token_embeddings",
    "sequence_embeddings",
]


def input_token_embeddings(
    model: NetFoundationModel, vocabulary: Vocabulary
) -> dict[str, np.ndarray]:
    """The static input-embedding vector of every vocabulary token."""
    matrix = model.input_embedding_matrix()
    return {vocabulary.id_to_token(i): matrix[i] for i in range(len(vocabulary))}


def contextual_token_embeddings(
    model: NetFoundationModel,
    contexts: Sequence[Context],
    vocabulary: Vocabulary,
    max_len: int | None = None,
    batch_size: int = 32,
) -> dict[str, np.ndarray]:
    """Average contextual (post-encoder) embedding of each token over a corpus.

    This matches how NorBERT-style analyses compute token vectors: run the
    pre-trained encoder over many contexts and average each token's hidden
    states across its occurrences.
    """
    max_len = max_len or model.config.max_len
    ids, mask = encode_contexts(contexts, vocabulary, max_len)
    sums: dict[int, np.ndarray] = defaultdict(lambda: np.zeros(model.config.d_model))
    counts: dict[int, int] = defaultdict(int)
    model.eval()
    with no_grad():
        for start in range(0, len(ids), batch_size):
            batch_ids = ids[start : start + batch_size]
            batch_mask = mask[start : start + batch_size]
            hidden = model(batch_ids, attention_mask=batch_mask).data
            for row in range(batch_ids.shape[0]):
                for position in range(batch_ids.shape[1]):
                    if not batch_mask[row, position]:
                        continue
                    token_id = int(batch_ids[row, position])
                    sums[token_id] += hidden[row, position]
                    counts[token_id] += 1
    return {
        vocabulary.id_to_token(token_id): sums[token_id] / counts[token_id]
        for token_id in sums
        if token_id not in vocabulary.special_ids
    }


def sequence_embeddings(
    model: NetFoundationModel,
    contexts: Sequence[Context],
    vocabulary: Vocabulary,
    max_len: int | None = None,
    pooling: str = "cls",
    batch_size: int = 64,
) -> np.ndarray:
    """One embedding per context (``[CLS]`` or mean pooling)."""
    if pooling not in ("cls", "mean"):
        raise ValueError(f"unknown pooling {pooling!r}")
    max_len = max_len or model.config.max_len
    ids, mask = encode_contexts(contexts, vocabulary, max_len)
    outputs = []
    model.eval()
    with no_grad():
        for start in range(0, len(ids), batch_size):
            batch_ids = ids[start : start + batch_size]
            batch_mask = mask[start : start + batch_size]
            if pooling == "cls":
                embedding = model.encode_cls(batch_ids, attention_mask=batch_mask)
            else:
                embedding = model.encode_mean(batch_ids, attention_mask=batch_mask)
            outputs.append(embedding.data)
    return np.concatenate(outputs, axis=0)
