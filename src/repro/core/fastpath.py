"""Tape-free eval forward for the fine-tuned classifier (the serving fast path).

:meth:`SequenceClassifier.predict_logits
<repro.core.finetuning.SequenceClassifier.predict_logits>` is the forward the
serving engine micro-batches over.  Running it through the module graph pays
for a tape node, a Python dispatch and a fresh array per op even under
``no_grad``; :class:`EvalForward` instead replays the *exact* NumPy op
sequence of the fused eval forward — same functions, same evaluation order,
in-place only where IEEE semantics make it equivalent (``var ** 0.5`` stays
the literal operator; the gelu cube is the same multiply chain as
``Tensor.gelu``) — over a
:class:`~repro.nn.kernels.ScratchPool` of reused activation buffers.  Logits
are therefore bit-identical to the module path, which the differential
harness (`tests/test_nn_fused_equivalence.py`) asserts.

Two serving contracts live here rather than in the engine:

* **Batch invariance.**  A 1-row forward takes a different BLAS path than
  the same row inside a >=2-row batch (gemv-shaped kernels, last-ulp
  drift).  ``EvalForward`` runs singleton chunks as a duplicated pair and
  keeps row 0, so a row's logits depend only on its own tokens and the
  forward width — never on how a stream happened to fill a bucket or where
  a chunk boundary fell.  (Previously the engine duplicated lone rows
  itself; the workaround now lives at the kernel layer where every caller
  gets it.)
* **Attention recording.**  Each layer's ``last_attention`` is written
  exactly as the module forward would, so attention rollout and the other
  interpretability consumers see identical maps.

Parameter arrays are re-read from the live modules on every call: fine-tune
further and the fast path serves the new weights with no invalidation step.

**Float32 serving builds take a different forward.**  Bit-identical replay
pins the accumulation order, which pins the BLAS call shapes — so a float32
build (``NetFMConfig.serve_dtype="float32"``, governed by the relaxed
documented-ulp policy of :mod:`repro.nn.numeric`) dispatches per chunk to
the packed kernels instead: one ``(b*s, d) @ (d, 3d)`` QKV gemm,
head-packed contiguous ``(b*h, s, ·)`` score/context gemms,
gemv-against-ones softmax/layernorm reductions
(:func:`~repro.nn.kernels.eval_attention_packed`,
:func:`~repro.nn.kernels.eval_layer_norm_packed`), and every remaining
``(b, s, ·) @ (·, ·)`` projection reshaped to a single 2D gemm.  Both
serving contracts above (batch invariance, attention recording) hold for
that path too.  Float64 keeps the bit-exact replay unchanged.
"""

from __future__ import annotations

import numpy as np

from ..nn.autograd import _GELU_C
from ..nn.kernels import ScratchPool, eval_attention_packed, eval_layer_norm_packed

__all__ = ["EvalForward"]


class EvalForward:
    """Batched eval-mode ``token_ids -> logits`` for a ``SequenceClassifier``.

    Drop-in for the module-graph ``predict_logits`` loop (same chunking, same
    range checks, bit-identical logits) minus the autograd overhead.  Not a
    Module: it owns no parameters, only scratch buffers keyed by batch shape,
    and never touches the train/eval flags of the model it reads.
    """

    def __init__(self, classifier):
        self.classifier = classifier
        self._pool = ScratchPool()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def __call__(
        self, token_ids: np.ndarray, attention_mask: np.ndarray | None, batch_size: int = 64
    ) -> np.ndarray:
        classifier = self.classifier
        model = classifier.model
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if len(token_ids) == 0:
            return np.zeros(
                (0, classifier.num_classes),
                dtype=model.token_embedding.weight.data.dtype,
            )
        n, seq = token_ids.shape
        if seq > model.config.max_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_len {model.config.max_len}"
            )
        valid = None
        if attention_mask is not None:
            valid = np.asarray(attention_mask, dtype=bool)
        dtype = model.token_embedding.weight.data.dtype
        out = np.empty((n, classifier.num_classes), dtype=dtype)
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            chunk_valid = valid[start:stop] if valid is not None else None
            out[start:stop] = self._forward_chunk(token_ids[start:stop], chunk_valid)
        return out

    # ------------------------------------------------------------------
    # One micro-batch
    # ------------------------------------------------------------------
    def _forward_chunk(self, ids: np.ndarray, valid: np.ndarray | None) -> np.ndarray:
        model = self.classifier.model
        pool = self._pool
        keep = ids.shape[0]
        # Batch-invariance: run a lone row as a duplicated pair (see module
        # docstring) and return only the first row's logits.
        if keep == 1:
            ids = np.concatenate([ids, ids], axis=0)
            if valid is not None:
                valid = np.concatenate([valid, valid], axis=0)

        token_table = model.token_embedding.weight.data
        if ids.size and (ids.min() < 0 or ids.max() >= token_table.shape[0]):
            raise IndexError(
                f"token id out of range [0, {token_table.shape[0]}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        b, s = ids.shape
        d = token_table.shape[1]
        dtype = token_table.dtype
        # Float32 serving builds run the packed-gemm forward under the
        # relaxed-ulp policy; float64 keeps the bit-exact replay.
        packed = dtype == np.float32
        layer_norm = self._layer_norm_packed if packed else self._layer_norm

        # Embeddings: token gather + broadcast position add (same operand
        # pairs as the tiled-position composed path), then embedding norm.
        # Dropout layers are eval-mode no-ops and are skipped outright.
        x = pool.take("res0", (b, s, d), dtype)
        np.take(token_table, ids, axis=0, out=x)
        x += model.position_embedding.weight.data[:s]
        y = pool.take("res1", (b, s, d), dtype)
        norm = model.embedding_norm
        layer_norm(x, norm.gamma.data, norm.beta.data, norm.eps, y)
        x, y = y, x

        mask = None
        if valid is not None:
            mask = ~valid[:, None, None, :]

        # Attention-map recording costs a (batch, heads, seq, seq) copy per
        # layer — pure memcpy that serving never reads.  The classifier's
        # ``record_attention`` flag (default True, so interpretability
        # consumers keep working unchanged) lets a serving deployment skip
        # it; maps are then cleared, so a stale read fails loudly
        # (``attention_maps()`` returns ``[]``) instead of silently
        # returning a previous batch's weights.
        record = getattr(self.classifier, "record_attention", True)
        blk = pool.take("blk", (b, s, d), dtype)
        for layer in model.encoder.layers:
            # x = x + out_proj(attention(norm1(x)))
            norm = layer.norm1
            layer_norm(x, norm.gamma.data, norm.beta.data, norm.eps, blk)
            att = layer.attention
            if packed:
                merged = pool.take("att_merged", (b, s, d), dtype)
                merged, weights = eval_attention_packed(
                    blk,
                    att.q_proj.weight.data, att.q_proj.bias.data,
                    att.k_proj.weight.data, att.k_proj.bias.data,
                    att.v_proj.weight.data, att.v_proj.bias.data,
                    att.num_heads, mask, pool, out=merged,
                    need_weights=record,
                )
            else:
                merged, weights = self._attention(blk, att, mask)
            att.last_attention = weights[:keep].copy() if record else None
            self._matmul(merged, att.out_proj.weight.data, blk, packed)
            blk += att.out_proj.bias.data
            np.add(x, blk, out=y)
            x, y = y, x
            # x = x + ff_out(gelu(ff_in(norm2(x))))
            norm = layer.norm2
            layer_norm(x, norm.gamma.data, norm.beta.data, norm.eps, blk)
            hidden = self._feed_forward(blk, layer, packed)
            self._matmul(hidden, layer.ff_out.weight.data, blk, packed)
            blk += layer.ff_out.bias.data
            np.add(x, blk, out=y)
            x, y = y, x

        norm = model.encoder.final_norm
        layer_norm(x, norm.gamma.data, norm.beta.data, norm.eps, y)

        # [CLS] slice (a strided view, as in the module path) -> head.
        cls = y[:, 0, :]
        head = self.classifier.head
        logits = cls @ head.weight.data
        logits += head.bias.data
        return logits[:keep]

    # ------------------------------------------------------------------
    # Op replays (each mirrors its fused kernel / composed op bit for bit)
    # ------------------------------------------------------------------
    @staticmethod
    def _matmul(src, weight, out, packed: bool) -> None:
        """``src @ weight -> out`` for ``(b, s, ·)`` activations.

        The packed (float32) mode folds the batch into the rows so BLAS
        runs one large gemm instead of ``b`` small ones; the float64 mode
        keeps the 3D matmul the composed path runs, bit for bit.
        """
        if packed:
            rows = src.shape[0] * src.shape[1]
            np.matmul(src.reshape(rows, -1), weight, out=out.reshape(rows, -1))
        else:
            np.matmul(src, weight, out=out)

    def _layer_norm_packed(self, data, gamma, beta, eps, out) -> None:
        eval_layer_norm_packed(data, gamma, beta, eps, self._pool, out=out)

    def _layer_norm(self, data, gamma, beta, eps, out) -> None:
        pool = self._pool
        d = data.shape[-1]
        inv_d = 1.0 / max(d, 1)
        stat_shape = data.shape[:-1] + (1,)
        mean = pool.take("ln_mean", stat_shape, data.dtype)
        np.sum(data, axis=-1, keepdims=True, out=mean)
        mean *= inv_d
        centered = pool.take("ln_centered", data.shape, data.dtype)
        np.subtract(data, mean, out=centered)
        sq = pool.take("ln_sq", data.shape, data.dtype)
        np.multiply(centered, centered, out=sq)
        var = pool.take("ln_var", stat_shape, data.dtype)
        np.sum(sq, axis=-1, keepdims=True, out=var)
        var *= inv_d
        var += eps
        denom = var ** 0.5
        np.divide(centered, denom, out=centered)
        np.multiply(centered, gamma, out=out)
        out += beta

    def _attention(self, data, att, mask):
        """QKV + SDPA replay; returns (merged context, attention weights)."""
        pool = self._pool
        b, s, d = data.shape
        h = att.num_heads
        dh = d // h
        scale = 1.0 / float(np.sqrt(dh))

        def _project(slot, linear):
            out = pool.take(slot, (b, s, d), data.dtype)
            np.matmul(data, linear.weight.data, out=out)
            out += linear.bias.data
            return out

        q4 = _project("att_q", att.q_proj).reshape(b, s, h, dh).transpose(0, 2, 1, 3)
        k4 = _project("att_k", att.k_proj).reshape(b, s, h, dh).transpose(0, 2, 1, 3)
        v4 = _project("att_v", att.v_proj).reshape(b, s, h, dh).transpose(0, 2, 1, 3)

        scores = pool.take("att_scores", (b, h, s, s), data.dtype)
        np.matmul(q4, np.swapaxes(k4, -1, -2), out=scores)
        scores *= scale
        if mask is not None:
            np.copyto(scores, -1e9, where=mask)
        stat_shape = (b, h, s, 1)
        mx = pool.take("att_max", stat_shape, data.dtype)
        np.max(scores, axis=-1, keepdims=True, out=mx)
        np.subtract(scores, mx, out=scores)
        np.exp(scores, out=scores)
        denom = pool.take("att_denom", stat_shape, data.dtype)
        np.sum(scores, axis=-1, keepdims=True, out=denom)
        np.divide(scores, denom, out=scores)

        ctx = pool.take("att_ctx", (b, h, s, dh), data.dtype)
        np.matmul(scores, v4, out=ctx)
        merged = pool.take("att_merged", (b, s, d), data.dtype)
        np.copyto(merged.reshape(b, s, h, dh), ctx.transpose(0, 2, 1, 3))
        return merged, scores

    def _feed_forward(self, data, layer, packed: bool = False):
        """``gelu(ff_in(data))`` into a pooled hidden buffer."""
        pool = self._pool
        b, s, _ = data.shape
        d_ff = layer.ff_in.weight.data.shape[1]
        hidden = pool.take("ff_hidden", (b, s, d_ff), data.dtype)
        self._matmul(data, layer.ff_in.weight.data, hidden, packed)
        hidden += layer.ff_in.bias.data
        # gelu(x) = 0.5 x (1 + tanh(C (x + 0.044715 x^3))); the cube is the
        # same (x * x) * x multiply chain as ``Tensor.gelu`` (NumPy's pow
        # loop would differ bitwise *and* run ~80x slower), everything after
        # runs in place on it via commutative ufuncs.
        inner = pool.take("ff_inner", hidden.shape, data.dtype)
        np.multiply(hidden, hidden, out=inner)
        inner *= hidden
        inner *= 0.044715
        inner += hidden
        inner *= _GELU_C
        np.tanh(inner, out=inner)
        inner += 1.0
        np.multiply(hidden, 0.5, out=hidden)
        np.multiply(hidden, inner, out=hidden)
        return hidden
