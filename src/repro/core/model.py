"""The network foundation model: a BERT-style encoder over packet tokens.

This is the system the paper envisions: a transformer encoder pre-trained on
unlabeled traffic with masked-token modeling (plus optional network-specific
objectives), whose contextual embeddings are then reused by every downstream
task (classification, anomaly detection, few-shot adaptation).
"""

from __future__ import annotations

import numpy as np

from ..nn.autograd import Tensor
from ..nn.layers import Dropout, Embedding, LayerNorm, Linear
from ..nn.module import Module
from ..nn.transformer import TransformerEncoder
from .config import NetFMConfig

__all__ = ["NetFoundationModel", "MaskedTokenHead", "SegmentPairHead"]


class NetFoundationModel(Module):
    """Transformer encoder with token, position and segment embeddings.

    Parameters
    ----------
    config:
        A :class:`NetFMConfig`.  ``config.vocab_size`` must match the
        vocabulary used to encode contexts.
    """

    def __init__(self, config: NetFMConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_len, config.d_model, rng=rng)
        self.segment_embedding = Embedding(config.num_segments, config.d_model, rng=rng)
        fused = getattr(config, "fused", True)
        self.embedding_norm = LayerNorm(config.d_model, fused=fused)
        self.embedding_dropout = Dropout(config.dropout, rng=rng)
        self.encoder = TransformerEncoder(
            num_layers=config.num_layers,
            d_model=config.d_model,
            num_heads=config.num_heads,
            d_ff=config.d_ff,
            dropout=config.dropout,
            rng=rng,
            fused=fused,
        )
        # Serving builds cast every parameter once at construction;
        # load_state_dict then casts incoming float64 state to the
        # parameter dtype, so restoring trained weights into a float32
        # build is the one-time cast the serving path documents.
        serve_dtype = getattr(config, "serve_dtype", "float64")
        if serve_dtype != "float64":
            target = np.dtype(serve_dtype)
            for param in self.parameters():
                param.data = param.data.astype(target)

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def embed_tokens(self, token_ids: np.ndarray) -> Tensor:
        """Token-embedding lookup only (used by integrated gradients)."""
        return self.token_embedding(np.asarray(token_ids, dtype=np.int64))

    def forward(
        self,
        token_ids: np.ndarray | None = None,
        attention_mask: np.ndarray | None = None,
        segment_ids: np.ndarray | None = None,
        inputs_embeds: Tensor | None = None,
    ) -> Tensor:
        """Return contextual embeddings of shape ``(batch, seq, d_model)``.

        Either ``token_ids`` or pre-computed ``inputs_embeds`` (as produced by
        :meth:`embed_tokens`, possibly scaled — the integrated-gradients path)
        must be provided.
        """
        if inputs_embeds is None:
            if token_ids is None:
                raise ValueError("either token_ids or inputs_embeds is required")
            token_ids = np.asarray(token_ids, dtype=np.int64)
            batch, seq = token_ids.shape
            token_part = self.token_embedding(token_ids)
        else:
            batch, seq = inputs_embeds.shape[0], inputs_embeds.shape[1]
            token_part = inputs_embeds
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        positions = np.tile(np.arange(seq), (batch, 1))
        embeddings = token_part + self.position_embedding(positions)
        if segment_ids is not None:
            segment_ids = np.clip(np.asarray(segment_ids), 0, self.config.num_segments - 1)
            embeddings = embeddings + self.segment_embedding(segment_ids)
        embeddings = self.embedding_dropout(self.embedding_norm(embeddings))
        return self.encoder(embeddings, attention_mask=attention_mask)

    def encode_cls(
        self,
        token_ids: np.ndarray,
        attention_mask: np.ndarray | None = None,
        segment_ids: np.ndarray | None = None,
    ) -> Tensor:
        """The ``[CLS]`` (first position) embedding for each sequence."""
        hidden = self.forward(token_ids, attention_mask, segment_ids)
        return hidden[:, 0, :]

    def encode_mean(
        self,
        token_ids: np.ndarray,
        attention_mask: np.ndarray,
        segment_ids: np.ndarray | None = None,
    ) -> Tensor:
        """Mean-pooled embedding over non-padding positions."""
        hidden = self.forward(token_ids, attention_mask, segment_ids)
        mask = np.asarray(attention_mask, dtype=hidden.data.dtype)[..., None]
        summed = (hidden * Tensor(mask)).sum(axis=1)
        counts = np.maximum(mask.sum(axis=1), 1.0)
        return summed * Tensor(1.0 / counts)

    # ------------------------------------------------------------------
    # Introspection used by the embedding-analysis experiments
    # ------------------------------------------------------------------
    def input_embedding_matrix(self) -> np.ndarray:
        """The (vocab_size, d_model) input embedding table (detached copy)."""
        return self.token_embedding.weight.data.copy()

    def attention_maps(self) -> list[np.ndarray]:
        """Per-layer attention maps of the most recent forward pass."""
        return self.encoder.attention_maps()


class MaskedTokenHead(Module):
    """Projection from hidden states to vocabulary logits for MLM."""

    def __init__(self, config: NetFMConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed + 1)
        self.transform = Linear(config.d_model, config.d_model, rng=rng)
        self.norm = LayerNorm(config.d_model, fused=getattr(config, "fused", True))
        self.decoder = Linear(config.d_model, config.vocab_size, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        return self.decoder(self.norm(self.transform(hidden).gelu()))


class SegmentPairHead(Module):
    """Binary classifier over the ``[CLS]`` embedding for pair-level objectives.

    Used both for next-segment prediction (does segment B follow segment A in
    the same flow?) and for query-answer prediction (is B the answer to query
    A?), the two network-specific pre-training tasks of Section 4.1.4.
    """

    def __init__(self, config: NetFMConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed + 2)
        self.classifier = Linear(config.d_model, 2, rng=rng)

    def forward(self, cls_embedding: Tensor) -> Tensor:
        return self.classifier(cls_embedding)
