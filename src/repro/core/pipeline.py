"""End-to-end pipeline: tokenizer + context builder + vocabulary + model.

``NetFMPipeline`` is the library's highest-level entry point, used by the
examples and by NetGLUE: point it at an unlabeled trace to pre-train, then at
a labelled trace to fine-tune and evaluate.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..context.builders import Context, ContextBuilder, FlowContextBuilder
from ..net.packet import Packet
from ..nn.trainer import TrainingHistory
from ..tokenize.base import PacketTokenizer
from ..tokenize.field_aware import FieldAwareTokenizer
from ..tokenize.vocab import Vocabulary
from .config import NetFMConfig
from .fewshot import PrototypeClassifier
from .finetuning import FinetuneConfig, LabelEncoder, SequenceClassifier
from .model import NetFoundationModel
from .pretraining import Pretrainer, PretrainingConfig

__all__ = ["NetFMPipeline", "PipelineResult"]


@dataclasses.dataclass
class PipelineResult:
    """What a full pre-train / fine-tune / evaluate run produced."""

    pretrain_history: TrainingHistory | None
    finetune_history: TrainingHistory | None
    metrics: dict[str, float]
    classifier: SequenceClassifier | None = None


class NetFMPipeline:
    """Bundle of tokenizer, context builder, vocabulary and foundation model.

    Parameters
    ----------
    tokenizer:
        Any :class:`~repro.tokenize.base.PacketTokenizer`; defaults to the
        field-aware tokenizer.
    context_builder:
        Any :class:`~repro.context.builders.ContextBuilder`; defaults to
        flow-level contexts with the ``application`` label.
    model_config:
        Architecture of the foundation model.  ``vocab_size`` is overwritten
        once the vocabulary has been built.
    """

    def __init__(
        self,
        tokenizer: PacketTokenizer | None = None,
        context_builder: ContextBuilder | None = None,
        model_config: NetFMConfig | None = None,
        pretrain_config: PretrainingConfig | None = None,
        finetune_config: FinetuneConfig | None = None,
    ):
        self.tokenizer = tokenizer or FieldAwareTokenizer()
        self.context_builder = context_builder or FlowContextBuilder()
        self.model_config = model_config or NetFMConfig()
        self.pretrain_config = pretrain_config or PretrainingConfig()
        self.finetune_config = finetune_config or FinetuneConfig()
        self.vocabulary: Vocabulary | None = None
        self.model: NetFoundationModel | None = None
        self.label_encoder: LabelEncoder | None = None

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def build_contexts(self, packets: Sequence[Packet]) -> list[Context]:
        """Tokenize a trace into contexts with the configured strategy."""
        return self.context_builder.build(packets, self.tokenizer)

    def build_vocabulary(self, contexts: Sequence[Context], min_count: int = 1) -> Vocabulary:
        """Build (and store) the vocabulary from contexts, resizing the model config."""
        self.vocabulary = Vocabulary.build([c.tokens for c in contexts], min_count=min_count)
        self.model_config = dataclasses.replace(
            self.model_config, vocab_size=len(self.vocabulary)
        )
        return self.vocabulary

    def build_model(self) -> NetFoundationModel:
        """Instantiate the foundation model for the current vocabulary."""
        if self.vocabulary is None:
            raise RuntimeError("build_vocabulary() must be called before build_model()")
        self.model = NetFoundationModel(self.model_config)
        return self.model

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def pretrain(
        self, packets: Sequence[Packet], verbose: bool = False
    ) -> tuple[list[Context], TrainingHistory]:
        """Fit the tokenizer, build contexts/vocabulary/model and pre-train."""
        self.tokenizer.fit(packets)
        contexts = self.build_contexts(packets)
        self.build_vocabulary(contexts)
        self.build_model()
        pretrainer = Pretrainer(self.model, self.vocabulary, self.pretrain_config)
        history = pretrainer.pretrain(
            contexts, packets=packets, tokenizer=self.tokenizer, verbose=verbose
        )
        return contexts, history

    def encode_packets(self, packets: Sequence[Packet]) -> tuple[np.ndarray, np.ndarray]:
        """Encode raw packets straight to padded id/mask matrices.

        Uses the tokenizer's vectorized :meth:`~repro.tokenize.base.PacketTokenizer.encode_batch`
        fast path (one row per packet, no context grouping) — the entry point
        for packet-level inference at trace scale.
        """
        if self.vocabulary is None:
            raise RuntimeError("pretrain() (or build_vocabulary) must run first")
        return self.tokenizer.encode_batch(
            packets, self.vocabulary, max_len=self.model_config.max_len
        )

    def encode_labelled(
        self, packets: Sequence[Packet]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build labelled contexts from a trace and encode them for fine-tuning."""
        if self.vocabulary is None:
            raise RuntimeError("pretrain() (or build_vocabulary) must run first")
        contexts = [c for c in self.build_contexts(packets) if c.label is not None]
        if not contexts:
            raise ValueError("no labelled contexts were produced from the given packets")
        if self.label_encoder is None:
            self.label_encoder = LabelEncoder([c.label for c in contexts])
        ids, mask = _encode(contexts, self.vocabulary, self.model_config.max_len)
        labels = self.label_encoder.encode([c.label for c in contexts])
        return ids, mask, labels

    def finetune(
        self,
        train_packets: Sequence[Packet],
        eval_packets: Sequence[Packet] | None = None,
        verbose: bool = False,
    ) -> PipelineResult:
        """Fine-tune on a labelled trace and evaluate on another."""
        if self.model is None:
            raise RuntimeError("pretrain() must be called before finetune()")
        train = self.encode_labelled(train_packets)
        classifier = SequenceClassifier(
            self.model, self.label_encoder.num_classes, self.finetune_config
        )
        eval_data = None
        metrics: dict[str, float] = {}
        if eval_packets is not None:
            eval_data = self.encode_labelled(eval_packets)
        history = classifier.fit(*train, eval_data=eval_data, verbose=verbose)
        if eval_data is not None:
            metrics = classifier.evaluate(*eval_data)
        return PipelineResult(
            pretrain_history=None, finetune_history=history, metrics=metrics, classifier=classifier
        )

    def few_shot(
        self,
        support_packets: Sequence[Packet],
        query_packets: Sequence[Packet],
    ) -> dict[str, float]:
        """Prototype-based few-shot evaluation with the frozen encoder."""
        if self.model is None:
            raise RuntimeError("pretrain() must be called before few_shot()")
        support = self.encode_labelled(support_packets)
        query = self.encode_labelled(query_packets)
        classifier = PrototypeClassifier(self.model)
        classifier.fit(*support)
        return classifier.evaluate(*query)


def _encode(contexts: Sequence[Context], vocabulary: Vocabulary, max_len: int):
    from ..context.builders import encode_contexts

    return encode_contexts(contexts, vocabulary, max_len)
