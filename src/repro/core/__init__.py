"""``repro.core`` — the network foundation model (the paper's envisioned system).

A BERT-style encoder over packet tokens, pre-training objectives (masked token
modeling, next-segment prediction, query-answer prediction), fine-tuning heads,
gradient-free few-shot adaptation and representation extraction, plus an
end-to-end pipeline tying tokenizer, context builder and model together.
"""

from .config import NetFMConfig
from .fewshot import PrototypeClassifier, few_shot_episode
from .finetuning import FinetuneConfig, LabelEncoder, SequenceClassifier
from .model import MaskedTokenHead, NetFoundationModel, SegmentPairHead
from .pipeline import NetFMPipeline, PipelineResult
from .pretraining import (
    Pretrainer,
    PretrainingConfig,
    make_query_answer_pairs,
    make_segment_pairs,
    make_segment_pairs_ids,
    mask_tokens,
)
from .representation import (
    contextual_token_embeddings,
    input_token_embeddings,
    sequence_embeddings,
)

__all__ = [
    "NetFMConfig",
    "NetFoundationModel",
    "MaskedTokenHead",
    "SegmentPairHead",
    "PretrainingConfig",
    "Pretrainer",
    "mask_tokens",
    "make_segment_pairs",
    "make_segment_pairs_ids",
    "make_query_answer_pairs",
    "FinetuneConfig",
    "SequenceClassifier",
    "LabelEncoder",
    "PrototypeClassifier",
    "few_shot_episode",
    "NetFMPipeline",
    "PipelineResult",
    "input_token_embeddings",
    "contextual_token_embeddings",
    "sequence_embeddings",
]
