"""Few-shot adaptation without gradient updates (the GPT-3 analogy).

The paper recounts how GPT-3 reduced the labelled-data requirement to a
handful of examples with no fine-tuning.  At this library's scale the
corresponding mechanism is prototype (nearest-class-centroid) classification
over the frozen foundation model's embeddings: the "prompt" is the small
support set, and no parameter is updated.
"""

from __future__ import annotations

import numpy as np

from ..nn.autograd import no_grad
from ..nn.metrics import accuracy, macro_f1, weighted_f1
from .model import NetFoundationModel

__all__ = ["PrototypeClassifier", "few_shot_episode"]


class PrototypeClassifier:
    """Nearest-class-centroid classifier on frozen foundation-model embeddings."""

    def __init__(self, model: NetFoundationModel, metric: str = "cosine"):
        if metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {metric!r}")
        self.model = model
        self.metric = metric
        self.prototypes: np.ndarray | None = None
        self.classes: np.ndarray | None = None

    def _embed(self, token_ids: np.ndarray, attention_mask: np.ndarray, batch_size: int = 64) -> np.ndarray:
        self.model.eval()
        chunks = []
        with no_grad():
            for start in range(0, len(token_ids), batch_size):
                cls = self.model.encode_cls(
                    token_ids[start : start + batch_size],
                    attention_mask=attention_mask[start : start + batch_size],
                )
                chunks.append(cls.data)
        return np.concatenate(chunks, axis=0)

    def fit(self, token_ids: np.ndarray, attention_mask: np.ndarray, labels: np.ndarray) -> "PrototypeClassifier":
        """Compute one prototype (mean embedding) per class from the support set."""
        labels = np.asarray(labels, dtype=np.int64)
        embeddings = self._embed(token_ids, attention_mask)
        self.classes = np.unique(labels)
        self.prototypes = np.stack(
            [embeddings[labels == c].mean(axis=0) for c in self.classes]
        )
        return self

    def predict(self, token_ids: np.ndarray, attention_mask: np.ndarray) -> np.ndarray:
        if self.prototypes is None or self.classes is None:
            raise RuntimeError("fit() must be called before predict()")
        embeddings = self._embed(token_ids, attention_mask)
        if self.metric == "cosine":
            normed_e = embeddings / (np.linalg.norm(embeddings, axis=1, keepdims=True) + 1e-12)
            normed_p = self.prototypes / (
                np.linalg.norm(self.prototypes, axis=1, keepdims=True) + 1e-12
            )
            scores = normed_e @ normed_p.T
            best = scores.argmax(axis=1)
        else:
            distances = ((embeddings[:, None, :] - self.prototypes[None, :, :]) ** 2).sum(axis=-1)
            best = distances.argmin(axis=1)
        return self.classes[best]

    def evaluate(
        self, token_ids: np.ndarray, attention_mask: np.ndarray, labels: np.ndarray
    ) -> dict[str, float]:
        predictions = self.predict(token_ids, attention_mask)
        labels = np.asarray(labels, dtype=np.int64)
        num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
        return {
            "accuracy": accuracy(labels, predictions),
            "f1": weighted_f1(labels, predictions, num_classes),
            "macro_f1": macro_f1(labels, predictions, num_classes),
        }


def few_shot_episode(
    labels: np.ndarray,
    shots: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a support/query split with ``shots`` examples per class.

    Returns ``(support_indices, query_indices)``.  Classes with fewer than
    ``shots + 1`` examples contribute all but one example to the support set.
    """
    labels = np.asarray(labels, dtype=np.int64)
    support: list[int] = []
    query: list[int] = []
    for cls in np.unique(labels):
        indices = np.nonzero(labels == cls)[0]
        indices = rng.permutation(indices)
        take = min(shots, max(len(indices) - 1, 1))
        support.extend(indices[:take].tolist())
        query.extend(indices[take:].tolist())
    return np.array(support, dtype=np.int64), np.array(query, dtype=np.int64)
