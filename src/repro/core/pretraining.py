"""Self-supervised pre-training objectives (paper Sections 2 and 4.1.4).

Three objectives are implemented:

``mlm``
    Masked token modeling: 15% of tokens are selected; of those, 80% are
    replaced with ``[MASK]``, 10% with a random token and 10% left unchanged,
    and the model must reconstruct the originals (BERT's recipe).
``nsp``
    Next-segment prediction: the context is split at its middle separator; in
    half the examples the second part is replaced with a part from a random
    other context, and the model must tell the two cases apart (BERT's NSP
    transplanted to flows).
``qa``
    Query-answer prediction: a network-specific objective the paper proposes —
    pair a DNS query with either its true response or the response of another
    query and predict whether they match.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..context.builders import Context
from ..net.dns import DNSMessage
from ..net.packet import Packet
from ..nn.autograd import Tensor
from ..nn.data import PackedBatch, pack_batches
from ..nn.losses import cross_entropy, masked_cross_entropy
from ..nn.module import Module
from ..nn.optim import AdamW
from ..nn.schedules import WarmupLinearSchedule
from ..nn.trainer import Trainer, TrainingHistory
from ..tokenize.base import PacketTokenizer
from ..tokenize.vocab import CLS, SEP, Vocabulary
from .config import NetFMConfig
from .model import MaskedTokenHead, NetFoundationModel, SegmentPairHead

__all__ = [
    "PretrainingConfig",
    "mask_tokens",
    "make_segment_pairs",
    "make_segment_pairs_ids",
    "make_query_answer_pairs",
    "Pretrainer",
]


@dataclasses.dataclass
class PretrainingConfig:
    """Optimization and objective settings for pre-training."""

    epochs: int = 3
    batch_size: int = 16
    learning_rate: float = 3e-3
    weight_decay: float = 0.01
    mask_probability: float = 0.15
    warmup_fraction: float = 0.1
    objectives: tuple[str, ...] = ("mlm",)
    pair_loss_weight: float = 0.5
    seed: int = 0
    #: Use the packed-batch fast path: length-bucketed batches trimmed to
    #: their longest real sequence, and NSP pairs built directly on the
    #: encoded id matrices.  Disable to reproduce the legacy per-sequence
    #: pipeline (the throughput benchmark compares the two).
    packed: bool = True

    def __post_init__(self) -> None:
        known = {"mlm", "nsp", "qa"}
        unknown = set(self.objectives) - known
        if unknown:
            raise ValueError(f"unknown objectives {sorted(unknown)}; known: {sorted(known)}")
        if not 0.0 < self.mask_probability < 1.0:
            raise ValueError("mask_probability must be in (0, 1)")


def mask_tokens(
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    vocabulary: Vocabulary,
    rng: np.random.Generator,
    mask_probability: float = 0.15,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply BERT-style masking.

    Returns ``(masked_ids, targets, loss_mask)`` where ``loss_mask`` marks the
    positions whose original token must be predicted.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=bool)
    special = np.isin(token_ids, list(vocabulary.special_ids))
    candidates = attention_mask & ~special
    selection = (rng.random(token_ids.shape) < mask_probability) & candidates
    # Guarantee at least one masked position per sequence that has candidates.
    # Only the (rare) starved rows are visited, and the RNG is consumed
    # exactly as the original per-row loop did, so seeded runs reproduce.
    starved = np.flatnonzero(candidates.any(axis=1) & ~selection.any(axis=1))
    for row in starved:
        selection[row, rng.choice(np.flatnonzero(candidates[row]))] = True

    masked = token_ids.copy()
    roll = rng.random(token_ids.shape)
    replace_mask = selection & (roll < 0.8)
    replace_random = selection & (roll >= 0.8) & (roll < 0.9)
    masked[replace_mask] = vocabulary.mask_id
    if replace_random.any():
        masked[replace_random] = rng.integers(
            len(vocabulary.special_ids), len(vocabulary), size=int(replace_random.sum())
        )
    return masked, token_ids, selection


def _split_context(tokens: list[str]) -> tuple[list[str], list[str]]:
    """Split a context's tokens at the separator closest to the middle."""
    positions = [i for i, t in enumerate(tokens) if t == SEP]
    if not positions:
        middle = len(tokens) // 2
        return tokens[:middle], tokens[middle:]
    middle = len(tokens) // 2
    split = min(positions, key=lambda p: abs(p - middle))
    return tokens[: split + 1], tokens[split + 1 :]


def make_segment_pairs(
    contexts: Sequence[Context],
    rng: np.random.Generator,
    negative_fraction: float = 0.5,
) -> list[tuple[list[str], int]]:
    """Build (token sequence, is-true-continuation) examples for NSP."""
    pairs: list[tuple[list[str], int]] = []
    usable = [c for c in contexts if len(c.tokens) >= 6]
    if len(usable) < 2:
        return pairs
    for index, context in enumerate(usable):
        first, second = _split_context(context.tokens)
        if rng.random() < negative_fraction:
            other = usable[int(rng.integers(0, len(usable)))]
            if other is context:
                other = usable[(index + 1) % len(usable)]
            _, second = _split_context(other.tokens)
            label = 0
        else:
            label = 1
        tokens = first + second
        if tokens and tokens[0] != CLS:
            tokens = [CLS] + tokens
        pairs.append((tokens, label))
    return pairs


def make_segment_pairs_ids(
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    vocabulary: Vocabulary,
    rng: np.random.Generator,
    negative_fraction: float = 0.5,
    max_len: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized NSP example construction over whole id matrices.

    The id-matrix counterpart of :func:`make_segment_pairs`: split points,
    negative sampling and partner choice are computed with batched NumPy RNG
    operations; only the final row assembly copies NumPy slices.  Returns
    ``(pair_ids, pair_mask, labels)`` where label 1 marks a true
    continuation.
    """
    ids = np.asarray(token_ids)
    mask = np.asarray(attention_mask, dtype=bool)
    lengths = mask.sum(axis=1)
    usable = np.flatnonzero(lengths >= 6)
    width = max_len if max_len is not None else ids.shape[1]
    if len(usable) < 2:
        empty = np.zeros((0, width), dtype=ids.dtype)
        return empty, np.zeros((0, width), dtype=bool), np.zeros(0, dtype=np.int64)
    ids = ids[usable]
    mask = mask[usable]
    lengths = lengths[usable]
    n = len(usable)

    # Split each context at the separator closest to its middle (falling
    # back to the literal middle when it has no separator).
    positions = np.arange(ids.shape[1])
    is_sep = (ids == vocabulary.sep_id) & mask
    middle = lengths // 2
    distance = np.abs(positions[None, :] - middle[:, None]).astype(float)
    distance[~is_sep] = np.inf
    split = np.where(is_sep.any(axis=1), distance.argmin(axis=1) + 1, middle)

    negative = rng.random(n) < negative_fraction
    partner = rng.integers(0, n, size=n)
    collision = negative & (partner == np.arange(n))
    partner[collision] = (np.flatnonzero(collision) + 1) % n
    source = np.where(negative, partner, np.arange(n))
    labels = (~negative).astype(np.int64)

    cls_id = vocabulary.cls_id
    needs_cls = ids[:, 0] != cls_id
    out_ids = np.full((n, width), vocabulary.pad_id, dtype=ids.dtype)
    out_lengths = np.zeros(n, dtype=np.int64)
    for row in range(n):
        src = int(source[row])
        first = ids[row, : split[row]]
        second = ids[src, split[src] : lengths[src]]
        offset = 0
        if needs_cls[row]:
            out_ids[row, 0] = cls_id
            offset = 1
        take_first = min(len(first), width - offset)
        out_ids[row, offset : offset + take_first] = first[:take_first]
        offset += take_first
        take_second = min(len(second), width - offset)
        out_ids[row, offset : offset + take_second] = second[:take_second]
        out_lengths[row] = offset + take_second
    out_mask = np.arange(width)[None, :] < out_lengths[:, None]
    return out_ids, out_mask, labels


def make_query_answer_pairs(
    packets: Sequence[Packet],
    tokenizer: PacketTokenizer,
    rng: np.random.Generator,
    negative_fraction: float = 0.5,
) -> list[tuple[list[str], int]]:
    """Build DNS (query, answer) pair examples for the ``qa`` objective."""
    queries: dict[object, Packet] = {}
    responses: dict[object, Packet] = {}
    for packet in packets:
        if not isinstance(packet.application, DNSMessage):
            continue
        connection = packet.metadata.get("connection_id")
        if connection is None:
            continue
        if packet.application.is_response:
            responses[connection] = packet
        else:
            queries[connection] = packet
    matched = [key for key in queries if key in responses]
    pairs: list[tuple[list[str], int]] = []
    if len(matched) < 2:
        return pairs
    for key in matched:
        query_tokens = tokenizer.tokenize_packet(queries[key])
        if rng.random() < negative_fraction:
            other = matched[int(rng.integers(0, len(matched)))]
            if other == key:
                other = matched[(matched.index(key) + 1) % len(matched)]
            answer_tokens = tokenizer.tokenize_packet(responses[other])
            label = 0
        else:
            answer_tokens = tokenizer.tokenize_packet(responses[key])
            label = 1
        tokens = [CLS] + query_tokens + [SEP] + answer_tokens + [SEP]
        pairs.append((tokens, label))
    return pairs


class Pretrainer:
    """Run self-supervised pre-training of a :class:`NetFoundationModel`."""

    def __init__(
        self,
        model: NetFoundationModel,
        vocabulary: Vocabulary,
        config: PretrainingConfig | None = None,
    ):
        self.model = model
        self.vocabulary = vocabulary
        self.config = config or PretrainingConfig()
        rng = np.random.default_rng(self.config.seed)
        self.mlm_head = MaskedTokenHead(model.config, rng=rng)
        self.pair_head = SegmentPairHead(model.config, rng=rng)
        self._rng = rng
        self._pair_buffers: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def _encode(self, token_lists: Sequence[list[str]]) -> tuple[np.ndarray, np.ndarray]:
        return self.vocabulary.encode_ids_batch(
            token_lists, max_len=self.model.config.max_len, dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def pretrain(
        self,
        contexts: Sequence[Context],
        packets: Sequence[Packet] | None = None,
        tokenizer: PacketTokenizer | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Pre-train on ``contexts`` with the configured objectives.

        ``packets`` and ``tokenizer`` are only required when the ``qa``
        objective is enabled (query-answer pairs are built from raw packets).
        """
        cfg = self.config
        ids, mask = self._encode([c.tokens for c in contexts])

        pair_ids, pair_mask, pair_labels = None, None, None
        if cfg.packed and "nsp" in cfg.objectives:
            # Fast path: NSP pairs assembled directly on the id matrices.
            pair_ids, pair_mask, pair_labels = make_segment_pairs_ids(
                ids, mask, self.vocabulary, self._rng
            )
        pair_examples: list[tuple[list[str], int]] = []
        if not cfg.packed and "nsp" in cfg.objectives:
            pair_examples.extend(make_segment_pairs(contexts, self._rng))
        if "qa" in cfg.objectives:
            if packets is None or tokenizer is None:
                raise ValueError("the 'qa' objective requires packets and a tokenizer")
            pair_examples.extend(make_query_answer_pairs(packets, tokenizer, self._rng))
        if pair_examples:
            example_ids, example_mask = self._encode([tokens for tokens, _ in pair_examples])
            example_labels = np.array([label for _, label in pair_examples], dtype=np.int64)
            if pair_ids is None:
                pair_ids, pair_mask, pair_labels = example_ids, example_mask, example_labels
            else:
                pair_ids = np.concatenate([pair_ids, example_ids], axis=0)
                pair_mask = np.concatenate([pair_mask, example_mask], axis=0)
                pair_labels = np.concatenate([pair_labels, example_labels], axis=0)
        if pair_ids is not None and not len(pair_ids):
            pair_ids, pair_mask, pair_labels = None, None, None
        return self._fit_encoded(ids, mask, pair_ids, pair_mask, pair_labels, verbose=verbose)

    def pretrain_encoded(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Pre-train directly on encoded id/mask matrices — no Context objects.

        This is the end of the columnar data path: a
        :class:`~repro.net.columns.PacketColumns` batch encoded through
        :meth:`~repro.context.builders.PacketContextBuilder.encode_columns`
        (or any tokenizer's ``encode_batch``) feeds packed training without
        per-packet Python objects ever being materialized.  The ``mlm``
        objective works unchanged; ``nsp`` pairs are assembled on the id
        matrices with :func:`make_segment_pairs_ids`; the ``qa`` objective
        needs raw packets and is only available through :meth:`pretrain`.
        """
        cfg = self.config
        if "qa" in cfg.objectives:
            raise ValueError("the 'qa' objective requires pretrain() with raw packets")
        ids = np.asarray(ids)
        mask = np.asarray(mask, dtype=bool)
        pair_ids, pair_mask, pair_labels = None, None, None
        if "nsp" in cfg.objectives:
            pair_ids, pair_mask, pair_labels = make_segment_pairs_ids(
                ids, mask, self.vocabulary, self._rng
            )
            if not len(pair_ids):
                pair_ids, pair_mask, pair_labels = None, None, None
        return self._fit_encoded(ids, mask, pair_ids, pair_mask, pair_labels, verbose=verbose)

    def _fit_encoded(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        pair_ids: np.ndarray | None,
        pair_mask: np.ndarray | None,
        pair_labels: np.ndarray | None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Shared optimization loop over encoded (and optional pair) matrices."""
        cfg = self.config
        # Reusable buffers for the per-step pair sampling: each sampled pair
        # batch is consumed fully within its train step, so the next step can
        # safely overwrite the same memory.
        self._pair_buffers = None
        if cfg.packed and pair_ids is not None:
            self._pair_buffers = (
                np.empty((cfg.batch_size, pair_ids.shape[1]), dtype=pair_ids.dtype),
                np.empty((cfg.batch_size, pair_ids.shape[1]), dtype=bool),
            )

        parameters = (
            self.model.parameters() + self.mlm_head.parameters() + self.pair_head.parameters()
        )
        optimizer = AdamW(parameters, lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        steps_per_epoch = max(len(ids) // cfg.batch_size, 1)
        total_steps = max(cfg.epochs * steps_per_epoch, 1)
        schedule = WarmupLinearSchedule(
            optimizer, warmup_steps=max(int(cfg.warmup_fraction * total_steps), 1),
            total_steps=total_steps,
        )

        class _Composite(Module):
            """Container so the Trainer can flip train/eval on all parts."""

            def __init__(self, parts):
                super().__init__()
                self.parts = parts

            def forward(self):  # pragma: no cover - never called
                raise RuntimeError

        composite = _Composite([self.model, self.mlm_head, self.pair_head])
        trainer = Trainer(composite, optimizer, schedule=schedule)

        def make_batches():
            closures = []
            if cfg.packed:
                # Length-bucketed batches trimmed to their longest member:
                # attention and MLM logits never touch all-padding columns.
                for batch in pack_batches(ids, mask, cfg.batch_size, rng=self._rng):
                    closure = self._make_loss(batch.token_ids, batch.attention_mask,
                                              pair_ids, pair_mask, pair_labels)
                    closure.num_tokens = batch.num_tokens
                    closures.append(closure)
            else:
                order = self._rng.permutation(len(ids))
                for start in range(0, len(order), cfg.batch_size):
                    batch_idx = order[start : start + cfg.batch_size]
                    closure = self._make_loss(ids[batch_idx], mask[batch_idx],
                                              pair_ids, pair_mask, pair_labels)
                    closure.num_tokens = int(mask[batch_idx].sum())
                    closures.append(closure)
            return closures

        return trainer.fit(make_batches, epochs=cfg.epochs, verbose=verbose)

    def _make_loss(self, batch_ids, batch_mask, pair_ids, pair_mask, pair_labels):
        cfg = self.config
        fused = getattr(self.model.config, "fused", True)

        def loss_fn() -> Tensor:
            loss = Tensor(np.zeros(()), requires_grad=False)
            if "mlm" in cfg.objectives:
                masked, targets, loss_mask = mask_tokens(
                    batch_ids, batch_mask, self.vocabulary, self._rng, cfg.mask_probability
                )
                hidden = self.model(masked, attention_mask=batch_mask)
                logits = self.mlm_head(hidden)
                loss = loss + masked_cross_entropy(logits, targets, loss_mask, fused=fused)
            if pair_ids is not None and len(pair_ids):
                sample = self._rng.choice(
                    len(pair_ids), size=min(cfg.batch_size, len(pair_ids)), replace=False
                )
                if cfg.packed:
                    pair_batch = PackedBatch.from_rows(
                        pair_ids, pair_mask, sample, out=self._pair_buffers
                    )
                    sample_ids, sample_mask = pair_batch.token_ids, pair_batch.attention_mask
                else:
                    sample_ids, sample_mask = pair_ids[sample], pair_mask[sample]
                cls = self.model.encode_cls(sample_ids, attention_mask=sample_mask)
                pair_logits = self.pair_head(cls)
                pair_loss = cross_entropy(pair_logits, pair_labels[sample], fused=fused)
                loss = loss + pair_loss * cfg.pair_loss_weight
            return loss

        return loss_fn

    # ------------------------------------------------------------------
    # Evaluation helpers used by the scaling experiment (E12)
    # ------------------------------------------------------------------
    def masked_token_accuracy(self, contexts: Sequence[Context], samples: int = 64) -> float:
        """Accuracy of MLM predictions on a held-out sample of contexts."""
        if not contexts:
            return 0.0
        sample = list(contexts)[:samples]
        ids, mask = self._encode([c.tokens for c in sample])
        masked, targets, loss_mask = mask_tokens(
            ids, mask, self.vocabulary, self._rng, self.config.mask_probability
        )
        self.model.eval()
        self.mlm_head.eval()
        hidden = self.model(masked, attention_mask=mask)
        logits = self.mlm_head(hidden).data
        predictions = logits.argmax(axis=-1)
        if loss_mask.sum() == 0:
            return 0.0
        return float((predictions[loss_mask] == targets[loss_mask]).mean())
