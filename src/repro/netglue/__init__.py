"""``repro.netglue`` — the GLUE-style multi-task benchmark for network models."""

from .benchmark import NetGLUE, NetGLUETask
from .leaderboard import format_leaderboard, run_leaderboard
from .solvers import FlowStatsSolver, FoundationModelSolver, GRUSolver, SolverSettings

__all__ = [
    "NetGLUE",
    "NetGLUETask",
    "run_leaderboard",
    "format_leaderboard",
    "SolverSettings",
    "FoundationModelSolver",
    "GRUSolver",
    "FlowStatsSolver",
]
