"""Leaderboard assembly and formatting for NetGLUE runs."""

from __future__ import annotations

from .benchmark import NetGLUE, NetGLUETask

__all__ = ["run_leaderboard", "format_leaderboard"]


def run_leaderboard(
    tasks: list[NetGLUETask], solvers: list
) -> dict[str, dict[str, float]]:
    """Run every solver on every task.

    Returns ``{solver_name: {task_name: headline_metric, ..., "netglue": mean}}``.
    Solvers must expose ``name`` and ``solve(task) -> dict[str, float]``.
    """
    results: dict[str, dict[str, float]] = {}
    for solver in solvers:
        per_task: dict[str, float] = {}
        for task in tasks:
            metrics = solver.solve(task)
            per_task[task.name] = float(metrics.get(task.metric, 0.0))
        per_task["netglue"] = NetGLUE.aggregate(
            {name: value for name, value in per_task.items() if name != "netglue"}
        )
        results[solver.name] = per_task
    return results


def format_leaderboard(results: dict[str, dict[str, float]]) -> str:
    """Human-readable leaderboard table (systems as rows, tasks as columns)."""
    if not results:
        return "(empty leaderboard)"
    task_names = [name for name in next(iter(results.values())) if name != "netglue"]
    header = f"{'system':20}" + "".join(f"{name:>16}" for name in task_names) + f"{'NetGLUE':>10}"
    lines = [header, "-" * len(header)]
    for system, scores in sorted(results.items(), key=lambda kv: -kv[1].get("netglue", 0.0)):
        row = f"{system:20}"
        for name in task_names:
            row += f"{scores.get(name, float('nan')):16.3f}"
        row += f"{scores.get('netglue', float('nan')):10.3f}"
        lines.append(row)
    return "\n".join(lines)
