"""NetGLUE: the multi-task benchmark the paper calls for (Section 4.2).

GLUE bundles a set of language-understanding tasks with a shared evaluation
protocol and an aggregate score; NetGLUE does the same over the synthetic
network workloads: application classification, DNS service-category
classification (with distribution shift), IoT device classification,
benign-vs-attack detection and congestion prediction.  Every task reports a
single headline metric and the benchmark score is their unweighted mean.
"""

from __future__ import annotations

import dataclasses

from ..tasks.builders import (
    ArrayTaskData,
    TaskData,
    build_application_classification,
    build_congestion_prediction,
    build_device_classification,
    build_dns_category_classification,
    build_malware_detection,
)

__all__ = ["NetGLUETask", "NetGLUE"]


@dataclasses.dataclass
class NetGLUETask:
    """One benchmark task: data plus the headline metric to report."""

    name: str
    data: TaskData | ArrayTaskData
    metric: str
    description: str

    @property
    def is_packet_task(self) -> bool:
        return isinstance(self.data, TaskData)


class NetGLUE:
    """Build the benchmark's task list at a given scale.

    Parameters
    ----------
    seed:
        Base seed; each task derives its own seeds from it.
    scale:
        ``"tiny"`` (unit tests / CI), ``"small"`` (benchmarks, default) or
        ``"full"`` (longer traces for more stable numbers).
    """

    SCALES = {
        "tiny": {"duration": 15.0, "dns_clients": 6, "dns_queries": 8, "congestion_duration": 120.0},
        "small": {"duration": 30.0, "dns_clients": 12, "dns_queries": 15, "congestion_duration": 300.0},
        "full": {"duration": 90.0, "dns_clients": 25, "dns_queries": 30, "congestion_duration": 900.0},
    }

    def __init__(self, seed: int = 0, scale: str = "small"):
        if scale not in self.SCALES:
            raise ValueError(f"unknown scale {scale!r}; choose from {sorted(self.SCALES)}")
        self.seed = seed
        self.scale = scale

    def tasks(self) -> list[NetGLUETask]:
        """Instantiate every benchmark task (generates the data)."""
        params = self.SCALES[self.scale]
        return [
            NetGLUETask(
                name="application",
                data=build_application_classification(self.seed, duration=params["duration"]),
                metric="f1",
                description="Application classification (dns/http/https/iot)",
            ),
            NetGLUETask(
                name="dns-category",
                data=build_dns_category_classification(
                    self.seed + 1,
                    num_clients=params["dns_clients"],
                    queries_per_client=params["dns_queries"],
                ),
                metric="f1",
                description="DNS service-category classification under distribution shift",
            ),
            NetGLUETask(
                name="device",
                data=build_device_classification(self.seed + 2, duration=params["duration"] * 2),
                metric="f1",
                description="IoT device classification",
            ),
            NetGLUETask(
                name="malware",
                data=build_malware_detection(self.seed + 3, duration=params["duration"]),
                metric="f1",
                description="Benign vs attack traffic detection",
            ),
            NetGLUETask(
                name="congestion",
                data=build_congestion_prediction(
                    self.seed + 4, duration=params["congestion_duration"]
                ),
                metric="f1",
                description="Near-future congestion prediction",
            ),
        ]

    @staticmethod
    def aggregate(per_task_scores: dict[str, float]) -> float:
        """The NetGLUE score: unweighted mean of per-task headline metrics."""
        if not per_task_scores:
            return 0.0
        return float(sum(per_task_scores.values()) / len(per_task_scores))
