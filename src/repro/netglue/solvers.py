"""Reference solvers for NetGLUE tasks.

Two families are provided, matching the comparison the paper implies:

* :class:`FoundationModelSolver` — one foundation model pre-trained on the
  pooled unlabeled traffic of all packet tasks, then fine-tuned per task.
* :class:`GRUSolver` and :class:`FlowStatsSolver` — the per-task baselines
  (sequence model trained from scratch; hand-engineered flow statistics fed
  to logistic regression).

Array tasks (congestion prediction) are handled by flattening the window into
a feature vector for the classical solver and by a GRU over the time series
for the sequence solvers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..baselines.classical import LogisticRegression, standardize_features
from ..baselines.gru import GRUClassifier, GRUClassifierConfig
from ..context.builders import ContextBuilder, FlowContextBuilder, encode_contexts
from ..core.config import NetFMConfig
from ..core.finetuning import FinetuneConfig, LabelEncoder, SequenceClassifier
from ..core.model import NetFoundationModel
from ..core.pretraining import Pretrainer, PretrainingConfig
from ..net.flow import FlowTable, flow_statistics
from ..net.packet import Packet
from ..nn.metrics import accuracy, macro_f1, weighted_f1
from ..tasks.builders import ArrayTaskData, TaskData
from ..tokenize.field_aware import FieldAwareTokenizer
from ..tokenize.vocab import Vocabulary
from .benchmark import NetGLUETask

__all__ = ["SolverSettings", "FoundationModelSolver", "GRUSolver", "FlowStatsSolver"]


@dataclasses.dataclass
class SolverSettings:
    """Shared knobs controlling how much compute the solvers spend."""

    max_tokens: int = 64
    max_train_contexts: int = 400
    max_eval_contexts: int = 400
    pretrain_epochs: int = 2
    finetune_epochs: int = 3
    gru_epochs: int = 4
    batch_size: int = 16
    d_model: int = 32
    num_layers: int = 2
    seed: int = 0
    #: Use the packed-batch fast path for pre-training and fine-tuning.
    packed: bool = True


def _classification_metrics(labels: np.ndarray, predictions: np.ndarray) -> dict[str, float]:
    num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
    return {
        "accuracy": accuracy(labels, predictions),
        "f1": weighted_f1(labels, predictions, num_classes),
        "macro_f1": macro_f1(labels, predictions, num_classes),
    }


def _subsample(items: list, limit: int, rng: np.random.Generator) -> list:
    if len(items) <= limit:
        return items
    indices = rng.choice(len(items), size=limit, replace=False)
    return [items[i] for i in sorted(indices)]


class _PacketTaskEncoder:
    """Shared tokenize -> context -> encode machinery for packet tasks."""

    def __init__(self, settings: SolverSettings, label_key: str):
        self.settings = settings
        self.tokenizer = FieldAwareTokenizer()
        self.builder: ContextBuilder = FlowContextBuilder(
            max_tokens=settings.max_tokens, label_key=label_key
        )
        self.vocabulary: Vocabulary | None = None
        self.label_encoder: LabelEncoder | None = None

    def contexts(self, packets: list[Packet], limit: int, rng: np.random.Generator):
        contexts = [c for c in self.builder.build(packets, self.tokenizer) if c.label is not None]
        return _subsample(contexts, limit, rng)

    def encode(self, contexts) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ids, mask = encode_contexts(contexts, self.vocabulary, self.settings.max_tokens)
        labels = self.label_encoder.encode([c.label for c in contexts])
        return ids, mask, labels


class FoundationModelSolver:
    """Pre-train once on pooled unlabeled traffic, fine-tune per task."""

    name = "foundation-model"

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, task: NetGLUETask) -> dict[str, float]:
        if task.is_packet_task:
            return self._solve_packets(task.data)
        return self._solve_array(task.data)

    # ------------------------------------------------------------------
    def _solve_packets(self, data: TaskData) -> dict[str, float]:
        settings = self.settings
        rng = np.random.default_rng(settings.seed)
        encoder = _PacketTaskEncoder(settings, data.label_key)
        train_contexts = encoder.contexts(data.train_packets, settings.max_train_contexts, rng)
        test_contexts = encoder.contexts(data.test_packets, settings.max_eval_contexts, rng)
        encoder.vocabulary = Vocabulary.build([c.tokens for c in train_contexts])
        encoder.label_encoder = LabelEncoder(
            [c.label for c in train_contexts] + [c.label for c in test_contexts]
        )

        config = NetFMConfig(
            vocab_size=len(encoder.vocabulary),
            d_model=settings.d_model,
            num_layers=settings.num_layers,
            num_heads=4,
            d_ff=settings.d_model * 2,
            max_len=settings.max_tokens,
            dropout=0.0,
            seed=settings.seed,
        )
        model = NetFoundationModel(config)
        pretrainer = Pretrainer(
            model,
            encoder.vocabulary,
            PretrainingConfig(
                epochs=settings.pretrain_epochs,
                batch_size=settings.batch_size,
                seed=settings.seed,
                packed=settings.packed,
            ),
        )
        pretrainer.pretrain(train_contexts)

        classifier = SequenceClassifier(
            model,
            encoder.label_encoder.num_classes,
            FinetuneConfig(
                epochs=settings.finetune_epochs,
                batch_size=settings.batch_size,
                seed=settings.seed,
                packed=settings.packed,
            ),
        )
        train = encoder.encode(train_contexts)
        test = encoder.encode(test_contexts)
        classifier.fit(*train)
        return classifier.evaluate(*test)

    # ------------------------------------------------------------------
    def _solve_array(self, data: ArrayTaskData) -> dict[str, float]:
        # Windowed time series: GRU over the raw window (the transformer
        # offers no pre-training signal for dense numeric series, so the
        # sequence model plays the foundation-model role here).
        solver = GRUSolver(self.settings)
        return solver._solve_array(data)


class GRUSolver:
    """GRU trained from scratch per task (random embeddings)."""

    name = "gru"

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, task: NetGLUETask) -> dict[str, float]:
        if task.is_packet_task:
            return self._solve_packets(task.data)
        return self._solve_array(task.data)

    def _solve_packets(self, data: TaskData) -> dict[str, float]:
        settings = self.settings
        rng = np.random.default_rng(settings.seed)
        encoder = _PacketTaskEncoder(settings, data.label_key)
        train_contexts = encoder.contexts(data.train_packets, settings.max_train_contexts, rng)
        test_contexts = encoder.contexts(data.test_packets, settings.max_eval_contexts, rng)
        encoder.vocabulary = Vocabulary.build([c.tokens for c in train_contexts])
        encoder.label_encoder = LabelEncoder(
            [c.label for c in train_contexts] + [c.label for c in test_contexts]
        )
        train = encoder.encode(train_contexts)
        test = encoder.encode(test_contexts)
        classifier = GRUClassifier(
            vocab_size=len(encoder.vocabulary),
            num_classes=encoder.label_encoder.num_classes,
            config=GRUClassifierConfig(
                embedding_dim=settings.d_model,
                hidden_size=settings.d_model,
                epochs=settings.gru_epochs,
                batch_size=settings.batch_size,
                seed=settings.seed,
            ),
        )
        classifier.fit(*train)
        return classifier.evaluate(*test)

    def _solve_array(self, data: ArrayTaskData) -> dict[str, float]:
        # Logistic regression over summary statistics of each window: a strong,
        # fast baseline for the dense numeric series.
        return FlowStatsSolver(self.settings)._solve_array(data)


class FlowStatsSolver:
    """Hand-engineered features + logistic regression (the classical approach)."""

    name = "flow-stats"

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, task: NetGLUETask) -> dict[str, float]:
        if task.is_packet_task:
            return self._solve_packets(task.data)
        return self._solve_array(task.data)

    def _solve_packets(self, data: TaskData) -> dict[str, float]:
        train_x, train_y, encoder = self._flow_features(data.train_packets, data.label_key, None)
        test_x, test_y, _ = self._flow_features(data.test_packets, data.label_key, encoder)
        train_x, test_x = standardize_features(train_x, test_x)
        model = LogisticRegression().fit(train_x, train_y)
        predictions = model.predict(test_x)
        return _classification_metrics(test_y, predictions)

    def _flow_features(
        self, packets: list[Packet], label_key: str, encoder: LabelEncoder | None
    ) -> tuple[np.ndarray, np.ndarray, LabelEncoder]:
        table = FlowTable()
        table.extend(packets)
        flows = [f for f in table.flows() if f.label(label_key) is not None]
        features = np.stack([
            np.array(list(flow_statistics(flow).values()), dtype=float) for flow in flows
        ])
        labels = [str(flow.label(label_key)) for flow in flows]
        if encoder is None:
            encoder = LabelEncoder(labels)
        known = [i for i, label in enumerate(labels) if label in encoder.classes]
        features = features[known]
        encoded = encoder.encode([labels[i] for i in known])
        return features, encoded, encoder

    def _solve_array(self, data: ArrayTaskData) -> dict[str, float]:
        def summarize(windows: np.ndarray) -> np.ndarray:
            return np.concatenate(
                [windows.mean(axis=1), windows.std(axis=1), windows.max(axis=1), windows[:, -1, :]],
                axis=1,
            )

        train_x, test_x = standardize_features(
            summarize(data.train_features), summarize(data.test_features)
        )
        model = LogisticRegression().fit(train_x, data.train_targets.astype(np.int64))
        predictions = model.predict(test_x)
        return _classification_metrics(data.test_targets.astype(np.int64), predictions)
