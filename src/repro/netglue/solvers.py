"""Reference solvers for NetGLUE tasks.

Two families are provided, matching the comparison the paper implies:

* :class:`FoundationModelSolver` — one foundation model pre-trained on the
  pooled unlabeled traffic of all packet tasks, then fine-tuned per task.
* :class:`GRUSolver` and :class:`FlowStatsSolver` — the per-task baselines
  (sequence model trained from scratch; hand-engineered flow statistics fed
  to logistic regression).

Array tasks (congestion prediction) are handled by flattening the window into
a feature vector for the classical solver and by a GRU over the time series
for the sequence solvers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..baselines.classical import LogisticRegression, standardize_features
from ..baselines.gru import GRUClassifier, GRUClassifierConfig
from ..context.builders import ContextBuilder, FlowContextBuilder, encode_contexts
from ..core.config import NetFMConfig
from ..core.finetuning import FinetuneConfig, LabelEncoder, SequenceClassifier
from ..core.model import NetFoundationModel
from ..core.pretraining import Pretrainer, PretrainingConfig
from ..net.columns import PacketColumns
from ..net.flow_columns import FlowStatsColumns
from ..net.packet import Packet
from ..nn.metrics import accuracy, macro_f1, weighted_f1
from ..tasks.builders import ArrayTaskData, TaskData
from ..tokenize.field_aware import FieldAwareTokenizer
from ..tokenize.vocab import SPECIAL_TOKENS, Vocabulary
from .benchmark import NetGLUETask

__all__ = ["SolverSettings", "FoundationModelSolver", "GRUSolver", "FlowStatsSolver"]


@dataclasses.dataclass
class SolverSettings:
    """Shared knobs controlling how much compute the solvers spend."""

    max_tokens: int = 64
    max_train_contexts: int = 400
    max_eval_contexts: int = 400
    pretrain_epochs: int = 2
    finetune_epochs: int = 3
    gru_epochs: int = 4
    batch_size: int = 16
    d_model: int = 32
    num_layers: int = 2
    seed: int = 0
    #: Use the packed-batch fast path for pre-training and fine-tuning.
    packed: bool = True


def _classification_metrics(labels: np.ndarray, predictions: np.ndarray) -> dict[str, float]:
    num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
    return {
        "accuracy": accuracy(labels, predictions),
        "f1": weighted_f1(labels, predictions, num_classes),
        "macro_f1": macro_f1(labels, predictions, num_classes),
    }


def _subsample(items: list, limit: int, rng: np.random.Generator) -> list:
    if len(items) <= limit:
        return items
    indices = rng.choice(len(items), size=limit, replace=False)
    return [items[i] for i in sorted(indices)]


class _GrowingVocabulary(Vocabulary):
    """A vocabulary that registers unknown tokens instead of mapping to UNK.

    Used to encode flow contexts columnar *before* the task vocabulary
    exists: the encode pass discovers the realized token inventory, whose
    counts then rebuild the exact frequency-ordered ``Vocabulary.build``
    result (see :meth:`_PacketTaskEncoder.encode_train_columns`).
    """

    def token_to_id(self, token: str) -> int:
        return self._add(token)


class _PacketTaskEncoder:
    """Shared tokenize -> group -> encode machinery for packet tasks.

    Packet tasks arrive as :class:`~repro.net.columns.PacketColumns`; the
    columnar entry points below reproduce the object pipeline (build flow
    contexts, drop unlabelled ones, subsample, build the vocabulary from the
    sampled training contexts, encode) bit-for-bit without materializing
    packets or :class:`~repro.context.builders.Context` objects.
    """

    def __init__(self, settings: SolverSettings, label_key: str):
        self.settings = settings
        self.tokenizer = FieldAwareTokenizer()
        self.builder: ContextBuilder = FlowContextBuilder(
            max_tokens=settings.max_tokens, label_key=label_key
        )
        self.vocabulary: Vocabulary | None = None
        self.label_encoder: LabelEncoder | None = None

    def contexts(self, packets: list[Packet], limit: int, rng: np.random.Generator):
        contexts = [c for c in self.builder.build(packets, self.tokenizer) if c.label is not None]
        return _subsample(contexts, limit, rng)

    def encode(self, contexts) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ids, mask = encode_contexts(contexts, self.vocabulary, self.settings.max_tokens)
        labels = self.label_encoder.encode([c.label for c in contexts])
        return ids, mask, labels

    # ------------------------------------------------------------------
    # Columnar path
    # ------------------------------------------------------------------
    def _sampled_contexts(
        self,
        columns,
        vocabulary: Vocabulary,
        limit: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, list]:
        """Encode flow contexts, drop unlabelled ones, subsample to ``limit``."""
        ids, mask, labels = self.builder.encode_columns(
            columns, self.tokenizer, vocabulary, return_labels=True
        )
        keep = np.flatnonzero([label is not None for label in labels])
        if len(keep) > limit:
            keep = keep[np.sort(rng.choice(len(keep), size=limit, replace=False))]
        return ids[keep], mask[keep], [labels[i] for i in keep.tolist()]

    def encode_train_columns(
        self, columns, limit: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, list]:
        """Encode the training split and derive ``self.vocabulary`` from it.

        The contexts are first encoded against a growing vocabulary (ids in
        discovery order), then re-mapped onto the frequency-ordered
        vocabulary that ``Vocabulary.build`` would produce over the sampled
        contexts' token lists — so downstream ids match the object path
        exactly.
        """
        growing = _GrowingVocabulary()
        ids, mask, labels = self._sampled_contexts(columns, growing, limit, rng)
        counts = np.bincount(ids[mask], minlength=len(growing))
        tokens = growing.tokens()
        specials = set(SPECIAL_TOKENS)
        realized = [
            (tokens[i], int(count))
            for i, count in enumerate(counts)
            if count > 0 and tokens[i] not in specials
        ]
        realized.sort(key=lambda kv: (-kv[1], kv[0]))
        self.vocabulary = Vocabulary(token for token, _ in realized)
        remap = np.fromiter(
            (self.vocabulary.token_to_id(t) for t in tokens), np.int64, len(tokens)
        )
        return remap[ids], mask, labels

    def encode_eval_columns(
        self, columns, limit: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, list]:
        """Encode the evaluation split against the (fixed) task vocabulary."""
        return self._sampled_contexts(columns, self.vocabulary, limit, rng)


class FoundationModelSolver:
    """Pre-train once on pooled unlabeled traffic, fine-tune per task."""

    name = "foundation-model"

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, task: NetGLUETask) -> dict[str, float]:
        if task.is_packet_task:
            return self._solve_packets(task.data)
        return self._solve_array(task.data)

    # ------------------------------------------------------------------
    def _solve_packets(self, data: TaskData) -> dict[str, float]:
        settings = self.settings
        rng = np.random.default_rng(settings.seed)
        encoder = _PacketTaskEncoder(settings, data.label_key)
        train_ids, train_mask, train_labels = encoder.encode_train_columns(
            data.train_columns, settings.max_train_contexts, rng
        )
        test_ids, test_mask, test_labels = encoder.encode_eval_columns(
            data.test_columns, settings.max_eval_contexts, rng
        )
        encoder.label_encoder = LabelEncoder(train_labels + test_labels)

        config = NetFMConfig(
            vocab_size=len(encoder.vocabulary),
            d_model=settings.d_model,
            num_layers=settings.num_layers,
            num_heads=4,
            d_ff=settings.d_model * 2,
            max_len=settings.max_tokens,
            dropout=0.0,
            seed=settings.seed,
        )
        model = NetFoundationModel(config)
        pretrainer = Pretrainer(
            model,
            encoder.vocabulary,
            PretrainingConfig(
                epochs=settings.pretrain_epochs,
                batch_size=settings.batch_size,
                seed=settings.seed,
                packed=settings.packed,
            ),
        )
        pretrainer.pretrain_encoded(train_ids, train_mask)

        classifier = SequenceClassifier(
            model,
            encoder.label_encoder.num_classes,
            FinetuneConfig(
                epochs=settings.finetune_epochs,
                batch_size=settings.batch_size,
                seed=settings.seed,
                packed=settings.packed,
            ),
        )
        classifier.fit(train_ids, train_mask, encoder.label_encoder.encode(train_labels))
        return classifier.evaluate(
            test_ids, test_mask, encoder.label_encoder.encode(test_labels)
        )

    # ------------------------------------------------------------------
    def _solve_array(self, data: ArrayTaskData) -> dict[str, float]:
        # Windowed time series: GRU over the raw window (the transformer
        # offers no pre-training signal for dense numeric series, so the
        # sequence model plays the foundation-model role here).
        solver = GRUSolver(self.settings)
        return solver._solve_array(data)


class GRUSolver:
    """GRU trained from scratch per task (random embeddings)."""

    name = "gru"

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, task: NetGLUETask) -> dict[str, float]:
        if task.is_packet_task:
            return self._solve_packets(task.data)
        return self._solve_array(task.data)

    def _solve_packets(self, data: TaskData) -> dict[str, float]:
        settings = self.settings
        rng = np.random.default_rng(settings.seed)
        encoder = _PacketTaskEncoder(settings, data.label_key)
        train_ids, train_mask, train_labels = encoder.encode_train_columns(
            data.train_columns, settings.max_train_contexts, rng
        )
        test_ids, test_mask, test_labels = encoder.encode_eval_columns(
            data.test_columns, settings.max_eval_contexts, rng
        )
        encoder.label_encoder = LabelEncoder(train_labels + test_labels)
        classifier = GRUClassifier(
            vocab_size=len(encoder.vocabulary),
            num_classes=encoder.label_encoder.num_classes,
            config=GRUClassifierConfig(
                embedding_dim=settings.d_model,
                hidden_size=settings.d_model,
                epochs=settings.gru_epochs,
                batch_size=settings.batch_size,
                seed=settings.seed,
            ),
        )
        classifier.fit(train_ids, train_mask, encoder.label_encoder.encode(train_labels))
        return classifier.evaluate(
            test_ids, test_mask, encoder.label_encoder.encode(test_labels)
        )

    def _solve_array(self, data: ArrayTaskData) -> dict[str, float]:
        # Logistic regression over summary statistics of each window: a strong,
        # fast baseline for the dense numeric series.
        return FlowStatsSolver(self.settings)._solve_array(data)


class FlowStatsSolver:
    """Hand-engineered features + logistic regression (the classical approach)."""

    name = "flow-stats"

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, task: NetGLUETask) -> dict[str, float]:
        if task.is_packet_task:
            return self._solve_packets(task.data)
        return self._solve_array(task.data)

    def _solve_packets(self, data: TaskData) -> dict[str, float]:
        train_x, train_y, encoder = self._flow_features(data.train_columns, data.label_key, None)
        test_x, test_y, _ = self._flow_features(data.test_columns, data.label_key, encoder)
        train_x, test_x = standardize_features(train_x, test_x)
        model = LogisticRegression().fit(train_x, train_y)
        predictions = model.predict(test_x)
        return _classification_metrics(test_y, predictions)

    def _flow_features(
        self,
        trace: "PacketColumns | list[Packet]",
        label_key: str,
        encoder: LabelEncoder | None,
    ) -> tuple[np.ndarray, np.ndarray, LabelEncoder]:
        """Per-flow feature matrix + encoded labels, columns-first.

        Accepts a :class:`PacketColumns` batch (the fast path the task
        builders provide) or a packet list (converted once); the flow table,
        per-flow statistics and majority labels are computed columnar with
        features and flow order bit-identical to the object pipeline.
        """
        if not isinstance(trace, PacketColumns):
            trace = PacketColumns.from_packets(trace)
        stats = FlowStatsColumns.from_columns(trace)
        flow_labels = stats.labels(trace, label_key)
        keep = [i for i, label in enumerate(flow_labels) if label is not None]
        features = stats.features[keep]
        labels = [str(flow_labels[i]) for i in keep]
        if encoder is None:
            encoder = LabelEncoder(labels)
        known = [i for i, label in enumerate(labels) if label in encoder.classes]
        features = features[known]
        encoded = encoder.encode([labels[i] for i in known])
        return features, encoded, encoder

    def _solve_array(self, data: ArrayTaskData) -> dict[str, float]:
        def summarize(windows: np.ndarray) -> np.ndarray:
            return np.concatenate(
                [windows.mean(axis=1), windows.std(axis=1), windows.max(axis=1), windows[:, -1, :]],
                axis=1,
            )

        train_x, test_x = standardize_features(
            summarize(data.train_features), summarize(data.test_features)
        )
        model = LogisticRegression().fit(train_x, data.train_targets.astype(np.int64))
        predictions = model.predict(test_x)
        return _classification_metrics(data.test_targets.astype(np.int64), predictions)
