"""Micro-batched model serving with a prediction cache and backpressure.

One flow at a time, a transformer forward wastes almost all of its time on
per-call overhead; the :class:`InferenceEngine` therefore *micro-batches*:
closed flows accumulate in length buckets and are run through one
eval-mode forward per bucket, trimmed to the bucket's longest real row (the
packed-batch discipline of PR 1).  Rows are computed independently, so the
engine is deterministic in the record sequence — streaming the same trace
through any chunking produces bit-identical logits — and its class
predictions match the offline batched solver path (whose fixed-width
forward can differ from a trimmed one only in the last ulp of the logits).

Repeated traffic is cheaper still: a :class:`PredictionCache` keyed by the
encoded context (:attr:`~repro.serve.assembler.FlowRecord.cache_key` — the
serving twin of the PR 4 wire-byte decode-cache discipline) returns the
stored logits for flows the model has already seen, without any forward at
all.  A bounded pending queue provides backpressure: when more flows are
waiting than ``max_pending``, the engine drains buckets synchronously
instead of queueing without limit.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

import numpy as np

from ..nn.numeric import numeric_policy
from .assembler import FlowRecord
from .report import ServingReport

__all__ = ["PredictionCache", "FlowPrediction", "InferenceEngine", "serve_stream"]


def _numeric_policy(dtype: str) -> str:
    """The policy identifier for a build dtype; ``"unknown"`` off-policy."""
    try:
        return numeric_policy(dtype)
    except (TypeError, ValueError):
        return "unknown"


class PredictionCache:
    """Bounded LRU cache from encoded contexts to logits.

    Keys are :attr:`FlowRecord.cache_key` byte strings — the exact model
    input — so a hit returns logits identical to the forward pass it
    replaces, and flows differing only in tokenizer-invisible bytes (DNS
    transaction ids, TLS randoms: PR 4's cache-exempt bytes) share one
    entry.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> "np.ndarray | None":
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.copy()

    def put(self, key: bytes, logits: np.ndarray) -> None:
        # Stored and returned values are copies: entries must stay equal to
        # the forward pass they replace even if a consumer mutates a served
        # prediction's logits in place (which would otherwise write through
        # the shared batch array).
        self._entries[key] = np.array(logits, copy=True)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclasses.dataclass
class FlowPrediction:
    """One served flow: its record, logits and serving provenance."""

    record: FlowRecord
    logits: np.ndarray
    cached: bool
    latency: float  # seconds from submit to completion
    #: True when the logits are a degrade-policy fallback, not model output.
    degraded: bool = False

    @property
    def class_id(self) -> int:
        """The predicted class (argmax over logits)."""
        return int(np.argmax(self.logits))

    @property
    def probabilities(self) -> np.ndarray:
        """Softmax over the logits."""
        shifted = self.logits - self.logits.max()
        exp = np.exp(shifted)
        return exp / exp.sum()


class InferenceEngine:
    """Length-bucketed micro-batching over a classifier's eval-mode forward.

    Parameters
    ----------
    classifier:
        Any model with a ``predict_logits(token_ids, attention_mask,
        batch_size) -> np.ndarray`` method —
        :class:`~repro.core.finetuning.SequenceClassifier` (the foundation
        model's fine-tuned head, as served for the NetGLUE packet tasks) is
        the canonical one.
    batch_size:
        Target micro-batch size; a bucket reaching it is run immediately.
    max_pending:
        Backpressure bound: after every submission the engine drains the
        fullest buckets until at most this many flows are pending.
    cache:
        A :class:`PredictionCache`, or ``None`` to disable caching (the
        benchmark's gated configuration, so the measured speedup is pure
        micro-batching).
    bucket_rounding:
        Flows are bucketed by context length rounded up to this multiple;
        each bucket's forward is trimmed to its longest real row (exact
        under masking), so short flows never pay full-width compute.  The
        default of 1 buckets by *exact* length: every row in such a batch
        has zero padding, which lets the forward skip attention masking
        entirely — bit-identical (no position is masked) and measurably
        faster, since the mask materializes ``(batch, heads, seq, seq)``
        temporaries.
    serve_dtype:
        ``None`` (default) serves the classifier as built.  ``"float32"``
        builds a float32 serving replica up front (via the classifier's
        ``serving_build``) and serves that: the accelerated packed-gemm
        path under the documented-ulp policy of :mod:`repro.nn.numeric`.
    tracer:
        Optional :class:`repro.obs.trace.TraceRecorder`.  When set, every
        served flow gets a ``batched`` span (submit until its micro-batch
        ran: queue wait), an ``inferred`` span (the model forward, shared
        start/end across the batch) and an ``emitted`` event; cache hits
        get ``cache_hit`` + ``emitted`` events instead.  Tracing observes
        only — predictions, logits and cache contents are bit-identical
        with or without it — and ``None`` (the default) leaves the serving
        path unchanged.

    Cache keys are namespaced by the model build dtype: an engine caches
    and looks up under ``b"<dtype>:" + record.cache_key``, so a float32 and
    a float64 engine sharing one :class:`PredictionCache` (or one
    checkpoint) can never serve each other's logits — a hit is always the
    same dtype, same numeric policy as the forward it replaced.
    """

    def __init__(
        self,
        classifier,
        batch_size: int = 32,
        max_pending: int = 256,
        cache: "PredictionCache | None" = None,
        bucket_rounding: int = 1,
        lock=None,
        serve_dtype: "str | None" = None,
        tracer=None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if max_pending < batch_size:
            raise ValueError("max_pending must be at least batch_size")
        if bucket_rounding <= 0:
            raise ValueError("bucket_rounding must be positive")
        if serve_dtype is not None and serve_dtype != getattr(
            classifier, "model_dtype", "float64"
        ):
            build = getattr(classifier, "serving_build", None)
            if build is None:
                raise ValueError(
                    f"classifier cannot be rebuilt in {serve_dtype!r}: "
                    "it has no serving_build()"
                )
            classifier = build(serve_dtype)
        self.classifier = classifier
        self.batch_size = batch_size
        self.max_pending = max_pending
        self.cache = cache
        self.bucket_rounding = bucket_rounding
        # Optional forward lock: the fabric's replicate_model=False mode
        # shares one classifier across worker engines, and the autograd
        # stack's eval/train mode is shared state — the lock serializes the
        # forwards so a worker can never flip a sibling mid-batch.
        self.lock = lock
        # Optional output guard (resilience): called as guard(record, row)
        # for every non-finite logits row before the batch is emitted;
        # returns "drop"/"degrade" or raises, per policy.
        self.output_guard = None
        self.tracer = tracer
        #: Optional label the fabric stamps on this engine's trace events
        #: (its worker name), so a merged trace attributes work to workers.
        self.trace_worker: "str | None" = None
        self._completed_backlog: list[FlowPrediction] = []
        # Bucket entries are (record, submitted, trace_submit): the report
        # timestamp and, when tracing, the tracer-clock submit time the
        # ``batched`` (queue-wait) span starts from.
        self._buckets: dict[int, list[tuple[FlowRecord, float, float]]] = {}
        self._pending = 0
        # Cache-key namespace: the build dtype is part of every key (see
        # class docstring).  Fixed at construction — serving builds cast
        # once at load and never change dtype afterwards.
        self._cache_prefix = (self.model_dtype + ":").encode("ascii")
        self.report = ServingReport()
        self.report.model_dtype = self.model_dtype
        self.report.numeric_policy = _numeric_policy(self.model_dtype)

    def clone(self, classifier=None, lock=None) -> "InferenceEngine":
        """A fresh engine with this one's configuration and empty state.

        The fabric builds its per-worker engines this way: same batch size,
        backpressure bound and bucket rounding, but an independent bucket
        map, report, and — when the template carried a cache — a fresh
        :class:`PredictionCache` shard of the same capacity (per-worker
        caches are never shared, so no cache locking is needed and hits
        stay bit-identical to the forward they replace).
        """
        return InferenceEngine(
            classifier if classifier is not None else self.classifier,
            batch_size=self.batch_size,
            max_pending=self.max_pending,
            cache=(
                None if self.cache is None
                else PredictionCache(max_entries=self.cache.max_entries)
            ),
            bucket_rounding=self.bucket_rounding,
            lock=lock,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def model_dtype(self) -> str:
        """The served model's build dtype (``"float64"`` / ``"float32"``)."""
        return getattr(self.classifier, "model_dtype", "float64")

    def cache_key_for(self, record: FlowRecord) -> bytes:
        """The dtype-namespaced cache key this engine stores ``record`` under."""
        return self._cache_prefix + record.cache_key

    @property
    def pending(self) -> int:
        """Flows submitted but not yet run through the model."""
        return self._pending

    def summary(self) -> dict:
        """The serving scorecard (see :meth:`ServingReport.summary`)."""
        return self.report.summary(cache=self.cache)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, record: FlowRecord) -> list[FlowPrediction]:
        """Enqueue one closed flow; return any predictions completed now.

        A cache hit completes immediately.  A miss joins its length bucket;
        buckets reaching ``batch_size`` run at once, and the backpressure
        bound then drains the fullest buckets until at most ``max_pending``
        flows wait.  Completions of *other* flows can therefore be returned
        by a submission — consume the returned list every call.
        """
        submitted = self.report.mark_submit()
        tracer = self.tracer
        trace_submit = tracer.clock() if tracer is not None else 0.0
        completed: list[FlowPrediction] = []
        if self.cache is not None:
            logits = self.cache.get(self.cache_key_for(record))
            if logits is not None:
                prediction = FlowPrediction(
                    record=record,
                    logits=logits,
                    cached=True,
                    latency=self.report.mark_submit() - submitted,
                )
                self.report.observe(prediction)
                if tracer is not None:
                    t = tracer.clock()
                    tracer.annotate(
                        record.key, record.generation, "cache_hit", t=t,
                    )
                    self._annotate_emitted(record, t, cached=True)
                return [prediction]
        width = len(record)
        bucket = -(-width // self.bucket_rounding) * self.bucket_rounding
        queue = self._buckets.setdefault(bucket, [])
        queue.append((record, submitted, trace_submit))
        self._pending += 1
        try:
            if len(queue) >= self.batch_size:
                completed.extend(self._run_bucket(bucket))
            while self._pending > self.max_pending:
                fullest = max(self._buckets, key=lambda b: len(self._buckets[b]))
                completed.extend(self._run_bucket(fullest))
        except BaseException:
            # Earlier buckets in this call already emitted (observed, cached)
            # but their predictions were never returned; park them so the
            # supervisor's recovery can still deliver each exactly once.
            self._completed_backlog.extend(completed)
            raise
        return completed

    def flush(self) -> list[FlowPrediction]:
        """Run every pending bucket (shortest first); return the predictions."""
        completed: list[FlowPrediction] = []
        try:
            for bucket in sorted(self._buckets):
                completed.extend(self._run_bucket(bucket))
        except BaseException:
            self._completed_backlog.extend(completed)
            raise
        return completed

    def drain_completed(self) -> list[FlowPrediction]:
        """Predictions completed inside a call that then raised.

        A multi-bucket ``submit``/``flush`` may crash after some buckets
        already ran; those buckets' predictions were observed and cached but
        never returned to the caller.  They are parked here — the worker
        supervisor collects them during recovery so every record is still
        served exactly once.
        """
        backlog = self._completed_backlog
        self._completed_backlog = []
        return backlog

    def drain_pending(self) -> list[FlowRecord]:
        """Remove and return every pending record without running the model.

        The worker supervisor's replay path: after a forward crash the
        bucket state is intact (see :meth:`_run_bucket`), so draining yields
        exactly the in-flight records, which a fresh engine can re-submit —
        no record lost, none served twice.  Deterministic order (bucket
        width, then submission order within the bucket).
        """
        pending: list[FlowRecord] = []
        for bucket in sorted(self._buckets):
            pending.extend(record for record, _, _ in self._buckets[bucket])
        self._buckets.clear()
        self._pending = 0
        return pending

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _annotate_emitted(self, record, t: float, **attrs) -> None:
        if self.trace_worker is not None:
            attrs["worker"] = self.trace_worker
        self.tracer.annotate(
            record.key, record.generation, "emitted", t=t, **attrs
        )

    def _run_bucket(self, bucket: int) -> list[FlowPrediction]:
        queue = self._buckets.pop(bucket, [])
        if not queue:
            return []
        records = [record for record, _, _ in queue]
        width = max(len(record) for record in records)
        ids = np.stack([record.token_ids[:width] for record in records])
        mask = np.stack([record.attention_mask[:width] for record in records])
        # Batch invariance (a lone row's logits matching the same row inside
        # any batch) is guaranteed by the classifier's eval fast path, which
        # runs singleton chunks as a duplicated pair at the kernel layer —
        # the engine no longer needs to duplicate rows itself.
        # Exact-length buckets carry no padding, so attention needs no mask
        # at all — skipping it is bit-identical and skips the (batch, heads,
        # seq, seq) mask temporaries, the forward's largest arrays.
        tracer = self.tracer
        try:
            t_forward = tracer.clock() if tracer is not None else 0.0
            if self.lock is not None:
                with self.lock:
                    logits = self.classifier.predict_logits(
                        ids, None if mask.all() else mask, batch_size=len(ids)
                    )
            else:
                logits = self.classifier.predict_logits(
                    ids, None if mask.all() else mask, batch_size=len(ids)
                )
            t_done = tracer.clock() if tracer is not None else 0.0
            # Poisoned-output scan happens before any row is cached or
            # emitted, so a fail_fast guard raise leaves the whole batch
            # replayable exactly like a forward crash.
            actions: dict[int, str] = {}
            if self.output_guard is not None:
                finite = np.isfinite(logits).all(axis=1)
                for j in np.flatnonzero(~finite):
                    actions[int(j)] = self.output_guard(
                        records[int(j)], logits[int(j)]
                    )
        except BaseException:
            # Crash before any emission: restore the bucket untouched so a
            # supervisor can drain_pending() and replay these records on a
            # rebuilt engine — nothing was cached, observed, or returned.
            self._buckets[bucket] = queue
            raise
        self._pending -= len(queue)
        self.report.observe_batch(len(records))
        done = self.report.mark_submit()
        predictions = []
        for j, ((record, submitted, trace_submit), row) in enumerate(
            zip(queue, logits)
        ):
            action = actions.get(j)
            if action == "drop":
                continue
            degraded = action == "degrade"
            if degraded:
                row = np.zeros_like(row)
            prediction = FlowPrediction(
                record=record, logits=row, cached=False,
                latency=done - submitted, degraded=degraded,
            )
            # Never cache fallback logits: a later identical flow must get a
            # real forward, not a poisoned hit.
            if self.cache is not None and not degraded:
                self.cache.put(self.cache_key_for(record), row)
            self.report.observe(prediction)
            if tracer is not None:
                tracer.record_span(
                    record.key, record.generation, "batched",
                    trace_submit, t_forward, batch=len(records),
                )
                tracer.record_span(
                    record.key, record.generation, "inferred",
                    t_forward, t_done, batch=len(records),
                )
                self._annotate_emitted(
                    record, t_done, cached=False, degraded=degraded,
                )
            predictions.append(prediction)
        return predictions


def serve_stream(
    source,
    assembler,
    engine,
    workers: "int | None" = None,
    *,
    policy: str = "fail_fast",
    fault_plan=None,
    dead_letters=None,
    max_restarts: int = 0,
    restart_backoff: float = 0.05,
    **fabric_options,
):
    """Drive ``source -> assembler -> engine``; yield every prediction once.

    With ``workers=None`` (the default) the stages run synchronously in the
    calling thread: chunks stream from the source, the assembler closes
    flows (by timeout mid-stream, and the remainder at end of stream), and
    the engine micro-batches the closed flows through the model, in order.

    With ``workers=k`` the same stages run as the concurrent
    :class:`~repro.serve.fabric.ServingFabric`: a source thread, a
    hash-sharded assembly stage and ``k`` inference workers with per-worker
    cache shards, connected by bounded queues.  The served multiset of
    records and logits is bit-identical to the synchronous path for any
    chunk size and worker count; only arrival order is
    scheduling-dependent.  Extra ``fabric_options`` (``shards``,
    ``chunk_queue``, ``record_queue``, ``output_queue``,
    ``replicate_model``, ``stall_timeout``) are passed through.

    Resilience (see :mod:`repro.serve.resilience`): ``policy`` selects the
    per-stage error policy (``"fail_fast"`` — today's behavior and the
    default — ``"quarantine"`` or ``"degrade"``), ``fault_plan`` arms a
    seeded :class:`~repro.serve.faults.FaultPlan`, ``dead_letters`` supplies
    a :class:`~repro.serve.resilience.DeadLetterQueue` to collect drop
    provenance, and ``max_restarts``/``restart_backoff`` configure the
    worker supervisor.  With every knob at its default the synchronous path
    is the exact legacy loop (zero overhead, unchanged semantics).
    """
    if workers is not None:
        from .fabric import ServingFabric

        yield from ServingFabric(
            source, assembler, engine, workers=workers,
            policy=policy, fault_plan=fault_plan, dead_letters=dead_letters,
            max_restarts=max_restarts, restart_backoff=restart_backoff,
            **fabric_options,
        )
        return
    if (
        policy == "fail_fast"
        and fault_plan is None
        and dead_letters is None
        and max_restarts == 0
    ):
        for chunk in source:
            for record in assembler.push(chunk):
                yield from engine.submit(record)
        for record in assembler.flush():
            yield from engine.submit(record)
        yield from engine.flush()
        return
    from .resilience import resilient_serve

    yield from resilient_serve(
        source, assembler, engine,
        policy=policy, fault_plan=fault_plan, dead_letters=dead_letters,
        max_restarts=max_restarts, restart_backoff=restart_backoff,
    )
