"""Deterministic, seeded fault injection for the serving stack.

A :class:`FaultPlan` is a schedule of :class:`FaultSpec` entries, each naming
a *site* (``source``, ``assembly``, ``forward``, ``logits``), the ordinal at
which it fires at that site, and what it does there (raise, corrupt a chunk,
stall, poison logits with NaN).  The plan is consulted by thin wrappers —
:func:`wrap_source` around a chunk iterator and :func:`wrap_classifier`
around a ``SequenceClassifier`` — so the production pipeline code never has
to know whether faults are armed.  Everything is counter-based and seeded,
which makes chaos runs exactly reproducible: the same plan against the same
stream fires the same faults at the same records every time.

Plans are shared-state objects (one plan may be consulted from several
fabric threads), so the ordinal counters live behind a lock, and classifier
wrappers share the plan across ``deepcopy`` (per-worker engine clones all
consult the same schedule).
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "ServingFaultError",
    "SourceFaultError",
    "AssemblyFaultError",
    "EngineCrashError",
    "wrap_source",
    "wrap_classifier",
]

#: Sites a fault can target, in pipeline order.
FAULT_SITES = ("source", "assembly", "forward", "logits")

#: What a fault does when it fires, per site.
FAULT_KINDS = {
    "source": ("raise", "corrupt", "stall"),
    "assembly": ("raise",),
    "forward": ("raise",),
    "logits": ("nan",),
}


class ServingFaultError(RuntimeError):
    """Base class for every injected fault (lets tests catch them all)."""


class SourceFaultError(ServingFaultError):
    """Injected failure while reading a source chunk.

    Carries the chunk that was being produced (``.chunk``) so resilience
    policies can account for the packets that were lost with it.
    """

    def __init__(self, message: str, chunk=None, chunk_index: int = -1):
        super().__init__(message)
        self.chunk = chunk
        self.chunk_index = chunk_index


class AssemblyFaultError(ServingFaultError):
    """Injected failure inside flow assembly."""


class EngineCrashError(ServingFaultError):
    """Injected crash in a worker's model forward."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``count`` times starting at ``index``.

    ``site``  — one of :data:`FAULT_SITES`.
    ``index`` — 0-based ordinal of the site event the fault first fires on
                (chunk number for ``source``/``assembly``, forward-call
                number for ``forward``/``logits``).
    ``kind``  — site-specific action (see :data:`FAULT_KINDS`).
    ``count`` — how many consecutive ordinals the fault covers.
    ``delay`` — for ``stall`` faults, seconds to sleep before delivering.
    """

    site: str
    index: int
    kind: str
    count: int = 1
    delay: float = 0.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.kind not in FAULT_KINDS[self.site]:
            raise ValueError(
                f"kind {self.kind!r} not valid for site {self.site!r} "
                f"(choose from {FAULT_KINDS[self.site]})"
            )
        if self.index < 0 or self.count < 1:
            raise ValueError("index must be >= 0 and count >= 1")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, consulted by ordinal per site."""

    specs: tuple = ()
    #: Record of (site, ordinal, spec) triples that actually fired.
    fired: list = field(default_factory=list)

    def __post_init__(self):
        self.specs = tuple(self.specs)
        self._counters = {site: 0 for site in FAULT_SITES}
        self._lock = threading.Lock()

    def take(self, site: str):
        """Advance ``site``'s ordinal; return the matching spec or ``None``."""
        with self._lock:
            ordinal = self._counters[site]
            self._counters[site] = ordinal + 1
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.index <= ordinal < spec.index + spec.count:
                    self.fired.append((site, ordinal, spec))
                    return spec
        return None

    def reset(self):
        """Rewind all ordinal counters (reuse one plan across runs)."""
        with self._lock:
            self._counters = {site: 0 for site in FAULT_SITES}
            self.fired.clear()

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        faults: int = 3,
        max_index: int = 12,
        sites=FAULT_SITES,
    ) -> "FaultPlan":
        """A seeded plan of ``faults`` random specs — the chaos-sweep entry."""
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(faults):
            site = str(rng.choice(list(sites)))
            kinds = [k for k in FAULT_KINDS[site] if k != "stall"]
            specs.append(
                FaultSpec(
                    site=site,
                    index=int(rng.integers(0, max_index)),
                    kind=str(rng.choice(kinds)),
                )
            )
        return cls(specs=tuple(specs))


def _corrupt_chunk(chunk, seed: int = 0):
    """A corrupted *copy* of ``chunk`` (never mutates shared column arrays).

    Scrambles payload lengths past the token matrix and zeroes timestamps on
    a few rows — the kind of damage a truncated or bit-flipped capture
    produces, and exactly what ``AssemblyGuard`` validation is meant to trap.
    """
    n = len(chunk)
    bad = chunk[np.arange(n)]  # fancy-index select materializes a copy
    rng = np.random.default_rng(seed)
    rows = rng.choice(n, size=max(1, n // 4), replace=False)
    lengths = bad.payload_lengths.copy()
    lengths[rows] = 10**9  # way past any payload matrix width
    bad.payload_lengths = lengths
    # NaN the earliest row's timestamp, never the latest: quarantine uses
    # the chunk's (nan-)max timestamp as the lost chunk's clock, and that
    # must match the clean chunk's for surviving flows' eviction parity.
    times = bad.timestamps.copy()
    times[int(np.argmin(times))] = np.nan
    bad.timestamps = times
    return bad


class _FaultySource:
    """Iterator wrapper that consults the plan once per produced chunk.

    Resumable: raising does not consume the underlying iterator's next
    chunk, so a ``quarantine`` policy can keep pulling after a failure.
    """

    def __init__(self, source, plan: FaultPlan):
        self._inner = iter(source)
        self._plan = plan
        self._index = -1

    def __iter__(self):
        return self

    def __next__(self):
        chunk = next(self._inner)
        self._index += 1
        spec = self._plan.take("source")
        if spec is None:
            return chunk
        if spec.kind == "stall":
            time.sleep(spec.delay)
            return chunk
        if spec.kind == "corrupt":
            return _corrupt_chunk(chunk, seed=spec.index)
        raise SourceFaultError(
            f"injected source failure at chunk {self._index}",
            chunk=chunk,
            chunk_index=self._index,
        )


def wrap_source(source, plan: "FaultPlan | None"):
    """Wrap a chunk iterator so the plan's ``source`` faults fire on it."""
    if plan is None:
        return source
    return _FaultySource(source, plan)


class FaultInjectedClassifier:
    """Classifier proxy that consults ``forward``/``logits`` faults.

    ``deepcopy`` (per-worker engine clones) copies the inner classifier but
    *shares* the plan, so a multi-worker fabric still fires each scheduled
    fault exactly once across the pool.
    """

    def __init__(self, classifier, plan: FaultPlan):
        self._classifier = classifier
        self._plan = plan

    def predict_logits(self, token_ids, attention_mask=None, **kwargs):
        spec = self._plan.take("forward")
        if spec is not None:
            raise EngineCrashError(
                f"injected worker crash (forward ordinal {spec.index})"
            )
        logits = self._classifier.predict_logits(
            token_ids, attention_mask, **kwargs
        )
        spec = self._plan.take("logits")
        if spec is not None:
            logits = np.array(logits, copy=True)
            logits[0] = np.nan
        return logits

    def __getattr__(self, name):
        return getattr(self._classifier, name)

    def __deepcopy__(self, memo):
        inner = copy.deepcopy(self._classifier, memo)
        return FaultInjectedClassifier(inner, self._plan)


def wrap_classifier(classifier, plan: "FaultPlan | None"):
    """Wrap a classifier so the plan's forward/logits faults fire on it."""
    if plan is None:
        return classifier
    if isinstance(classifier, FaultInjectedClassifier):
        return classifier
    return FaultInjectedClassifier(classifier, plan)
