"""Serving accounting: throughput, latency percentiles, batch shapes.

The :class:`ServingReport` is the measurement surface the ROADMAP's "serves
heavy traffic" goal is tracked by: every completed prediction is observed
with its submit-to-completion latency, and :meth:`summary` folds the stream
into the numbers ``tools/bench_report.py`` publishes in ``BENCH_e14.json``
(flows/s, packets/s, p50/p99 latency, cache hit rate, batch shapes).

Since the observability layer landed, the report is backed by a
:class:`repro.obs.metrics.MetricsRegistry` rather than raw Python lists:

* **Bounded memory.**  Latency, batch-size and queue-depth series are
  fixed-bucket log-scale histograms — a million observations costs the
  same memory as ten (regression-tested in ``tests/test_obs.py``).
* **Exact merges.**  :meth:`merge` folds fabric workers' reports by
  bucket-wise addition — commutative and associative, so any merge order
  over any worker count yields the identical registry.
* **Same scorecard.**  :meth:`summary` keeps its key shape; counts, sums,
  means and maxima are exact, and the p50/p99 latency estimates carry at
  most one histogram-bucket width (< 9%) of relative error — well inside
  the E14 gates' trailing-margin tolerance, and these percentiles are
  published, not gated.

The raw registry is reachable as :attr:`ServingReport.metrics` (e.g. for
JSON export via ``report.metrics.to_json()``).
"""

from __future__ import annotations

import threading
import time

from ..obs.metrics import MetricsRegistry

__all__ = ["ServingReport"]

#: Resilience counters every report carries (see :meth:`ServingReport.count`).
_COUNTERS = ("errors", "retries", "quarantined", "degraded", "restarts")

#: Latency histogram layout: 100 ns to 1000 s at 8 bins/octave (~270 buckets).
_LATENCY_LAYOUT = (1e-7, 1e3)
#: Size/depth histogram layout: 1 to 65536 at 8 bins/octave (130 buckets);
#: zero depths land in the (exact-count) underflow bucket.
_SIZE_LAYOUT = (1.0, 65536.0)


class ServingReport:
    """Accumulates per-prediction latencies and stream counters."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram("serve.latency_s", *_LATENCY_LAYOUT)
        self._batch = self.metrics.histogram("serve.batch_size", *_SIZE_LAYOUT)
        self._flows = self.metrics.counter("serve.flows")
        self._packets = self.metrics.counter("serve.packets")
        self._cached = self.metrics.counter("serve.cached")
        for name in _COUNTERS:
            self.metrics.counter(f"serve.resilience.{name}")
        self.workers: dict[str, dict] = {}
        #: Build dtype of the serving model (stamped by the engine at
        #: construction; ``None`` until a report belongs to an engine).
        self.model_dtype: str | None = None
        #: Numeric-policy identifier governing the served logits
        #: (:func:`repro.nn.numeric.numeric_policy` of the build dtype).
        self.numeric_policy: str | None = None
        self._counter_lock = threading.Lock()
        self._first_submit: float | None = None
        self._last_completion: float | None = None

    # ------------------------------------------------------------------
    # Registry views
    # ------------------------------------------------------------------
    @property
    def flows(self) -> int:
        """Completed predictions observed."""
        return int(self._flows.value)

    @property
    def packets(self) -> int:
        """Packets across all observed flows."""
        return int(self._packets.value)

    @property
    def cached(self) -> int:
        """Predictions served from the cache."""
        return int(self._cached.value)

    @property
    def batches(self) -> int:
        """Model forwards observed (micro-batches run)."""
        return int(self._batch.count)

    @property
    def counters(self) -> dict[str, int]:
        """The resilience counters as a plain dict (a snapshot, not a view)."""
        return {
            name: int(self.metrics.get(f"serve.resilience.{name}").value)
            for name in _COUNTERS
        }

    # ------------------------------------------------------------------
    # Observation (driven by the engine)
    # ------------------------------------------------------------------
    def mark_submit(self) -> float:
        """Stamp a submission; returns the timestamp used for its latency."""
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        return now

    def observe(self, prediction) -> None:
        """Record one completed :class:`~repro.serve.engine.FlowPrediction`."""
        self._latency.observe(prediction.latency)
        self._flows.inc()
        self._packets.inc(prediction.record.packet_count)
        if prediction.cached:
            self._cached.inc()
        self._last_completion = time.perf_counter()

    def observe_batch(self, size: int) -> None:
        """Record one model forward of ``size`` stacked flows."""
        self._batch.observe(size)

    def observe_queue_depth(self, stage: str, depth: int) -> None:
        """Sample one inter-stage queue's depth (driven by the fabric).

        Sampled at every enqueue, so the recorded (exact) maxima demonstrate
        the bounded-queue backpressure contract: no stage's queue ever
        exceeds its configured bound, however slow the consumer.
        """
        self.metrics.histogram(
            f"serve.queue_depth.{stage}", *_SIZE_LAYOUT
        ).observe(depth)

    def observe_worker(self, worker: str, stats: dict) -> None:
        """Record one fabric worker's utilization summary."""
        self.workers[worker] = dict(stats)

    def count(self, name: str, n: int = 1) -> None:
        """Bump one resilience counter (``errors``, ``retries``,
        ``quarantined``, ``degraded``, ``restarts``).  Thread-safe: the
        supervisor and fabric stages count on a shared report.
        """
        if name not in _COUNTERS:
            raise ValueError(
                f"unknown counter {name!r} (choose from {_COUNTERS})"
            )
        with self._counter_lock:
            self.metrics.counter(f"serve.resilience.{name}").inc(n)

    def merge(self, other: "ServingReport") -> None:
        """Fold another report (one fabric worker's) into this one.

        Counter merges are sums and histogram merges are bucket-wise sums
        (every report shares the fixed layouts above), so folding N worker
        reports is exact and order-independent.  The dtype/policy stamps
        are adopted from ``other`` when this report has none; a genuine
        conflict (workers serving different builds) surfaces as ``"mixed"``
        rather than silently keeping one side.
        """
        for field in ("model_dtype", "numeric_policy"):
            theirs = getattr(other, field, None)
            if theirs is not None:
                mine = getattr(self, field)
                setattr(self, field, theirs if mine in (None, theirs) else "mixed")
        with self._counter_lock:
            self.metrics.merge(other.metrics)
        self.workers.update(other.workers)
        if other._first_submit is not None and (
            self._first_submit is None or other._first_submit < self._first_submit
        ):
            self._first_submit = other._first_submit
        if other._last_completion is not None and (
            self._last_completion is None
            or other._last_completion > self._last_completion
        ):
            self._last_completion = other._last_completion

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    @property
    def wall_time(self) -> float:
        """Seconds from the first submission to the last completion."""
        if self._first_submit is None or self._last_completion is None:
            return 0.0
        return self._last_completion - self._first_submit

    def summary(self, cache=None) -> dict:
        """The serving scorecard (the ``BENCH_e14.json`` ``serving`` shape).

        ``cache`` is the engine's :class:`~repro.serve.engine.PredictionCache`
        (or ``None``); its hit counters become ``cache_hit_rate``.
        """
        wall = self.wall_time
        flows = self.flows

        def percentile(q: float) -> float:
            if not self._latency.count:
                return 0.0
            return self._latency.percentile(q) * 1000.0

        summary = {
            "flows": flows,
            "packets": self.packets,
            "wall_s": wall,
            "flows_per_s": flows / wall if wall > 0 else 0.0,
            "packets_per_s": self.packets / wall if wall > 0 else 0.0,
            "p50_ms": percentile(50),
            "p99_ms": percentile(99),
            "batches": self.batches,
            "mean_batch": self._batch.mean,
            "cache_hit_rate": cache.hit_rate if cache is not None else None,
            "model_dtype": self.model_dtype,
            "numeric_policy": self.numeric_policy,
            "resilience": self.counters,
        }
        prefix = "serve.queue_depth."
        queues = {
            name[len(prefix):]: hist
            for name, hist in self.metrics.select(prefix).items()
        }
        if queues:
            summary["queues"] = {
                stage: {
                    "samples": hist.count,
                    "mean_depth": hist.mean,
                    "max_depth": int(hist.max),
                }
                for stage, hist in sorted(queues.items())
            }
        if self.workers:
            summary["workers"] = {name: dict(stats) for name, stats in self.workers.items()}
        return summary
