"""Serving accounting: throughput, latency percentiles, batch shapes.

The :class:`ServingReport` is the measurement surface the ROADMAP's "serves
heavy traffic" goal is tracked by: every completed prediction is observed
with its submit-to-completion latency, and :meth:`summary` folds the stream
into the numbers ``tools/bench_report.py`` publishes in ``BENCH_e14.json``
(flows/s, packets/s, p50/p99 latency, cache hit rate, batch shapes).
"""

from __future__ import annotations

import threading
import time

import numpy as np

__all__ = ["ServingReport"]

#: Resilience counters every report carries (see :meth:`ServingReport.count`).
_COUNTERS = ("errors", "retries", "quarantined", "degraded", "restarts")


class ServingReport:
    """Accumulates per-prediction latencies and stream counters."""

    def __init__(self):
        self.latencies: list[float] = []
        self.flows = 0
        self.packets = 0
        self.cached = 0
        self.batch_sizes: list[int] = []
        self.queue_depths: dict[str, list[int]] = {}
        self.workers: dict[str, dict] = {}
        self.counters: dict[str, int] = {name: 0 for name in _COUNTERS}
        #: Build dtype of the serving model (stamped by the engine at
        #: construction; ``None`` until a report belongs to an engine).
        self.model_dtype: str | None = None
        #: Numeric-policy identifier governing the served logits
        #: (:func:`repro.nn.numeric.numeric_policy` of the build dtype).
        self.numeric_policy: str | None = None
        self._counter_lock = threading.Lock()
        self._first_submit: float | None = None
        self._last_completion: float | None = None

    # ------------------------------------------------------------------
    # Observation (driven by the engine)
    # ------------------------------------------------------------------
    def mark_submit(self) -> float:
        """Stamp a submission; returns the timestamp used for its latency."""
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        return now

    def observe(self, prediction) -> None:
        """Record one completed :class:`~repro.serve.engine.FlowPrediction`."""
        self.latencies.append(prediction.latency)
        self.flows += 1
        self.packets += prediction.record.packet_count
        if prediction.cached:
            self.cached += 1
        self._last_completion = time.perf_counter()

    def observe_batch(self, size: int) -> None:
        """Record one model forward of ``size`` stacked flows."""
        self.batch_sizes.append(size)

    def observe_queue_depth(self, stage: str, depth: int) -> None:
        """Sample one inter-stage queue's depth (driven by the fabric).

        Sampled at every enqueue, so the recorded maxima demonstrate the
        bounded-queue backpressure contract: no stage's queue ever exceeds
        its configured bound, however slow the consumer.
        """
        self.queue_depths.setdefault(stage, []).append(int(depth))

    def observe_worker(self, worker: str, stats: dict) -> None:
        """Record one fabric worker's utilization summary."""
        self.workers[worker] = dict(stats)

    def count(self, name: str, n: int = 1) -> None:
        """Bump one resilience counter (``errors``, ``retries``,
        ``quarantined``, ``degraded``, ``restarts``).  Thread-safe: the
        supervisor and fabric stages count on a shared report.
        """
        if name not in self.counters:
            raise ValueError(
                f"unknown counter {name!r} (choose from {_COUNTERS})"
            )
        with self._counter_lock:
            self.counters[name] += n

    def merge(self, other: "ServingReport") -> None:
        """Fold another report (one fabric worker's) into this one.

        The dtype/policy stamps are adopted from ``other`` when this report
        has none; a genuine conflict (workers serving different builds)
        surfaces as ``"mixed"`` rather than silently keeping one side.
        """
        for field in ("model_dtype", "numeric_policy"):
            theirs = getattr(other, field, None)
            if theirs is not None:
                mine = getattr(self, field)
                setattr(self, field, theirs if mine in (None, theirs) else "mixed")
        self.latencies.extend(other.latencies)
        self.flows += other.flows
        self.packets += other.packets
        self.cached += other.cached
        self.batch_sizes.extend(other.batch_sizes)
        for stage, depths in other.queue_depths.items():
            self.queue_depths.setdefault(stage, []).extend(depths)
        self.workers.update(other.workers)
        for name, value in other.counters.items():
            if value:
                self.count(name, value)
        if other._first_submit is not None and (
            self._first_submit is None or other._first_submit < self._first_submit
        ):
            self._first_submit = other._first_submit
        if other._last_completion is not None and (
            self._last_completion is None
            or other._last_completion > self._last_completion
        ):
            self._last_completion = other._last_completion

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    @property
    def wall_time(self) -> float:
        """Seconds from the first submission to the last completion."""
        if self._first_submit is None or self._last_completion is None:
            return 0.0
        return self._last_completion - self._first_submit

    def summary(self, cache=None) -> dict:
        """The serving scorecard (the ``BENCH_e14.json`` ``serving`` shape).

        ``cache`` is the engine's :class:`~repro.serve.engine.PredictionCache`
        (or ``None``); its hit counters become ``cache_hit_rate``.
        """
        wall = self.wall_time
        latencies = np.asarray(self.latencies, dtype=float)

        def percentile(q: float) -> float:
            if not len(latencies):
                return 0.0
            return float(np.percentile(latencies, q) * 1000.0)

        summary = {
            "flows": self.flows,
            "packets": self.packets,
            "wall_s": wall,
            "flows_per_s": self.flows / wall if wall > 0 else 0.0,
            "packets_per_s": self.packets / wall if wall > 0 else 0.0,
            "p50_ms": percentile(50),
            "p99_ms": percentile(99),
            "batches": len(self.batch_sizes),
            "mean_batch": (
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            "cache_hit_rate": cache.hit_rate if cache is not None else None,
            "model_dtype": self.model_dtype,
            "numeric_policy": self.numeric_policy,
            "resilience": dict(self.counters),
        }
        if self.queue_depths:
            summary["queues"] = {
                stage: {
                    "samples": len(depths),
                    "mean_depth": float(np.mean(depths)),
                    "max_depth": int(max(depths)),
                }
                for stage, depths in self.queue_depths.items()
            }
        if self.workers:
            summary["workers"] = {name: dict(stats) for name, stats in self.workers.items()}
        return summary
