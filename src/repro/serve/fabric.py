"""The parallel serving fabric: staged pipeline + sharded state + worker pool.

``serve_stream(source, assembler, engine)`` runs the three serving stages in
one thread; on a loaded tap the model forward then gates everything else.
The :class:`ServingFabric` runs the same stages *concurrently*:

* a **source thread** drains the packet source into a bounded chunk queue
  (a paced replay keeps pacing; an unpaced one reads ahead only as far as
  the bound allows);
* an **assembly thread** routes each chunk's rows through a
  :class:`~repro.serve.assembler.ShardedAssembler` — per-flow state is
  hash-partitioned by flow key, so this stage scales by shard count — and
  routes every closed flow to an inference worker by a hash of its
  :attr:`~repro.serve.assembler.FlowRecord.cache_key`;
* ``workers`` **inference threads** each run their own
  :class:`~repro.serve.engine.InferenceEngine` replica (own micro-batch
  buckets, own :class:`~repro.serve.engine.PredictionCache` shard, and by
  default an own deep copy of the classifier) and push completed
  predictions onto a bounded output queue the caller iterates.

Every queue is bounded, so backpressure propagates stage to stage: a slow
model stalls the assembly thread, which stalls the source thread — memory
stays proportional to the queue bounds plus open-flow state, never to the
stream length.

**Correctness contract.**  The multiset of served flows is *bit-identical*
to the single-threaded ``serve_stream`` path, for any chunk size, shard
count and worker count:

* records — the sharding invariant (one flow key, one shard) plus the
  per-chunk stream-clock broadcast make every shard's assembler emit
  exactly the records the unsharded assembler would (same contexts, labels,
  generations, timestamps and close reasons);
* logits — cache-key routing sends every repetition of a context to the
  same worker, so the hash-sharded caches reproduce a single cache's
  hit/miss pattern, and exact-length micro-batches
  (``bucket_rounding=1``) make each row's logits a function of its own
  tokens and true length only, not of which batch (or worker) it ran in;
* isolation — each worker owns a classifier replica because the autograd
  stack keeps grad/eval mode as process-global state; replicas make the
  eval-mode forward shared-nothing.  (Pass ``replicate_model=False`` to
  share one classifier behind a lock when model memory dominates.)

Only the *arrival order* of predictions is scheduling-dependent; consumers
needing a deterministic order can sort by ``(record.key,
record.generation)``.

**Failure model** (see :mod:`repro.serve.resilience`): by default every
stage is ``fail_fast`` — an exception stops the pipeline and re-raises in
the consumer, exactly the pre-resilience behavior.  With
``policy="quarantine"``/``"degrade"`` the stages route failures through the
:class:`~repro.serve.resilience.AssemblyGuard` (chunk faults poison their
flow keys into the dead-letter queue; the stream clock still advances) and
each worker runs behind a :class:`~repro.serve.resilience.WorkerSupervisor`
(bounded restarts, exponential backoff, in-flight replay).  An optional
``stall_timeout`` arms a :class:`~repro.serve.resilience.Watchdog` whose
stall verdict surfaces as a ``StageStallError`` in the consumer instead of
a hang.  Lifecycle: the fabric is a context manager, and ``close()`` stops
and joins the stage threads deterministically if the caller abandons the
iterator mid-stream.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
import zlib

from ..nn.autograd import no_grad
from .assembler import ShardedAssembler, StreamingFlowAssembler
from .faults import wrap_classifier, wrap_source
from .report import ServingReport
from .resilience import (
    POLICIES,
    AssemblyGuard,
    DeadLetterQueue,
    LogitGuard,
    Watchdog,
    WorkerSupervisor,
)

__all__ = ["ServingFabric"]

_DONE = object()  # end-of-stream sentinel, stage to stage


class _WorkerDone:
    """End-of-work marker one inference worker posts to the output queue."""

    def __init__(self, worker: int):
        self.worker = worker


class _FailedChunk:
    """Source-failure marker: the read error travels to the assembly stage,
    which owns the quarantine accounting (it holds the assembler state)."""

    def __init__(self, error: BaseException, index: int):
        self.error = error
        self.index = index


class ServingFabric:
    """Concurrent ``source -> sharded assembly -> engine pool`` pipeline.

    Parameters
    ----------
    source:
        Any iterable of :class:`~repro.net.columns.PacketColumns` chunks
        (the :mod:`repro.serve.stream` sources).
    assembler:
        A :class:`StreamingFlowAssembler` template (sharded
        ``shards``-ways via :meth:`ShardedAssembler.from_template`) or a
        prebuilt :class:`ShardedAssembler`.
    engine:
        The :class:`~repro.serve.engine.InferenceEngine` template; each
        worker runs a :meth:`~repro.serve.engine.InferenceEngine.clone`
        with its own cache shard.
    workers:
        Inference worker threads.  1 still pipelines (source, assembly and
        inference overlap) with zero replication cost.
    shards:
        Assembler shards; defaults to ``workers``.
    chunk_queue, record_queue, output_queue:
        Bounds of the three inter-stage queues (chunks from the source,
        closed flows per worker, completed predictions).
    replicate_model:
        Give each worker a deep copy of the classifier (default).  With
        ``False`` the workers share the template classifier behind one
        lock — forwards serialize, but model memory is paid once.
    policy:
        Per-stage error policy (one of
        :data:`~repro.serve.resilience.POLICIES`); ``fail_fast`` is the
        default and the exact legacy behavior.
    fault_plan:
        A :class:`~repro.serve.faults.FaultPlan` to arm (chaos testing).
    dead_letters:
        A :class:`~repro.serve.resilience.DeadLetterQueue` to collect drop
        provenance; a fresh one is created when resilience is active and
        none is passed (readable afterwards as ``fabric.dead_letters``).
    max_restarts, restart_backoff:
        Worker supervision: each crashed worker engine is rebuilt up to
        ``max_restarts`` times with exponential backoff starting at
        ``restart_backoff`` seconds, replaying its in-flight records.
    stall_timeout:
        Arm a watchdog: a stage silent for longer than this many seconds
        fails the pipeline with a ``StageStallError`` instead of hanging.
    """

    def __init__(
        self,
        source,
        assembler,
        engine,
        workers: int = 2,
        shards: int | None = None,
        chunk_queue: int = 8,
        record_queue: int = 128,
        output_queue: int = 1024,
        replicate_model: bool = True,
        policy: str = "fail_fast",
        fault_plan=None,
        dead_letters=None,
        max_restarts: int = 0,
        restart_backoff: float = 0.05,
        stall_timeout: float | None = None,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r} (choose from {POLICIES})"
            )
        for name, bound in (
            ("chunk_queue", chunk_queue),
            ("record_queue", record_queue),
            ("output_queue", output_queue),
        ):
            if bound <= 0:
                raise ValueError(f"{name} must be positive")
        self.policy = policy
        self.fault_plan = fault_plan
        self.source = wrap_source(source, fault_plan)
        if isinstance(assembler, ShardedAssembler):
            self.assembler = assembler
        elif isinstance(assembler, StreamingFlowAssembler):
            self.assembler = ShardedAssembler.from_template(
                assembler, shards if shards is not None else workers
            )
        else:
            raise TypeError(
                "assembler must be a StreamingFlowAssembler or ShardedAssembler"
            )
        self.workers = workers
        self.chunk_bound = chunk_queue
        self.record_bound = record_queue
        self.output_bound = output_queue
        self.report = ServingReport()
        self._resilient = (
            policy != "fail_fast"
            or fault_plan is not None
            or dead_letters is not None
            or max_restarts > 0
        )
        lock = None if replicate_model else threading.Lock()
        template_classifier = wrap_classifier(engine.classifier, fault_plan)
        self.engines = []
        for worker in range(workers):
            classifier = template_classifier
            if replicate_model and workers > 1:
                # FaultInjectedClassifier.__deepcopy__ copies the model but
                # shares the plan: each scheduled fault fires once pool-wide.
                classifier = copy.deepcopy(classifier)
            worker_engine = engine.clone(classifier=classifier, lock=lock)
            # clone() carried the template's tracer (shared, thread-safe);
            # the label attributes each worker's trace events to it.
            worker_engine.trace_worker = f"worker[{worker}]"
            self.engines.append(worker_engine)
        if self._resilient:
            self.dead_letters = (
                dead_letters if dead_letters is not None
                else DeadLetterQueue(tracer=engine.tracer)
            )
            for index, worker_engine in enumerate(self.engines):
                worker_engine.output_guard = LogitGuard(
                    policy, self.dead_letters, self.report,
                    worker=f"worker[{index}]",
                )
            self._supervisors = [
                WorkerSupervisor(
                    worker_engine,
                    self._make_rebuild(index),
                    policy,
                    self.dead_letters,
                    self.report,
                    max_restarts=max_restarts,
                    backoff=restart_backoff,
                    worker=f"worker[{index}]",
                )
                for index, worker_engine in enumerate(self.engines)
            ]
            self._guard = AssemblyGuard(
                self.assembler, policy, self.dead_letters, self.report,
                fault_plan=fault_plan,
            )
        else:
            self.dead_letters = dead_letters
            self._supervisors = None
            self._guard = None
        self._watchdog = (
            Watchdog(stall_timeout, self._fail)
            if stall_timeout is not None else None
        )
        self._chunk_q: queue.Queue = queue.Queue(maxsize=chunk_queue)
        self._record_qs = [
            queue.Queue(maxsize=record_queue) for _ in range(workers)
        ]
        self._output_q: queue.Queue = queue.Queue(maxsize=output_queue)
        self._stop = threading.Event()
        self._errors: list[BaseException] = []
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False

    def _make_rebuild(self, worker: int):
        """The supervisor's restart hook for ``worker``'s engine slot."""

        def rebuild(old):
            fresh = old.clone(classifier=old.classifier, lock=old.lock)
            fresh.output_guard = old.output_guard
            self.engines[worker] = fresh
            return fresh

        return rebuild

    # ------------------------------------------------------------------
    # Bounded-queue helpers (stop-aware, so failures can't deadlock a put)
    # ------------------------------------------------------------------
    def _beat(self, stage: "str | None") -> None:
        if self._watchdog is not None and stage is not None:
            self._watchdog.beat(stage)

    def _put(self, q: queue.Queue, item, stage: "str | None" = None) -> bool:
        while not self._stop.is_set():
            # Waiting on a full queue is backpressure, not a stall.
            self._beat(stage)
            try:
                q.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _get(self, q: queue.Queue, stage: "str | None" = None):
        while not self._stop.is_set():
            self._beat(stage)
            try:
                return q.get(timeout=0.05)
            except queue.Empty:
                continue
        return _DONE

    def _fail(self, error: BaseException) -> None:
        self._errors.append(error)
        self._stop.set()

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _source_loop(self) -> None:
        stream = iter(self.source)
        index = -1
        try:
            while True:
                index += 1
                self._beat("source")
                try:
                    chunk = next(stream)
                except StopIteration:
                    break
                except Exception as error:
                    if self.policy == "fail_fast":
                        raise
                    if not self._put(
                        self._chunk_q, _FailedChunk(error, index), "source"
                    ):
                        return
                    continue
                if not self._put(self._chunk_q, chunk, "source"):
                    return
                self.report.observe_queue_depth("chunks", self._chunk_q.qsize())
            self._put(self._chunk_q, _DONE, "source")
        except BaseException as error:  # noqa: BLE001 - propagated to caller
            self._fail(error)
        finally:
            if self._watchdog is not None:
                self._watchdog.remove("source")

    def _route(self, records) -> bool:
        for record in records:
            worker = zlib.crc32(record.cache_key) % self.workers
            if not self._put(self._record_qs[worker], record, "assembly"):
                return False
            self.report.observe_queue_depth(
                f"records[{worker}]", self._record_qs[worker].qsize()
            )
        return True

    def _assembly_loop(self) -> None:
        guard = self._guard
        try:
            while True:
                self._beat("assembly")
                chunk = self._get(self._chunk_q, "assembly")
                if chunk is _DONE:
                    break
                if isinstance(chunk, _FailedChunk):
                    # quarantine() counted the error already in the source
                    # loop; here it poisons the lost chunk's flows and
                    # advances the clock (no-op under fail_fast, which never
                    # posts _FailedChunk markers).
                    records = guard.source_failure(chunk.error, chunk.index)
                elif guard is not None:
                    records = guard.push(chunk)
                else:
                    records = self.assembler.push(chunk)
                if not self._route(records):
                    return
            if self._stop.is_set():
                return
            flushed = guard.flush() if guard is not None else self.assembler.flush()
            if not self._route(flushed):
                return
            for record_q in self._record_qs:
                self._put(record_q, _DONE, "assembly")
        except BaseException as error:  # noqa: BLE001 - propagated to caller
            self._fail(error)
        finally:
            if self._watchdog is not None:
                self._watchdog.remove("assembly")

    def _worker_loop(self, worker: int) -> None:
        stage = f"worker[{worker}]"
        supervisor = (
            self._supervisors[worker] if self._supervisors is not None else None
        )
        engine = self.engines[worker]
        busy = 0.0
        started = time.perf_counter()
        try:
            # One long-lived no_grad window per worker (grad mode is
            # thread-local, so this covers exactly this worker's forwards).
            with no_grad():
                while True:
                    self._beat(stage)
                    record = self._get(self._record_qs[worker], stage)
                    if record is _DONE:
                        break
                    mark = time.perf_counter()
                    if supervisor is not None:
                        completed = supervisor.submit(record)
                    else:
                        completed = engine.submit(record)
                    busy += time.perf_counter() - mark
                    for prediction in completed:
                        if not self._put(self._output_q, prediction, stage):
                            return
                if not self._stop.is_set():
                    mark = time.perf_counter()
                    if supervisor is not None:
                        completed = supervisor.flush()
                    else:
                        completed = engine.flush()
                    busy += time.perf_counter() - mark
                    for prediction in completed:
                        if not self._put(self._output_q, prediction, stage):
                            return
        except BaseException as error:  # noqa: BLE001 - propagated to caller
            self._fail(error)
        finally:
            if self._watchdog is not None:
                self._watchdog.remove(stage)
            engine = self.engines[worker]  # the live one, after any restarts
            wall = time.perf_counter() - started
            self.report.observe_worker(
                f"worker[{worker}]",
                {
                    "flows": engine.report.flows,
                    "batches": engine.report.batches,
                    "busy_s": busy,
                    "wall_s": wall,
                    "utilization": busy / wall if wall > 0 else 0.0,
                    "restarts": supervisor.restarts if supervisor is not None else 0,
                    "cache_hit_rate": (
                        engine.cache.hit_rate if engine.cache is not None else None
                    ),
                },
            )
            # The consumer counts these markers; if it already went away
            # (early close with a full output queue), give up once stopped.
            while True:
                try:
                    self._output_q.put(_WorkerDone(worker), timeout=0.05)
                    break
                except queue.Full:
                    if self._stop.is_set():
                        break

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def __iter__(self):
        if self._started:
            raise RuntimeError("a ServingFabric can only be iterated once")
        self._started = True
        self._threads = [
            threading.Thread(target=self._source_loop, name="fabric-source", daemon=True),
            threading.Thread(target=self._assembly_loop, name="fabric-assembly", daemon=True),
            *(
                threading.Thread(
                    target=self._worker_loop, args=(w,),
                    name=f"fabric-worker-{w}", daemon=True,
                )
                for w in range(self.workers)
            ),
        ]
        if self._watchdog is not None:
            for stage in ("source", "assembly", *(
                f"worker[{w}]" for w in range(self.workers)
            )):
                self._watchdog.beat(stage)
            self._watchdog.start()
        for thread in self._threads:
            thread.start()
        done = 0
        try:
            while done < self.workers:
                try:
                    item = self._output_q.get(timeout=0.1)
                except queue.Empty:
                    # Only error/stall paths get here with stop set: a
                    # stalled thread may never post its done marker, so
                    # don't wait for one that cannot come.
                    if self._stop.is_set() and self._output_q.empty():
                        break
                    continue
                if isinstance(item, _WorkerDone):
                    done += 1
                    continue
                yield item
        finally:
            self.close()
            if self._errors:
                raise self._errors[0]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the stage threads and fold the reports; idempotent.

        Runs automatically when iteration finishes — but also callable by a
        consumer that abandons the iterator mid-stream, so stage threads
        never outlive the caller's interest (the iterator-abandonment leak).
        """
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.stop()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._closed:
            return
        self._closed = True
        for engine in self.engines:
            self.report.merge(engine.report)
        if self._supervisors is not None:
            for supervisor in self._supervisors:
                for retired in supervisor.retired_reports:
                    self.report.merge(retired)

    def __enter__(self) -> "ServingFabric":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self):
        # Last-resort leak guard: releasing the fabric without closing it
        # must not leave stage threads spinning.  No joins here — __del__
        # can run during interpreter shutdown; the stop event is enough
        # (every stage loop is stop-aware).
        try:
            self._stop.set()
        except Exception:
            pass

    def summary(self) -> dict:
        """The merged serving scorecard, plus queue and worker sections.

        Valid after iteration completes; per-worker cache hit counters are
        folded into one ``cache_hit_rate`` across the sharded caches.
        """
        hits = sum(
            engine.cache.hits for engine in self.engines if engine.cache is not None
        )
        misses = sum(
            engine.cache.misses for engine in self.engines if engine.cache is not None
        )
        summary = self.report.summary()
        if any(engine.cache is not None for engine in self.engines):
            total = hits + misses
            summary["cache_hit_rate"] = hits / total if total else 0.0
        return summary
