"""The parallel serving fabric: staged pipeline + sharded state + worker pool.

``serve_stream(source, assembler, engine)`` runs the three serving stages in
one thread; on a loaded tap the model forward then gates everything else.
The :class:`ServingFabric` runs the same stages *concurrently*:

* a **source thread** drains the packet source into a bounded chunk queue
  (a paced replay keeps pacing; an unpaced one reads ahead only as far as
  the bound allows);
* an **assembly thread** routes each chunk's rows through a
  :class:`~repro.serve.assembler.ShardedAssembler` — per-flow state is
  hash-partitioned by flow key, so this stage scales by shard count — and
  routes every closed flow to an inference worker by a hash of its
  :attr:`~repro.serve.assembler.FlowRecord.cache_key`;
* ``workers`` **inference threads** each run their own
  :class:`~repro.serve.engine.InferenceEngine` replica (own micro-batch
  buckets, own :class:`~repro.serve.engine.PredictionCache` shard, and by
  default an own deep copy of the classifier) and push completed
  predictions onto a bounded output queue the caller iterates.

Every queue is bounded, so backpressure propagates stage to stage: a slow
model stalls the assembly thread, which stalls the source thread — memory
stays proportional to the queue bounds plus open-flow state, never to the
stream length.

**Correctness contract.**  The multiset of served flows is *bit-identical*
to the single-threaded ``serve_stream`` path, for any chunk size, shard
count and worker count:

* records — the sharding invariant (one flow key, one shard) plus the
  per-chunk stream-clock broadcast make every shard's assembler emit
  exactly the records the unsharded assembler would (same contexts, labels,
  generations, timestamps and close reasons);
* logits — cache-key routing sends every repetition of a context to the
  same worker, so the hash-sharded caches reproduce a single cache's
  hit/miss pattern, and exact-length micro-batches
  (``bucket_rounding=1``) make each row's logits a function of its own
  tokens and true length only, not of which batch (or worker) it ran in;
* isolation — each worker owns a classifier replica because the autograd
  stack keeps grad/eval mode as process-global state; replicas make the
  eval-mode forward shared-nothing.  (Pass ``replicate_model=False`` to
  share one classifier behind a lock when model memory dominates.)

Only the *arrival order* of predictions is scheduling-dependent; consumers
needing a deterministic order can sort by ``(record.key,
record.generation)``.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
import zlib

from ..nn.autograd import no_grad
from .assembler import ShardedAssembler, StreamingFlowAssembler
from .report import ServingReport

__all__ = ["ServingFabric"]

_DONE = object()  # end-of-stream sentinel, stage to stage


class _WorkerDone:
    """End-of-work marker one inference worker posts to the output queue."""

    def __init__(self, worker: int):
        self.worker = worker


class ServingFabric:
    """Concurrent ``source -> sharded assembly -> engine pool`` pipeline.

    Parameters
    ----------
    source:
        Any iterable of :class:`~repro.net.columns.PacketColumns` chunks
        (the :mod:`repro.serve.stream` sources).
    assembler:
        A :class:`StreamingFlowAssembler` template (sharded
        ``shards``-ways via :meth:`ShardedAssembler.from_template`) or a
        prebuilt :class:`ShardedAssembler`.
    engine:
        The :class:`~repro.serve.engine.InferenceEngine` template; each
        worker runs a :meth:`~repro.serve.engine.InferenceEngine.clone`
        with its own cache shard.
    workers:
        Inference worker threads.  1 still pipelines (source, assembly and
        inference overlap) with zero replication cost.
    shards:
        Assembler shards; defaults to ``workers``.
    chunk_queue, record_queue, output_queue:
        Bounds of the three inter-stage queues (chunks from the source,
        closed flows per worker, completed predictions).
    replicate_model:
        Give each worker a deep copy of the classifier (default).  With
        ``False`` the workers share the template classifier behind one
        lock — forwards serialize, but model memory is paid once.
    """

    def __init__(
        self,
        source,
        assembler,
        engine,
        workers: int = 2,
        shards: int | None = None,
        chunk_queue: int = 8,
        record_queue: int = 128,
        output_queue: int = 1024,
        replicate_model: bool = True,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        for name, bound in (
            ("chunk_queue", chunk_queue),
            ("record_queue", record_queue),
            ("output_queue", output_queue),
        ):
            if bound <= 0:
                raise ValueError(f"{name} must be positive")
        self.source = source
        if isinstance(assembler, ShardedAssembler):
            self.assembler = assembler
        elif isinstance(assembler, StreamingFlowAssembler):
            self.assembler = ShardedAssembler.from_template(
                assembler, shards if shards is not None else workers
            )
        else:
            raise TypeError(
                "assembler must be a StreamingFlowAssembler or ShardedAssembler"
            )
        self.workers = workers
        self.chunk_bound = chunk_queue
        self.record_bound = record_queue
        self.output_bound = output_queue
        lock = None if replicate_model else threading.Lock()
        self.engines = []
        for worker in range(workers):
            classifier = engine.classifier
            if replicate_model and workers > 1:
                classifier = copy.deepcopy(classifier)
            self.engines.append(engine.clone(classifier=classifier, lock=lock))
        self.report = ServingReport()
        self._chunk_q: queue.Queue = queue.Queue(maxsize=chunk_queue)
        self._record_qs = [
            queue.Queue(maxsize=record_queue) for _ in range(workers)
        ]
        self._output_q: queue.Queue = queue.Queue(maxsize=output_queue)
        self._stop = threading.Event()
        self._errors: list[BaseException] = []
        self._threads: list[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    # Bounded-queue helpers (stop-aware, so failures can't deadlock a put)
    # ------------------------------------------------------------------
    def _put(self, q: queue.Queue, item) -> bool:
        while not self._stop.is_set():
            try:
                q.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _get(self, q: queue.Queue):
        while not self._stop.is_set():
            try:
                return q.get(timeout=0.05)
            except queue.Empty:
                continue
        return _DONE

    def _fail(self, error: BaseException) -> None:
        self._errors.append(error)
        self._stop.set()

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _source_loop(self) -> None:
        try:
            for chunk in self.source:
                if not self._put(self._chunk_q, chunk):
                    return
                self.report.observe_queue_depth("chunks", self._chunk_q.qsize())
            self._put(self._chunk_q, _DONE)
        except BaseException as error:  # noqa: BLE001 - propagated to caller
            self._fail(error)

    def _route(self, records) -> bool:
        for record in records:
            worker = zlib.crc32(record.cache_key) % self.workers
            if not self._put(self._record_qs[worker], record):
                return False
            self.report.observe_queue_depth(
                f"records[{worker}]", self._record_qs[worker].qsize()
            )
        return True

    def _assembly_loop(self) -> None:
        try:
            while True:
                chunk = self._get(self._chunk_q)
                if chunk is _DONE:
                    break
                if not self._route(self.assembler.push(chunk)):
                    return
            if self._stop.is_set():
                return
            if not self._route(self.assembler.flush()):
                return
            for record_q in self._record_qs:
                self._put(record_q, _DONE)
        except BaseException as error:  # noqa: BLE001 - propagated to caller
            self._fail(error)

    def _worker_loop(self, worker: int) -> None:
        engine = self.engines[worker]
        busy = 0.0
        started = time.perf_counter()
        try:
            # One long-lived no_grad window per worker (grad mode is
            # thread-local, so this covers exactly this worker's forwards).
            with no_grad():
                while True:
                    record = self._get(self._record_qs[worker])
                    if record is _DONE:
                        break
                    mark = time.perf_counter()
                    completed = engine.submit(record)
                    busy += time.perf_counter() - mark
                    for prediction in completed:
                        if not self._put(self._output_q, prediction):
                            return
                if not self._stop.is_set():
                    mark = time.perf_counter()
                    completed = engine.flush()
                    busy += time.perf_counter() - mark
                    for prediction in completed:
                        if not self._put(self._output_q, prediction):
                            return
        except BaseException as error:  # noqa: BLE001 - propagated to caller
            self._fail(error)
        finally:
            wall = time.perf_counter() - started
            self.report.observe_worker(
                f"worker[{worker}]",
                {
                    "flows": engine.report.flows,
                    "batches": len(engine.report.batch_sizes),
                    "busy_s": busy,
                    "wall_s": wall,
                    "utilization": busy / wall if wall > 0 else 0.0,
                    "cache_hit_rate": (
                        engine.cache.hit_rate if engine.cache is not None else None
                    ),
                },
            )
            # The consumer counts these markers; if it already went away
            # (early close with a full output queue), give up once stopped.
            while True:
                try:
                    self._output_q.put(_WorkerDone(worker), timeout=0.05)
                    break
                except queue.Full:
                    if self._stop.is_set():
                        break

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def __iter__(self):
        if self._started:
            raise RuntimeError("a ServingFabric can only be iterated once")
        self._started = True
        self._threads = [
            threading.Thread(target=self._source_loop, name="fabric-source", daemon=True),
            threading.Thread(target=self._assembly_loop, name="fabric-assembly", daemon=True),
            *(
                threading.Thread(
                    target=self._worker_loop, args=(w,),
                    name=f"fabric-worker-{w}", daemon=True,
                )
                for w in range(self.workers)
            ),
        ]
        for thread in self._threads:
            thread.start()
        done = 0
        try:
            while done < self.workers:
                item = self._output_q.get()
                if isinstance(item, _WorkerDone):
                    done += 1
                    continue
                yield item
        finally:
            self._stop.set()
            for thread in self._threads:
                thread.join(timeout=5.0)
            for engine in self.engines:
                self.report.merge(engine.report)
            if self._errors:
                raise self._errors[0]

    def summary(self) -> dict:
        """The merged serving scorecard, plus queue and worker sections.

        Valid after iteration completes; per-worker cache hit counters are
        folded into one ``cache_hit_rate`` across the sharded caches.
        """
        hits = sum(
            engine.cache.hits for engine in self.engines if engine.cache is not None
        )
        misses = sum(
            engine.cache.misses for engine in self.engines if engine.cache is not None
        )
        summary = self.report.summary()
        if any(engine.cache is not None for engine in self.engines):
            total = hits + misses
            summary["cache_hit_rate"] = hits / total if total else 0.0
        return summary
