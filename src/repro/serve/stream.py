"""Packet sources: bounded columnar chunks for the streaming pipeline.

A *source* is anything iterable that yields
:class:`~repro.net.columns.PacketColumns` chunks in capture-time order.  The
serving layer never sees a whole trace at once: every downstream stage
(:class:`~repro.serve.assembler.StreamingFlowAssembler`,
:class:`~repro.serve.engine.InferenceEngine`) consumes one bounded chunk at a
time, so memory stays proportional to the chunk size plus the open-flow
state, not to the capture length.

Three sources cover the deployment shapes the paper cares about:

* :class:`ColumnsSource` — replay an in-memory batch (the testing and
  benchmarking workhorse);
* :class:`PcapReplaySource` — replay a capture file through the columnar
  reader, by default with :class:`lazy application decode
  <repro.net.pcap.LazyDecodeColumns>` so byte-level serving never pays for
  DNS/HTTP/TLS parsing;
* :class:`ScenarioSource` — wrap any traffic generator with a
  ``generate_columns()`` / ``generate()`` method as a live-traffic simulator.

All three share optional timestamp pacing: ``pace=1.0`` replays at capture
speed (sleeping between chunks), ``pace=10.0`` at 10x, ``pace=None`` (the
default) as fast as the consumer can drain.
"""

from __future__ import annotations

import time
from typing import Iterator

from ..net.columns import PacketColumns
from ..net.pcap import read_pcap_columns

__all__ = [
    "chunk_columns",
    "PacketSource",
    "ColumnsSource",
    "PcapReplaySource",
    "ScenarioSource",
]


def chunk_columns(
    columns: PacketColumns, chunk_rows: int
) -> Iterator[PacketColumns]:
    """Slice a column batch into consecutive chunks of ``chunk_rows`` rows.

    Row order is preserved and every row appears in exactly one chunk, so
    feeding the chunks through the streaming assembler reproduces the
    offline pipeline for any chunk size (the equivalence the serving tests
    gate for sizes 1, k and n).
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    for start in range(0, len(columns), chunk_rows):
        yield columns[start : start + chunk_rows]


class PacketSource:
    """Base source: materialize columns once, then chunk (and pace) them.

    Subclasses implement :meth:`_columns`; iteration yields bounded
    :class:`~repro.net.columns.PacketColumns` chunks in row order.
    """

    def __init__(self, chunk_rows: int = 256, pace: float | None = None):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if pace is not None and pace <= 0:
            raise ValueError("pace must be positive (or None for unpaced replay)")
        self.chunk_rows = chunk_rows
        self.pace = pace

    def _columns(self) -> PacketColumns:
        raise NotImplementedError

    def __iter__(self) -> Iterator[PacketColumns]:
        columns = self._columns()
        if self.pace is None or len(columns) == 0:
            yield from chunk_columns(columns, self.chunk_rows)
            return
        base = float(columns.timestamps[0])
        started = time.monotonic()
        for chunk in chunk_columns(columns, self.chunk_rows):
            # Deliver each chunk no earlier than its last packet's capture
            # offset (scaled by the replay speed), like a live tap would.
            due = (float(chunk.timestamps[-1]) - base) / self.pace
            delay = due - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            yield chunk


class ColumnsSource(PacketSource):
    """Replay an in-memory :class:`~repro.net.columns.PacketColumns` batch."""

    def __init__(
        self,
        columns: PacketColumns,
        chunk_rows: int = 256,
        pace: float | None = None,
    ):
        super().__init__(chunk_rows=chunk_rows, pace=pace)
        self.columns = columns

    def _columns(self) -> PacketColumns:
        return self.columns


class PcapReplaySource(PacketSource):
    """Replay a pcap capture through :func:`~repro.net.pcap.read_pcap_columns`.

    ``lazy_decode`` defaults to True: chunks propagate the pending
    application decode, so a byte-level serving pipeline parses the capture
    without ever decoding DNS/HTTP/TLS payloads, while a field-aware
    pipeline materializes them on first ``app_kind`` access.  A shared
    ``decode_cache`` carries the decode memoization across successive
    captures of the same traffic mix.
    """

    def __init__(
        self,
        path,
        chunk_rows: int = 256,
        pace: float | None = None,
        decode_cache: dict | None = None,
        lazy_decode: bool = True,
    ):
        super().__init__(chunk_rows=chunk_rows, pace=pace)
        self.path = path
        self.decode_cache = decode_cache
        self.lazy_decode = lazy_decode

    def _columns(self) -> PacketColumns:
        return read_pcap_columns(
            self.path, decode_cache=self.decode_cache, lazy_decode=self.lazy_decode
        )


class ScenarioSource(PacketSource):
    """Simulate live traffic by replaying a generator's columnar trace.

    Accepts any of :mod:`repro.traffic`'s scenario/workload generators —
    objects with ``generate_columns()`` (preferred) or ``generate()``.  Each
    iteration regenerates the scenario, so a seeded generator replays the
    identical trace and an unseeded one streams fresh traffic per pass.
    """

    def __init__(
        self,
        scenario,
        chunk_rows: int = 256,
        pace: float | None = None,
    ):
        super().__init__(chunk_rows=chunk_rows, pace=pace)
        self.scenario = scenario

    def _columns(self) -> PacketColumns:
        if hasattr(self.scenario, "generate_columns"):
            return self.scenario.generate_columns()
        return PacketColumns.from_packets(self.scenario.generate())
