"""Packet sources: bounded columnar chunks for the streaming pipeline.

A *source* is anything iterable that yields
:class:`~repro.net.columns.PacketColumns` chunks in capture-time order.  The
serving layer never sees a whole trace at once: every downstream stage
(:class:`~repro.serve.assembler.StreamingFlowAssembler`,
:class:`~repro.serve.engine.InferenceEngine`) consumes one bounded chunk at a
time, so memory stays proportional to the chunk size plus the open-flow
state, not to the capture length.

Three sources cover the deployment shapes the paper cares about:

* :class:`ColumnsSource` — replay an in-memory batch (the testing and
  benchmarking workhorse);
* :class:`PcapReplaySource` — replay a capture file through the columnar
  reader, by default with :class:`lazy application decode
  <repro.net.pcap.LazyDecodeColumns>` so byte-level serving never pays for
  DNS/HTTP/TLS parsing;
* :class:`ScenarioSource` — wrap any traffic generator with a
  ``generate_columns()`` / ``generate()`` method as a live-traffic simulator.

All three share optional timestamp pacing: ``pace=1.0`` replays at capture
speed (sleeping between chunks), ``pace=10.0`` at 10x, ``pace=None`` (the
default) as fast as the consumer can drain.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from ..net.columns import PacketColumns
from ..net.pcap import read_pcap_columns

__all__ = [
    "chunk_columns",
    "burst_chunks",
    "interleave_columns",
    "PacketSource",
    "ColumnsSource",
    "PcapReplaySource",
    "ScenarioSource",
]


def chunk_columns(
    columns: PacketColumns, chunk_rows: int
) -> Iterator[PacketColumns]:
    """Slice a column batch into consecutive chunks of ``chunk_rows`` rows.

    Row order is preserved and every row appears in exactly one chunk, so
    feeding the chunks through the streaming assembler reproduces the
    offline pipeline for any chunk size (the equivalence the serving tests
    gate for sizes 1, k and n).
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    for start in range(0, len(columns), chunk_rows):
        yield columns[start : start + chunk_rows]


def burst_chunks(
    columns: PacketColumns, max_rows: int, seed: int = 0
) -> Iterator[PacketColumns]:
    """Slice a column batch into seeded *variable*-size chunks.

    A live tap does not deliver fixed-size reads: interrupt coalescing and
    ring-buffer drains produce bursts from a single packet up to the read
    budget.  This iterator replays that shape — chunk sizes are drawn
    uniformly from ``[1, max_rows]`` by a seeded generator, so a given seed
    reproduces the exact burst pattern.  Row order is preserved and every
    row appears in exactly one chunk, so any downstream equivalence that
    holds per chunk size also holds for every burst pattern.
    """
    if max_rows <= 0:
        raise ValueError("max_rows must be positive")
    rng = np.random.default_rng(seed)
    start = 0
    while start < len(columns):
        stop = start + int(rng.integers(1, max_rows + 1))
        yield columns[start : min(stop, len(columns))]
        start = stop


def interleave_columns(
    columns: PacketColumns, group_ids=None, seed: int = 0
) -> PacketColumns:
    """Seeded out-of-order arrival: shuffle flows, keep each flow in order.

    Multi-queue NICs and load-balanced taps deliver flows interleaved in an
    order that has little to do with global capture time, while packets
    *within* one flow still arrive in flow order (they rode one queue).
    This returns the batch with rows permuted to that shape: the relative
    order of rows sharing a group id is preserved, the interleaving across
    groups is a seeded random draw.

    ``group_ids`` defaults to ``columns.connection_ids`` — pass session ids
    (or any per-row grouping array) to preserve a different unit's order.
    """
    ids = np.asarray(
        columns.connection_ids if group_ids is None else group_ids
    )
    n = len(ids)
    if n != len(columns):
        raise ValueError("group_ids must have one entry per row")
    if n == 0:
        return columns
    rng = np.random.default_rng(seed)
    keys = rng.random(n)
    # Both index lists enumerate the groups in the same (id-sorted) order:
    # `by_row` walks each group's rows in arrival order, `by_key` walks its
    # random keys ascending.  Pairing them hands earlier rows smaller keys,
    # so sorting by assigned key interleaves groups at random while keeping
    # every group's internal order intact.
    by_row = np.lexsort((np.arange(n), ids))
    by_key = np.lexsort((keys, ids))
    assigned = np.empty(n)
    assigned[by_row] = keys[by_key]
    return columns[np.argsort(assigned, kind="stable")]


class PacketSource:
    """Base source: materialize columns once, then chunk (and pace) them.

    Subclasses implement :meth:`_columns`; iteration yields bounded
    :class:`~repro.net.columns.PacketColumns` chunks in row order.
    """

    def __init__(self, chunk_rows: int = 256, pace: float | None = None):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if pace is not None and pace <= 0:
            raise ValueError("pace must be positive (or None for unpaced replay)")
        self.chunk_rows = chunk_rows
        self.pace = pace

    def _columns(self) -> PacketColumns:
        raise NotImplementedError

    def __iter__(self) -> Iterator[PacketColumns]:
        columns = self._columns()
        if self.pace is None or len(columns) == 0:
            yield from chunk_columns(columns, self.chunk_rows)
            return
        base = float(columns.timestamps[0])
        started = time.monotonic()
        for chunk in chunk_columns(columns, self.chunk_rows):
            # Deliver each chunk no earlier than its last packet's capture
            # offset (scaled by the replay speed), like a live tap would.
            due = (float(chunk.timestamps[-1]) - base) / self.pace
            delay = due - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            yield chunk


class ColumnsSource(PacketSource):
    """Replay an in-memory :class:`~repro.net.columns.PacketColumns` batch."""

    def __init__(
        self,
        columns: PacketColumns,
        chunk_rows: int = 256,
        pace: float | None = None,
    ):
        super().__init__(chunk_rows=chunk_rows, pace=pace)
        self.columns = columns

    def _columns(self) -> PacketColumns:
        return self.columns


class PcapReplaySource(PacketSource):
    """Replay a pcap capture through :func:`~repro.net.pcap.read_pcap_columns`.

    ``lazy_decode`` defaults to True: chunks propagate the pending
    application decode, so a byte-level serving pipeline parses the capture
    without ever decoding DNS/HTTP/TLS payloads, while a field-aware
    pipeline materializes them on first ``app_kind`` access.  A shared
    ``decode_cache`` carries the decode memoization across successive
    captures of the same traffic mix.

    ``errors="quarantine"`` reads damaged captures tolerantly
    (:func:`read_pcap_columns`'s tolerant mode): the clean prefix streams
    normally and every skipped record is appended to :attr:`errors` (a list
    of :class:`~repro.net.pcap.PcapReadError`, reset at each replay pass).
    The default ``"strict"`` raises exactly as before.
    """

    def __init__(
        self,
        path,
        chunk_rows: int = 256,
        pace: float | None = None,
        decode_cache: dict | None = None,
        lazy_decode: bool = True,
        errors: str = "strict",
    ):
        super().__init__(chunk_rows=chunk_rows, pace=pace)
        self.path = path
        self.decode_cache = decode_cache
        self.lazy_decode = lazy_decode
        self.errors_mode = errors
        #: Skipped-record provenance from the most recent replay pass.
        self.errors: list = []

    def _columns(self) -> PacketColumns:
        if self.errors_mode == "quarantine":
            columns, errors = read_pcap_columns(
                self.path, decode_cache=self.decode_cache,
                lazy_decode=self.lazy_decode, errors="quarantine",
            )
            self.errors = errors
            return columns
        return read_pcap_columns(
            self.path, decode_cache=self.decode_cache, lazy_decode=self.lazy_decode
        )


class ScenarioSource(PacketSource):
    """Simulate live traffic by replaying a generator's columnar trace.

    Accepts any of :mod:`repro.traffic`'s scenario/workload generators —
    objects with ``generate_columns()`` (preferred) or ``generate()``.  Each
    iteration regenerates the scenario, so a seeded generator replays the
    identical trace and an unseeded one streams fresh traffic per pass.
    """

    def __init__(
        self,
        scenario,
        chunk_rows: int = 256,
        pace: float | None = None,
    ):
        super().__init__(chunk_rows=chunk_rows, pace=pace)
        self.scenario = scenario

    def _columns(self) -> PacketColumns:
        if hasattr(self.scenario, "generate_columns"):
            return self.scenario.generate_columns()
        return PacketColumns.from_packets(self.scenario.generate())
