"""Incremental flow assembly across chunk boundaries.

The offline pipeline groups a *complete* trace into flow contexts with one
lexicographic argsort
(:meth:`repro.context.builders.FlowContextBuilder.encode_columns`).  A
serving system never holds the complete trace; packets of one flow arrive
interleaved with every other flow's, split across chunks.  The
:class:`StreamingFlowAssembler` closes that gap: it buffers per-flow state
as chunks arrive, closes flows on NetFlow-style idle/active timeouts (or at
:meth:`flush`), and emits each closed flow as a :class:`FlowRecord` whose
encoded context row is **bit-identical** to what the offline
``encode_columns`` produces for the same flow on the equivalent full trace —
for any chunk size.

Two properties make that equivalence hold:

* grouping uses exactly the offline keys — the builder's metadata id
  (``connection_id`` / ``session_id``) when present, its 5-tuple/endpoint
  fallback otherwise — applied row by row, so a chunk boundary can never
  change which flow a packet joins;
* the per-flow buffer keeps only the first ``max_packets`` rows (the only
  rows the offline context and its majority label can depend on), and the
  closed flow re-enters the builder's own ``encode_columns`` as a
  single-flow batch, so tokenization, truncation and ``[CLS]``/``[SEP]``
  assembly are literally the same code path.

Timeout semantics are shared with the offline feature table: the idle-split
predicate is :func:`repro.net.flow_columns.is_idle_split`, the rule
``FlowTable(idle_timeout=...)`` applies, so streamed flow splitting matches
``FlowStatsColumns.from_columns(..., idle_timeout=...)`` packet for packet
on time-ordered traces.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..context.builders import FlowContextBuilder
from ..net.columns import PacketColumns
from ..net.flow_columns import is_idle_split

__all__ = ["FlowRecord", "StreamingFlowAssembler"]


@dataclasses.dataclass
class FlowRecord:
    """One closed flow, encoded and ready for inference.

    ``token_ids`` / ``attention_mask`` are the exact ``encode_columns`` row
    (``[CLS] tokens... [SEP]`` padded to the builder's ``max_tokens``) the
    offline pipeline would produce for this flow; ``label`` is the per-flow
    majority label (``None`` when unlabelled, e.g. parsed captures).
    """

    key: object
    generation: int
    token_ids: np.ndarray
    attention_mask: np.ndarray
    label: str | None
    packet_count: int
    start_time: float
    end_time: float
    closed_by: str  # "idle" | "active" | "evict" | "flush"

    @property
    def cache_key(self) -> bytes:
        """The prediction-cache key: the real (unpadded) token ids as bytes.

        Keyed on the *encoded context*, the value the model's output is a
        function of — the serving twin of PR 4's wire-byte decode-cache
        discipline.  Two flows whose packets differ only in bytes the
        tokenizer abstracts away (DNS transaction ids, TLS randoms — exactly
        the decode cache's exempt bytes) map to the same key, and a hit
        returns logits identical to a fresh forward pass.
        """
        ids = self.token_ids[self.attention_mask]
        return ids.astype(np.int64, copy=False).tobytes()

    def __len__(self) -> int:
        return int(self.attention_mask.sum())


@dataclasses.dataclass
class _FlowState:
    """Open-flow buffer: the first ``max_packets`` rows plus counters."""

    generation: int
    seq: int
    parts: list
    kept: int
    count: int
    start: float
    last: float


class StreamingFlowAssembler:
    """Group packets into flows incrementally, one bounded chunk at a time.

    Parameters
    ----------
    tokenizer, vocabulary:
        The (fitted) tokenizer and fixed vocabulary the offline pipeline
        trained with; closed flows are encoded against them.
    builder:
        A :class:`~repro.context.builders.FlowContextBuilder` (or
        :class:`~repro.context.builders.SessionContextBuilder`) instance
        defining the grouping keys, ``max_tokens``/``max_packets`` and label
        key.  Defaults to ``FlowContextBuilder()``.
    idle_timeout:
        NetFlow expiry: a per-flow gap strictly longer than this many
        seconds starts a new flow *generation* (and any flow idle longer
        than this against the stream clock is evicted and emitted).  0
        disables idle splitting — flows close only at :meth:`flush`.
    active_timeout:
        Long-lived flow cap: a packet arriving more than this many seconds
        after its flow's first packet closes the flow and starts a new
        generation.  0 disables.  Both rules depend only on each flow's own
        packet sequence, so the emitted records are chunk-size invariant.

    Chunks must arrive in capture-time order (all sources in
    :mod:`repro.serve.stream` yield time-sorted traces); within that
    contract the records are bit-identical to the offline
    ``encode_columns`` rows of the equivalent full trace.
    """

    def __init__(
        self,
        tokenizer,
        vocabulary,
        builder: FlowContextBuilder | None = None,
        idle_timeout: float = 0.0,
        active_timeout: float = 0.0,
    ):
        self.tokenizer = tokenizer
        self.vocabulary = vocabulary
        self.builder = builder if builder is not None else FlowContextBuilder()
        self.idle_timeout = float(idle_timeout)
        self.active_timeout = float(active_timeout)
        self._flows: dict[object, _FlowState] = {}
        self._next_generation: dict[object, int] = {}
        self._clock = float("-inf")  # stream time: max timestamp seen
        self._seq = 0  # arrival counter for deterministic flush order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently open flows."""
        return len(self._flows)

    @property
    def stream_time(self) -> float:
        """The stream clock: the largest packet timestamp seen so far."""
        return self._clock

    # ------------------------------------------------------------------
    # Grouping keys
    # ------------------------------------------------------------------
    def _row_keys(self, chunk: PacketColumns) -> list:
        """Per-row group keys, identical to the builder's offline grouping.

        Always the uniform per-row rule (metadata id string, else the
        builder's fallback key) — never the all-integer fast path — so a
        flow keeps one key even when *other* rows of some chunk lack ids.
        """
        builder = self.builder
        id_key = builder._id_key
        prefix = builder._id_prefix
        keys = []
        for row, md in enumerate(chunk.metadata):
            if id_key in md:
                keys.append(f"{prefix}-{md[id_key]}")
            else:
                keys.append(builder._fallback_key(chunk, row))
        return keys

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def push(self, chunk: PacketColumns) -> list[FlowRecord]:
        """Absorb one chunk; return the flows it closed (possibly none).

        Closure happens three ways: an idle gap inside a flow's own packet
        sequence (``idle_timeout``), a flow outliving ``active_timeout``,
        and idle *eviction* — flows whose last packet has fallen more than
        ``idle_timeout`` behind the stream clock are closed even though no
        further packet of theirs arrived (bounding open-flow state and
        worst-case latency).
        """
        closed: list[FlowRecord] = []
        if len(chunk) == 0:
            return closed
        timestamps = chunk.timestamps
        per_key: dict[object, list[int]] = {}
        for row, key in enumerate(self._row_keys(chunk)):
            per_key.setdefault(key, []).append(row)
        for key, rows in per_key.items():
            state = self._flows.get(key)
            segment: list[int] = []
            for row in rows:
                t = float(timestamps[row])
                if state is not None:
                    idle = is_idle_split(t - state.last, self.idle_timeout)
                    active = (
                        self.active_timeout > 0
                        and t - state.start > self.active_timeout
                    )
                    if idle or active:
                        if segment:
                            self._append(state, chunk, segment)
                            segment = []
                        closed.append(
                            self._close(key, state, "idle" if idle else "active")
                        )
                        state = self._open(key, t, generation=state.generation + 1)
                    else:
                        state.last = t
                if state is None:
                    state = self._open(key, t)
                segment.append(row)
            if segment:
                self._append(state, chunk, segment)
        self._clock = max(self._clock, float(timestamps.max()))
        if self.idle_timeout > 0:
            for key in [
                key
                for key, state in self._flows.items()
                if is_idle_split(self._clock - state.last, self.idle_timeout)
            ]:
                closed.append(self._close(key, self._flows[key], "evict"))
        return closed

    def flush(self) -> list[FlowRecord]:
        """Close and emit every remaining open flow, in first-arrival order."""
        return [
            self._close(key, state, "flush")
            for key, state in sorted(
                self._flows.items(), key=lambda item: item[1].seq
            )
        ]

    # ------------------------------------------------------------------
    # Flow state
    # ------------------------------------------------------------------
    def _open(self, key: object, t: float, generation: "int | None" = None) -> _FlowState:
        if generation is None:
            generation = self._next_generation.get(key, 0)
        state = _FlowState(
            generation=generation, seq=self._seq, parts=[],
            kept=0, count=0, start=t, last=t,
        )
        self._seq += 1
        self._flows[key] = state
        return state

    def _append(self, state: _FlowState, chunk: PacketColumns, rows: list[int]) -> None:
        state.count += len(rows)
        quota = self.builder.max_packets - state.kept
        if quota > 0:
            keep = rows[:quota]
            state.parts.append(chunk[np.asarray(keep, dtype=np.int64)])
            state.kept += len(keep)

    def _close(self, key: object, state: _FlowState, reason: str) -> FlowRecord:
        del self._flows[key]
        self._next_generation[key] = state.generation + 1
        columns = (
            state.parts[0]
            if len(state.parts) == 1
            else type(state.parts[0]).concat(state.parts)
        )
        ids, mask, labels = self.builder.encode_columns(
            columns, self.tokenizer, self.vocabulary, return_labels=True
        )
        return FlowRecord(
            key=key,
            generation=state.generation,
            token_ids=ids[0],
            attention_mask=mask[0],
            label=labels[0],
            packet_count=state.count,
            start_time=state.start,
            end_time=state.last,
            closed_by=reason,
        )
